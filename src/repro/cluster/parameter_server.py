"""Parameter server + synchronous data-parallel training (Fig. 2, §5.4).

The distributed TensorFlow architecture the paper preserves: parameter
servers hold the model, workers pull weights, compute gradients on their
data shard, and push updates.  Both endpoints can run behind the network
shield (secure mode) or in cleartext (the "without network shield" and
native baselines of Fig. 8).

Synchronous rounds with per-node clocks: each worker's pull→compute→push
advances its own clock, the PS clock serializes the applies, and a
barrier ends the round — so adding workers shortens the round wall-clock
exactly as real synchronous data-parallelism does.

Fault tolerance (paper challenge ❹): a :class:`ParameterServer` built
with a checkpoint store snapshots weights *and* its RPC dedup window
after every committed update, so a replacement PS resumes at the exact
version the crashed one reached — a worker retrying a push against the
replacement hits the restored dedup window instead of double-applying.
:class:`SyncTrainer` accepts a retry policy (wired into every
worker→PS session) and a recovery supervisor (duck-typed; see
``TrainingJob``) that replaces crashed containers mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro._sim import probe
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.rpc import (
    RpcClient,
    RpcServer,
    SecureConnection,
    SecureRpcClient,
    SecureRpcServer,
)
from repro.cluster.retry import RetryPolicy
from repro.cluster.worker import TrainingWorker
from repro.crypto import encoding
from repro.errors import (
    CircuitOpenError,
    ClusterError,
    PolicyError,
    RpcTransportError,
    StaleConnectionError,
)
from repro.runtime.net_shield import NetworkShield
from repro.runtime.syscall import SyscallInterface
from repro.tensor.arrays import decode_array_dict, encode_array_dict


@dataclass
class PSCheckpoint:
    """A resumable parameter-server snapshot (weights + dedup window).

    The dedup entries travel with the weights because they are one
    atomic state: restoring weights at version ``v`` without the call
    IDs that produced ``v`` would let a retried push apply twice.
    """

    weights: Dict[str, np.ndarray]
    version: int
    updates_applied: int
    dedup: list


class InMemoryCheckpointStore:
    """Checkpoint store surviving container crashes (models durable disk).

    In the paper's deployment this is the file-system shield writing
    encrypted checkpoints to a persistent volume; here an in-process dict
    keyed by PS address stands in, since the simulated crash kills the
    *container*, not the host storage.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[str, PSCheckpoint] = {}
        self.saves = 0
        #: Optional :class:`~repro.cluster.epoch.EpochGuard` over the
        #: ``ps`` role.  The store is the durable volume *shared* between
        #: a crashed PS and its replacement — the one place a zombie PS
        #: partitioned away from its workers can still destroy acked
        #: work by overwriting the replacement's checkpoints.  A fenced
        #: store rejects saves stamped with a stale epoch.
        self.guard = None

    def save(
        self, address: str, snapshot: PSCheckpoint, epoch: Optional[int] = None
    ) -> None:
        if self.guard is not None:
            self.guard.check(epoch)
        self._snapshots[address] = snapshot
        self.saves += 1

    def load(self, address: str) -> Optional[PSCheckpoint]:
        return self._snapshots.get(address)


class ParameterServer:
    """Holds master weights; applies pushed gradients with SGD."""

    def __init__(
        self,
        node: Node,
        address: str,
        network: Network,
        learning_rate: float,
        shield: Optional[NetworkShield] = None,
        allowed_peers: Optional[List[str]] = None,
        checkpoint_store: Optional[InMemoryCheckpointStore] = None,
        syscalls: Optional["SyscallInterface"] = None,
        store_key: Optional[str] = None,
    ) -> None:
        if learning_rate <= 0:
            raise ClusterError(f"learning rate must be positive: {learning_rate}")
        self.node = node
        self.address = address
        #: Logical service identity in the checkpoint store.  Defaults to
        #: the network address; a replacement PS launched at a *new* pod
        #: address passes the crashed one's key so it resumes the same
        #: lineage (and so a zombie predecessor contends for the same
        #: snapshot slot — which is what the store's fence arbitrates).
        self.store_key = store_key if store_key is not None else address
        self.learning_rate = learning_rate
        self._weights: Dict[str, np.ndarray] = {}
        self._version = 0
        self._allowed = allowed_peers
        self.updates_applied = 0
        #: Leadership lease over the ``ps`` role (set by the recovery
        #: supervisor when fencing is on).  Its cached epoch is presented
        #: to the checkpoint store's guard on every save: a zombie PS
        #: keeps stamping its dead epoch and the store says no — the
        #: rejection propagates through ``on_committed``, which also
        #: rolls the call out of the dedup window, so the push that
        #: could not checkpoint never reads as committed.
        self.lease = None

        if shield is not None:
            self._server: RpcServer = SecureRpcServer(
                network, address, node, shield, require_client_cert=True
            )
        else:
            self._server = RpcServer(network, address, node, syscalls=syscalls)
        #: Checkpoint persistence I/O is charged through the same
        #: syscall plane the endpoint's socket traffic uses.
        self._syscalls = syscalls if syscalls is not None else self._server._syscalls
        self._server.register("pull", self._handle_pull)
        self._server.register("push", self._handle_push)
        self._server.start()

        self._store = checkpoint_store
        self._checkpointed_version = -1
        if self._store is not None:
            snapshot = self._store.load(self.store_key)
            if snapshot is not None:
                # A predecessor at this address checkpointed: resume at
                # its exact version, with its dedup window, so retried
                # pushes stay at-most-once across the restart.
                self._weights = {k: v.copy() for k, v in snapshot.weights.items()}
                self._version = snapshot.version
                self.updates_applied = snapshot.updates_applied
                self._server.dedup_restore(snapshot.dedup)
                self._checkpointed_version = snapshot.version
            self._server.on_committed = self._maybe_checkpoint

    # ------------------------------------------------------------------

    def initialize(self, weights: Dict[str, np.ndarray]) -> None:
        self._weights = {k: np.array(v, dtype=np.float32) for k, v in weights.items()}
        self._version = 1
        self._maybe_checkpoint()

    @property
    def weights(self) -> Dict[str, np.ndarray]:
        return dict(self._weights)

    @property
    def version(self) -> int:
        return self._version

    def _check_peer(self, peer: Optional[str]) -> None:
        if self._allowed is not None:
            if peer is None or peer not in self._allowed:
                raise PolicyError(
                    f"peer {peer!r} is not an authorized training worker"
                )

    def _handle_pull(self, payload: bytes, peer: Optional[str]) -> bytes:
        self._check_peer(peer)
        if not self._weights:
            raise ClusterError("parameter server has no initialized weights")
        return encoding.encode(
            {"version": self._version, "weights": encode_array_dict(self._weights)}
        )

    def _handle_push(self, payload: bytes, peer: Optional[str]) -> bytes:
        self._check_peer(peer)
        body = encoding.decode(payload)
        gradients = decode_array_dict(body["gradients"])
        # Apply SGD on the PS node's clock (this is real PS work).
        flops = 0
        for name, grad in gradients.items():
            if name not in self._weights:
                raise ClusterError(f"gradient for unknown weight {name!r}")
            if grad.shape != self._weights[name].shape:
                raise ClusterError(
                    f"gradient shape {grad.shape} mismatches weight "
                    f"{self._weights[name].shape} for {name!r}"
                )
            self._weights[name] = (
                self._weights[name] - self.learning_rate * grad
            ).astype(np.float32)
            flops += 2 * grad.size
        declared_flops = body.get("declared_flops", flops)
        self.node.clock.advance(
            declared_flops / self.node.cost_model.flops_per_second_full_tf
        )
        self._version += 1
        self.updates_applied += 1
        return encoding.encode({"version": self._version})

    def _maybe_checkpoint(self) -> None:
        """Snapshot state after a committed call that changed the weights."""
        if self._store is None or self._version == self._checkpointed_version:
            return
        snapshot = PSCheckpoint(
            weights={k: v.copy() for k, v in self._weights.items()},
            version=self._version,
            updates_applied=self.updates_applied,
            dedup=self._server.dedup_snapshot(),
        )
        # Persisting the snapshot is real file I/O: charge it through
        # the shared syscall plane (write + continuations + fsync-like
        # rename ordering live there), not as ad-hoc clock time.
        payload_bytes = (
            sum(int(w.nbytes) for w in snapshot.weights.values())
            + 64 * max(1, len(snapshot.dedup))
        )
        self._syscalls.write_file(
            f"/checkpoints/{self.address}.ckpt", b"", declared_size=payload_bytes
        )
        self._store.save(
            self.store_key,
            snapshot,
            epoch=self.lease.epoch if self.lease is not None else None,
        )
        self._checkpointed_version = self._version

    def stop(self) -> None:
        self._server.stop()

    def crash(self) -> None:
        """Simulated container crash: vanish mid-run, no clean teardown."""
        self._server.abort()


@dataclass
class TrainingResult:
    """Outcome of a synchronous training run."""

    steps: int
    final_loss: float
    wall_clock: float
    per_worker_time: Dict[str, float]
    #: Scheduler events executed during this run (deliveries, replies,
    #: backoff timers, probes) — the event core's work metric.
    simulated_events: int = 0


class SyncTrainer:
    """Drives synchronous data-parallel rounds over PS + workers.

    With ``retry`` set, every worker→PS session retries transport
    faults with backoff (and reconnects dead secure sessions); with
    ``recovery`` set (a duck-typed supervisor exposing ``tick``,
    ``worker_ok``, ``replace_worker``, ``ps_ok``, ``recover_ps``),
    crashed containers are replaced mid-run and the round continues.
    """

    #: PS-level recovery attempts per call (beyond in-connection retries).
    MAX_RECOVERIES_PER_CALL = 3

    def __init__(
        self,
        network: Network,
        ps: ParameterServer,
        workers: List[TrainingWorker],
        retry: Optional[RetryPolicy] = None,
        recovery: Optional[object] = None,
    ) -> None:
        if not workers:
            raise ClusterError("training needs at least one worker")
        self._network = network
        self._ps = ps
        self._workers = workers
        self._retry = retry
        self._recovery = recovery
        self._connections: Dict[str, Union[SecureConnection, RpcClient]] = {}

    def _connection(self, worker: TrainingWorker):
        """A (possibly shielded) session from a worker to the PS."""
        if worker.name in self._connections:
            return self._connections[worker.name]
        if worker.shield is not None:
            client = SecureRpcClient(
                self._network,
                worker.address,
                worker.node,
                worker.shield,
                retry=self._retry,
            )
            # The PS certificate subject is CAS-assigned
            # ("session/name-index"); authenticity comes from the trusted
            # root, so no exact-name pinning here.
            conn: Union[SecureConnection, RpcClient] = client.connect(
                self._ps.address, expected_server=None
            )
        else:
            conn = _PlainConnection(
                RpcClient(
                    self._network, worker.address, worker.node, retry=self._retry
                ),
                self._ps.address,
            )
        self._connections[worker.name] = conn
        return conn

    # -- recovery hooks --------------------------------------------------

    def _ensure_alive(self, slot: int) -> TrainingWorker:
        """The worker for ``slot``, replacing it first if it crashed."""
        worker = self._workers[slot]
        if self._recovery is None or self._recovery.worker_ok(worker):
            return worker
        replacement = self._recovery.replace_worker(worker)
        self._connections.pop(worker.name, None)
        self._workers[slot] = replacement
        return replacement

    def _set_ps(self, ps: ParameterServer) -> None:
        self._ps = ps
        # The endpoint is back: stop shedding calls to it.
        for conn in self._connections.values():
            conn._client.reset_breaker(ps.address)

    def _ps_call(self, worker: TrainingWorker, method: str, payload: bytes, **kw):
        """One PS call, recovering a crashed PS between attempts."""
        recoveries = 0
        while True:
            conn = self._connection(worker)
            try:
                return conn.call(method, payload, **kw)
            except (RpcTransportError, StaleConnectionError, CircuitOpenError):
                if self._recovery is None:
                    raise
                recoveries += 1
                if recoveries > self.MAX_RECOVERIES_PER_CALL:
                    raise
                if not self._recovery.ps_ok():
                    replacement = self._recovery.recover_ps()
                    if replacement is None:
                        raise
                    self._set_ps(replacement)
                # Either way the session state is suspect: rebuild the
                # connection (full re-handshake in secure mode).
                self._connections.pop(worker.name, None)

    def train(self, batches: List, steps: Optional[int] = None) -> TrainingResult:
        """Run synchronous rounds until batches (or ``steps``) run out.

        Batches are dealt round-robin to workers; each round processes
        ``len(workers)`` batches in parallel.
        """
        total_steps = min(steps, len(batches)) if steps is not None else len(batches)
        clocks = [w.node.clock for w in self._workers] + [self._ps.node.clock]
        start = max(clock.now for clock in clocks)
        events_before = self._network.scheduler.events_processed
        losses: List[float] = []

        declared = self._workers[0].declared_model_bytes

        index = 0
        round_index = 0
        while index < total_steps:
            # Round boundary: scheduled container crashes fire here (and
            # only here), so recovery traces are independent of how
            # retries shifted the clock within the previous round.
            if self._recovery is not None:
                self._recovery.tick(round_index)
            round_workers = []
            for slot in range(len(self._workers)):
                if index >= total_steps:
                    break
                round_workers.append((self._ensure_alive(slot), batches[index]))
                index += 1
            round_index += 1

            # Phase 1: every worker pulls the current weights.  Pulls are
            # grouped before any compute so that the (cheap) PS handler
            # work does not artificially serialize the round — on a real
            # cluster the pulls overlap the same way.
            for worker, _ in round_workers:
                with probe.span(
                    worker.node.clock,
                    "train.pull",
                    category="training",
                    attrs={"worker": worker.name, "round": round_index},
                ):
                    pulled = encoding.decode(
                        self._ps_call(worker, "pull", b"", declared_response=declared)
                    )
                    worker.load_weights(decode_array_dict(pulled["weights"]))

            # Phase 2: gradient computation, in parallel across nodes
            # (each worker advances only its own node's clock).
            round_grads = []
            for worker, (images, labels) in round_workers:
                with probe.span(
                    worker.node.clock,
                    "train.compute",
                    category="training",
                    attrs={"worker": worker.name, "round": round_index},
                ):
                    gradients, loss = worker.compute_gradients(images, labels)
                losses.append(loss)
                round_grads.append((worker, gradients))

            # Phase 3: pushes; the PS serializes the applies (sequential
            # in worker order, so float accumulation order — and hence
            # the final weights — is identical run to run).
            for worker, gradients in round_grads:
                push_payload = encoding.encode(
                    {
                        "gradients": encode_array_dict(gradients),
                        "declared_flops": 2 * declared // 4,
                    }
                )
                with probe.span(
                    worker.node.clock,
                    "train.push",
                    category="training",
                    attrs={"worker": worker.name, "round": round_index},
                ):
                    self._ps_call(worker, "push", push_payload, declared_request=declared)
            clocks = [w.node.clock for w in self._workers] + [self._ps.node.clock]
            self._network.barrier(clocks)

        wall = max(clock.now for clock in clocks) - start
        return TrainingResult(
            steps=total_steps,
            final_loss=float(np.mean(losses[-len(self._workers):])) if losses else float("nan"),
            wall_clock=wall,
            per_worker_time={w.name: w.node.clock.now for w in self._workers},
            simulated_events=self._network.scheduler.events_processed - events_before,
        )


class ShardedParameterService:
    """Weights partitioned across several parameter servers (Fig. 2).

    Distributed TensorFlow shards variables across PS tasks so no single
    server's memory or network link bottlenecks the model.  Variables
    are assigned round-robin by sorted name; pulls/pushes fan out to the
    owning shard.
    """

    def __init__(self, shards: List[ParameterServer]) -> None:
        if not shards:
            raise ClusterError("sharded service needs at least one PS")
        self._shards = shards
        self._assignment: Dict[str, ParameterServer] = {}

    @property
    def shards(self) -> List[ParameterServer]:
        return list(self._shards)

    def initialize(self, weights: Dict[str, np.ndarray]) -> None:
        partitions: List[Dict[str, np.ndarray]] = [
            {} for _ in self._shards
        ]
        for index, name in enumerate(sorted(weights)):
            shard = self._shards[index % len(self._shards)]
            self._assignment[name] = shard
            partitions[index % len(self._shards)][name] = weights[name]
        for shard, partition in zip(self._shards, partitions):
            shard.initialize(partition)

    def shard_of(self, name: str) -> ParameterServer:
        if name not in self._assignment:
            raise ClusterError(f"no shard owns weight {name!r}")
        return self._assignment[name]

    @property
    def weights(self) -> Dict[str, np.ndarray]:
        merged: Dict[str, np.ndarray] = {}
        for shard in self._shards:
            merged.update(shard.weights)
        return merged

    def partition_gradients(
        self, gradients: Dict[str, np.ndarray]
    ) -> Dict[str, Dict[str, np.ndarray]]:
        """Group a gradient dict by owning shard address."""
        grouped: Dict[str, Dict[str, np.ndarray]] = {}
        for name, grad in gradients.items():
            address = self.shard_of(name).address
            grouped.setdefault(address, {})[name] = grad
        return grouped

    def stop(self) -> None:
        for shard in self._shards:
            shard.stop()


class AsyncTrainer:
    """Asynchronous (Hogwild-style) PS training: no round barrier.

    Each worker loops pull → compute → push at its own pace; the PS
    applies updates as they arrive, so fast workers are never blocked by
    stragglers, at the cost of gradient staleness.  This is distributed
    TensorFlow's between-graph asynchronous mode, included here to show
    the stateful-computing substrate supports both disciplines.
    """

    def __init__(
        self,
        network: Network,
        ps: ParameterServer,
        workers: List[TrainingWorker],
    ) -> None:
        if not workers:
            raise ClusterError("training needs at least one worker")
        self._sync = SyncTrainer(network, ps, workers)
        self._network = network
        self._ps = ps
        self._workers = workers

    def train(self, batches: List, steps: Optional[int] = None) -> TrainingResult:
        """Run until batches (or ``steps``) are exhausted, no barriers.

        Implementation note: with one clock per node, events must be
        processed in rough timestamp order or the (sequential) Python
        loop serializes concurrent workers through the PS clock.  Each
        cycle therefore issues all pulls, then all computes, then all
        pushes — the same interleaving SyncTrainer uses — but *without*
        the end-of-round barrier: a fast worker's clock runs ahead and it
        simply trains on staler weights, which is async semantics.
        """
        total = min(steps, len(batches)) if steps is not None else len(batches)
        declared = self._workers[0].declared_model_bytes
        clocks = [w.node.clock for w in self._workers] + [self._ps.node.clock]
        start = max(clock.now for clock in clocks)
        events_before = self._network.scheduler.events_processed
        losses: List[float] = []

        index = 0
        while index < total:
            cycle = []
            for worker in self._workers:
                if index >= total:
                    break
                cycle.append((worker, batches[index]))
                index += 1
            for worker, _ in cycle:
                conn = self._sync._connection(worker)
                pulled = encoding.decode(
                    conn.call("pull", b"", declared_response=declared)
                )
                worker.load_weights(decode_array_dict(pulled["weights"]))
            grads = []
            for worker, (images, labels) in cycle:
                gradients, loss = worker.compute_gradients(images, labels)
                losses.append(loss)
                grads.append((worker, gradients))
            for worker, gradients in grads:
                conn = self._sync._connection(worker)
                conn.call(
                    "push",
                    encoding.encode(
                        {
                            "gradients": encode_array_dict(gradients),
                            "declared_flops": 2 * declared // 4,
                        }
                    ),
                    declared_request=declared,
                )
            # No barrier: clocks drift apart exactly as async training's do.

        wall = max(clock.now for clock in clocks) - start
        return TrainingResult(
            steps=total,
            final_loss=float(np.mean(losses[-len(self._workers):]))
            if losses
            else float("nan"),
            wall_clock=wall,
            per_worker_time={w.name: w.node.clock.now for w in self._workers},
            simulated_events=self._network.scheduler.events_processed - events_before,
        )


class _PlainConnection:
    """Adapter giving RpcClient the SecureConnection.call signature."""

    def __init__(self, client: RpcClient, dst: str) -> None:
        self._client = client
        self._dst = dst

    def call(
        self,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> bytes:
        return self._client.call(
            self._dst,
            method,
            payload,
            declared_request=declared_request,
            declared_response=declared_response,
        )
