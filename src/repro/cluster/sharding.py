"""Deterministic weight sharding + gradient quantization (§5.4 scale-out).

The sharded training plane partitions the model across N parameter-server
enclaves.  Two pieces live here because both ends of the wire must agree
on them bit-for-bit:

:class:`ShardMap`
    A deterministic assignment of model state to shards.  Variables
    bigger than a shard's fair share are split into contiguous **row
    ranges** (axis 0) — the same trick real sharded parameter servers
    use, and the only one that helps when one ``fc`` kernel is 96% of
    the model.  Pieces are placed by longest-processing-time greedy
    (sorted by descending size, name-tie-broken), so the map is a pure
    function of (variable shapes, shard count) and every worker, shard,
    and restarted replacement derives the identical map.

:class:`GradientQuantizer`
    Symmetric per-tensor affine quantization of gradients to ``bits``
    integers.  Cuts shield-crypto bytes on the wire ~4x at 8 bits; the
    codec is deterministic (``np.rint`` half-to-even, scale from the
    tensor's max magnitude) so two same-seed runs produce byte-identical
    wire payloads, and dequantized SGD stays reproducible under chaos.

Per-shard runtime counters (:class:`ShardTrainingStats`) also live here;
parameter servers register them with the stats registry so
``collect_metrics`` can aggregate the training plane per shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ClusterError

#: Wire-name separator between a variable and its row range.  ``#`` is
#: not produced by the tensor layer's scoped names, so piece keys never
#: collide with whole-variable names.
_PIECE_SEP = "#"


@dataclass(frozen=True)
class ShardPiece:
    """One contiguous slice of one variable, owned by one shard."""

    var: str
    key: str
    shard: int
    nbytes: int
    #: Row range [start, stop) along axis 0; ``None`` = whole variable.
    start: Optional[int] = None
    stop: Optional[int] = None

    @property
    def is_split(self) -> bool:
        return self.start is not None


class ShardMap:
    """Deterministic variable→shard partition with large-tensor splitting."""

    def __init__(self, pieces: List[ShardPiece], n_shards: int) -> None:
        if n_shards < 1:
            raise ClusterError(f"shard map needs at least one shard: {n_shards}")
        self.n_shards = n_shards
        self._pieces: Dict[str, ShardPiece] = {p.key: p for p in pieces}
        self._by_var: Dict[str, List[ShardPiece]] = {}
        for piece in pieces:
            self._by_var.setdefault(piece.var, []).append(piece)
        for parts in self._by_var.values():
            parts.sort(key=lambda p: (p.start if p.start is not None else 0))

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls, variables: Mapping[str, np.ndarray], n_shards: int
    ) -> "ShardMap":
        """Derive the map from variable shapes alone.

        Deterministic in (shapes, dtypes, n_shards): every participant
        rebuilds the identical map from its own copy of the model.
        """
        if n_shards < 1:
            raise ClusterError(f"shard map needs at least one shard: {n_shards}")
        if not variables:
            raise ClusterError("cannot shard an empty variable set")
        total = sum(int(v.nbytes) for v in variables.values())
        target = max(1, -(-total // n_shards))  # ceil: a shard's fair share

        pieces: List[Tuple[str, str, int, Optional[int], Optional[int]]] = []
        for name in sorted(variables):
            value = variables[name]
            nbytes = int(value.nbytes)
            rows = int(value.shape[0]) if value.ndim >= 1 else 1
            if nbytes <= target or rows < 2:
                pieces.append((name, name, nbytes, None, None))
                continue
            # Split an oversized variable into even row ranges so no
            # single tensor pins the whole model to one shard.
            n_split = min(rows, -(-nbytes // target))
            base, rem = divmod(rows, n_split)
            row_bytes = nbytes // rows
            start = 0
            for i in range(n_split):
                stop = start + base + (1 if i < rem else 0)
                key = f"{name}{_PIECE_SEP}{start}:{stop}"
                pieces.append((name, key, (stop - start) * row_bytes, start, stop))
                start = stop

        # Longest-processing-time greedy: biggest piece first onto the
        # least-loaded shard (ties: lowest index) — balanced and stable.
        loads = [0] * n_shards
        placed: List[ShardPiece] = []
        for var, key, nbytes, start, stop in sorted(
            pieces, key=lambda p: (-p[2], p[1])
        ):
            shard = min(range(n_shards), key=lambda s: (loads[s], s))
            loads[shard] += nbytes
            placed.append(
                ShardPiece(
                    var=var, key=key, shard=shard, nbytes=nbytes,
                    start=start, stop=stop,
                )
            )
        return cls(placed, n_shards)

    # -- lookups ---------------------------------------------------------

    @property
    def pieces(self) -> List[ShardPiece]:
        return sorted(self._pieces.values(), key=lambda p: p.key)

    def piece(self, key: str) -> ShardPiece:
        try:
            return self._pieces[key]
        except KeyError:
            raise ClusterError(f"no shard piece {key!r}")

    def shards_of(self, var: str) -> List[int]:
        """All shards holding a slice of ``var`` (one unless split)."""
        if var not in self._by_var:
            raise ClusterError(f"no shard owns weight {var!r}")
        return sorted({p.shard for p in self._by_var[var]})

    def keys_on(self, shard: int) -> List[str]:
        return sorted(p.key for p in self._pieces.values() if p.shard == shard)

    def shard_nbytes(self) -> List[int]:
        sizes = [0] * self.n_shards
        for piece in self._pieces.values():
            sizes[piece.shard] += piece.nbytes
        return sizes

    @property
    def active_shards(self) -> List[int]:
        """Shards that own at least one piece (a map with fewer pieces
        than shards leaves the tail idle; the trainer skips them)."""
        return sorted({p.shard for p in self._pieces.values()})

    # -- tensor movement -------------------------------------------------

    def partition(
        self, tensors: Mapping[str, np.ndarray]
    ) -> List[Dict[str, np.ndarray]]:
        """Slice full tensors into per-shard piece dicts."""
        out: List[Dict[str, np.ndarray]] = [{} for _ in range(self.n_shards)]
        for var, value in tensors.items():
            if var not in self._by_var:
                raise ClusterError(f"no shard owns weight {var!r}")
            for piece in self._by_var[var]:
                sliced = (
                    value[piece.start:piece.stop] if piece.is_split else value
                )
                out[piece.shard][piece.key] = sliced
        return out

    def merge(
        self, parts: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Reassemble piece dicts (e.g. the union of shard pulls) into
        full variables; every piece of every touched variable must be
        present — a partial merge would train on frankenweights."""
        merged: Dict[str, np.ndarray] = {}
        for var, pieces in self._by_var.items():
            if not any(p.key in parts for p in pieces):
                continue
            missing = [p.key for p in pieces if p.key not in parts]
            if missing:
                raise ClusterError(
                    f"merge of {var!r} is missing pieces {missing}"
                )
            if len(pieces) == 1 and not pieces[0].is_split:
                merged[var] = np.asarray(parts[pieces[0].key])
            else:
                merged[var] = np.concatenate(
                    [np.asarray(parts[p.key]) for p in pieces], axis=0
                )
        return merged


class GradientQuantizer:
    """Symmetric per-tensor gradient quantization (deterministic).

    ``q = rint(g / scale)`` with ``scale = max|g| / qmax``; dequantized
    values are within ``scale/2`` of the original.  An all-zero tensor
    round-trips exactly (scale 0).  8 bits cuts the payload ~4x against
    float32 — which is what the shield's record crypto and the syscall
    ring are charged for.
    """

    def __init__(self, bits: int = 8) -> None:
        if not 2 <= bits <= 16:
            raise ClusterError(f"quantization bits must be in [2, 16]: {bits}")
        self.bits = bits
        self.qmax = (1 << (bits - 1)) - 1
        self._dtype = np.int8 if bits <= 8 else np.int16

    def quantize(
        self, tensors: Mapping[str, np.ndarray]
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, float]]:
        quantized: Dict[str, np.ndarray] = {}
        scales: Dict[str, float] = {}
        for name in sorted(tensors):
            value = np.asarray(tensors[name], dtype=np.float32)
            peak = float(np.max(np.abs(value))) if value.size else 0.0
            scale = peak / self.qmax if peak > 0.0 else 0.0
            if scale == 0.0:
                quantized[name] = np.zeros(value.shape, dtype=self._dtype)
            else:
                quantized[name] = np.clip(
                    np.rint(value / np.float32(scale)), -self.qmax, self.qmax
                ).astype(self._dtype)
            scales[name] = scale
        return quantized, scales

    def dequantize(
        self,
        quantized: Mapping[str, np.ndarray],
        scales: Mapping[str, float],
    ) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for name in sorted(quantized):
            scale = float(scales.get(name, 0.0))
            out[name] = (
                np.asarray(quantized[name], dtype=np.float32)
                * np.float32(scale)
            ).astype(np.float32)
        return out

    def error_bound(self, tensors: Mapping[str, np.ndarray]) -> Dict[str, float]:
        """Per-tensor worst-case round-trip error (half a quantum)."""
        bounds = {}
        for name, value in tensors.items():
            peak = float(np.max(np.abs(np.asarray(value)))) if np.asarray(value).size else 0.0
            bounds[name] = peak / self.qmax / 2.0
        return bounds

    def declared_bytes(self, float32_bytes: int, n_tensors: int = 1) -> int:
        """Wire-size declaration for a quantized payload that carried
        ``float32_bytes`` before: the integer lattice plus one float32
        scale per tensor."""
        return max(1, float32_bytes * self.bits // 32) + 4 * max(1, n_tensors)


@dataclass
class ShardTrainingStats:
    """Per-shard training-plane counters (registered per PS node clock)."""

    shard: str = ""
    pulls: int = 0
    pushes: int = 0
    restarts: int = 0
    quantized_pushes: int = 0
    gradient_bytes_in: int = 0
    gradient_bytes_saved: int = 0
    barrier_commits: int = 0


__all__ = [
    "GradientQuantizer",
    "ShardMap",
    "ShardPiece",
    "ShardTrainingStats",
]
