"""Retry/backoff, deadlines, and circuit breaking for cluster RPC.

The chaos plane (:mod:`repro.cluster.faults`) makes message loss and
transient partitions routine; this module is the client-side policy that
turns them from run-ending crashes into bounded latency:

- :class:`RetryPolicy` — exponential backoff with deterministic jitter
  (seeded through :class:`~repro._sim.rng.DeterministicRng`) and a
  per-call deadline in simulated seconds.
- :class:`CircuitBreaker` / :class:`BreakerRegistry` — per-endpoint
  failure shedding: after ``failure_threshold`` consecutive failures the
  breaker opens and calls fail fast with
  :class:`~repro.errors.CircuitOpenError` until ``reset_timeout``
  elapses, then a half-open probe decides.
- :class:`RetryingExecutor` — drives the loop: only *transport* faults
  (:class:`~repro.errors.RpcTransportError` and friends) are retried;
  security failures (``PolicyError``, ``IntegrityError``, …) and remote
  application errors are never retried — a denied request does not
  become allowed by asking again, and the paper's threat model requires
  tampering to surface, not to be smoothed over.
- :class:`RecoveryStats` — the counters every resilience layer (client
  retries, server dedup, session reconnects) reports through
  :mod:`repro.runtime.stats_registry` into ``collect_metrics``.

Backoff advances the caller's *simulated* clock, so retry storms cost
simulated time exactly like they cost wall-clock time in production.
With a :class:`~repro._sim.scheduler.Scheduler` attached (the normal
case — RPC clients pass their network's scheduler), each backoff is a
**timer event on the global heap** rather than an inline advance: the
sleeping caller parks, the rest of the fleet keeps executing whatever
deliveries and probes come first, and the wake-up event advances the
caller's clock to the exact same instant the inline advance reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, TypeVar

from repro._sim import probe
from repro._sim.clock import SimClock
from repro._sim.rng import DeterministicRng
from repro._sim.scheduler import Scheduler
from repro.errors import (
    CircuitOpenError,
    FencingError,
    RpcTransportError,
    SecurityError,
    StaleConnectionError,
)

T = TypeVar("T")

#: Failures worth retrying: the message may simply not have arrived.
RETRYABLE_ERRORS = (RpcTransportError, StaleConnectionError, CircuitOpenError)

#: Failures that are *authoritative*: the rejection IS the answer, and
#: re-asking (this endpoint or another) must never happen.  Security
#: errors because a denied request does not become allowed by asking
#: again; fencing errors because the caller has provably lost its
#: leadership epoch — retrying a fenced write is exactly the split-brain
#: commit that fencing exists to prevent.
AUTHORITATIVE_ERRORS = (SecurityError, FencingError)


def is_retryable(exc: BaseException) -> bool:
    """Transport-level faults are retryable; security and fencing
    failures never are."""
    if isinstance(exc, AUTHORITATIVE_ERRORS):
        return False
    return isinstance(exc, RETRYABLE_ERRORS)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and a per-call deadline."""

    max_attempts: int = 5
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1            # ± fraction of the computed delay
    deadline: Optional[float] = 30.0  # sim-seconds budget per call

    def backoff(self, retry_index: int, rng: Optional[DeterministicRng] = None) -> float:
        """Delay before retry number ``retry_index`` (0-based)."""
        delay = min(self.base_delay * self.multiplier ** retry_index, self.max_delay)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
        return delay


@dataclass
class RecoveryStats:
    """Resilience counters, aggregated platform-wide by ``collect_metrics``."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    giveups: int = 0
    backoff_time: float = 0.0
    reconnects: int = 0
    breaker_trips: int = 0
    breaker_rejections: int = 0
    dedup_hits: int = 0
    handshakes_expired: int = 0
    # Calls that died with a typed fencing rejection (FencedError /
    # LeaseExpiredError).  Counted client-side where the authoritative
    # error surfaces and the retry loop refuses to re-execute: a nonzero
    # value here means some sender was operating past the end of its
    # leadership epoch and the fence held.
    fenced_calls: int = 0
    # Live per-state breaker census (gauges, not cumulative counters):
    # how many of this endpoint set's circuit breakers currently sit in
    # each state.  Kept incrementally by every breaker transition so the
    # monitoring plane can show *which way* the fleet is leaning, not
    # just how often breakers tripped historically.
    breakers_closed: int = 0
    breakers_open: int = 0
    breakers_half_open: int = 0


#: RecoveryStats gauge field per public breaker state name.
_STATE_GAUGES = {
    "closed": "breakers_closed",
    "open": "breakers_open",
    "half-open": "breakers_half_open",
}


class CircuitBreaker:
    """Per-endpoint failure shedding (closed → open → half-open)."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        stats: Optional[RecoveryStats] = None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._stats = stats
        self._consecutive_failures = 0
        self._open_until: Optional[float] = None
        self._half_open = False
        if stats is not None:
            stats.breakers_closed += 1  # born closed

    @property
    def state(self) -> str:
        if self._open_until is None:
            return "half-open" if self._half_open else "closed"
        return "open"

    def _transition(self, before: str) -> None:
        after = self.state
        if self._stats is not None and after != before:
            setattr(
                self._stats,
                _STATE_GAUGES[before],
                getattr(self._stats, _STATE_GAUGES[before]) - 1,
            )
            setattr(
                self._stats,
                _STATE_GAUGES[after],
                getattr(self._stats, _STATE_GAUGES[after]) + 1,
            )

    def allow(self, now: float) -> bool:
        if self._open_until is None:
            return True
        if now >= self._open_until:
            # Cooldown elapsed: let one probe through.
            before = self.state
            self._open_until = None
            self._half_open = True
            self._transition(before)
            return True
        return False

    def on_success(self) -> None:
        before = self.state
        self._consecutive_failures = 0
        self._open_until = None
        self._half_open = False
        self._transition(before)

    def on_failure(self, now: float) -> None:
        before = self.state
        self._consecutive_failures += 1
        if self._half_open or self._consecutive_failures >= self.failure_threshold:
            self._open_until = now + self.reset_timeout
            self._half_open = False
            self._transition(before)
            if self._stats is not None:
                self._stats.breaker_trips += 1

    def reset(self) -> None:
        self.on_success()


class BreakerRegistry:
    """One :class:`CircuitBreaker` per remote endpoint."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        stats: Optional[RecoveryStats] = None,
    ) -> None:
        self._failure_threshold = failure_threshold
        self._reset_timeout = reset_timeout
        self._stats = stats
        self._breakers: Dict[str, CircuitBreaker] = {}

    def get(self, endpoint: str) -> CircuitBreaker:
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            breaker = CircuitBreaker(
                self._failure_threshold, self._reset_timeout, stats=self._stats
            )
            self._breakers[endpoint] = breaker
        return breaker

    def reset(self, endpoint: str) -> None:
        breaker = self._breakers.get(endpoint)
        if breaker is not None:
            breaker.reset()


class RetryingExecutor:
    """Runs an RPC attempt function under a retry policy and breaker."""

    def __init__(
        self,
        policy: RetryPolicy,
        clock: SimClock,
        rng: DeterministicRng,
        breakers: Optional[BreakerRegistry] = None,
        stats: Optional[RecoveryStats] = None,
        on_event: Optional[Callable[[str], None]] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._rng = rng
        self._scheduler = scheduler
        self.stats = stats if stats is not None else RecoveryStats()
        self.breakers = breakers if breakers is not None else BreakerRegistry(
            stats=self.stats
        )
        self._on_event = on_event

    def _event(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def run(
        self,
        endpoint: str,
        attempt_fn: Callable[[], T],
        deadline: Optional[float] = None,
    ) -> T:
        """Run ``attempt_fn`` with retries.  ``deadline`` (absolute
        simulated seconds) overrides the policy-derived budget — the
        propagated request deadline bounds the retry loop, so a doomed
        call is abandoned instead of backing off past the point anyone
        still cares about the answer."""
        policy = self.policy
        breaker = self.breakers.get(endpoint)
        if deadline is None:
            deadline = (
                self._clock.now + policy.deadline
                if policy.deadline is not None
                else None
            )
        self.stats.calls += 1
        retry_index = 0
        while True:
            if not breaker.allow(self._clock.now):
                self.stats.breaker_rejections += 1
                probe.flight(self._clock, "breaker", endpoint, "rejected: open")
                failure: Exception = CircuitOpenError(
                    f"circuit for endpoint {endpoint!r} is open"
                )
            else:
                try:
                    self.stats.attempts += 1
                    result = attempt_fn()
                    breaker.on_success()
                    return result
                except Exception as exc:
                    if not is_retryable(exc):
                        if isinstance(exc, FencingError):
                            self.stats.fenced_calls += 1
                            self._event(f"fenced {endpoint}")
                            probe.flight(
                                self._clock, "fenced", endpoint, type(exc).__name__
                            )
                        raise
                    breaker.on_failure(self._clock.now)
                    failure = exc
            retry_index += 1
            if retry_index >= policy.max_attempts:
                self.stats.giveups += 1
                probe.flight(
                    self._clock, "giveup", endpoint, f"attempts={retry_index}"
                )
                raise failure
            delay = policy.backoff(retry_index - 1, self._rng)
            if deadline is not None and self._clock.now + delay > deadline:
                self.stats.giveups += 1
                probe.flight(
                    self._clock, "giveup", endpoint, f"deadline attempts={retry_index}"
                )
                raise failure
            self.stats.retries += 1
            self.stats.backoff_time += delay
            self._event(f"retry {endpoint} attempt={retry_index + 1}")
            probe.flight(
                self._clock, "retry", endpoint, f"attempt={retry_index + 1}"
            )
            if self._scheduler is not None:
                # Backoff as a heap event: park until the wake-up timer
                # advances this clock to now + delay.  Identical clock
                # trajectory to the inline advance, but other nodes'
                # events scheduled inside the window execute first.
                self._scheduler.run_until(
                    self._scheduler.timer(
                        self._clock, delay, label=f"backoff:{endpoint}"
                    )
                )
            else:
                self._clock.advance(delay)
            if probe.ACTIVE is not None:
                probe.ACTIVE.charge(self._clock, "retry_backoff", delay)
                probe.ACTIVE.event(
                    self._clock,
                    "retry",
                    attrs={"endpoint": endpoint, "attempt": retry_index + 1},
                )


__all__ = [
    "AUTHORITATIVE_ERRORS",
    "BreakerRegistry",
    "CircuitBreaker",
    "RecoveryStats",
    "RetryPolicy",
    "RetryingExecutor",
    "RETRYABLE_ERRORS",
    "is_retryable",
]
