"""Epoch fencing: monotonic leadership tokens for leader-shaped roles.

The availability story so far (PR 2/3/7) assumes a failed leader is
*dead*: the watchdog probes, sees nothing, and promotes a replacement.
But a transiently partitioned CAS primary, parameter server, or serving
router stays alive — it keeps accepting writes from clients on its side
of the partition, keeps sealing state, keeps settling requests.  That is
the classic split-brain, and no amount of restart budgeting prevents it.

This module adds the standard cure — **fencing tokens**:

- :class:`EpochService` is the control-plane authority: a monotonic
  epoch per role name.  In production this registry lives in the
  replicated CAS database (epochs are ``epoch/<role>`` records that
  survive failover exactly like policies do — the ``backing`` hook
  persists every bump there); the service object here is the authority's
  interface.
- :class:`EpochLease` is what a leader holds: role + the epoch it was
  granted.  The lease **caches** its epoch — a zombie partitioned away
  from the authority keeps stamping its stale epoch, which is precisely
  the behaviour fencing exists to catch.  ``check()`` is the polite
  holder-side consult (raises :class:`~repro.errors.LeaseExpiredError`);
  ``stamp()`` never consults anything.
- :class:`EpochGuard` is acceptor-side state: the highest epoch this
  acceptor has seen for a role.  Requests stamped below it are rejected
  with a typed :class:`~repro.errors.FencedError` — authoritative, never
  retried (see :func:`repro.cluster.retry.is_retryable`).

The promotion protocol is **bump before promote**: the watchdog calls
:meth:`EpochService.bump` (which runs a *fence round*, advancing every
registered guard to the new epoch — in production an acked RPC to each
acceptor) and only then activates the replacement with the fresh lease.
From that instant, anything the zombie sends carries a dead epoch:
replication to the CAS standby, checkpoint saves to the shared store,
dispatches to serving replicas — every effector that matters says no.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro._sim import probe
from repro.errors import FencedError, LeaseExpiredError

#: Persists a bump into durable control-plane state (the CAS database):
#: called with ``(role, epoch)`` after every grant/bump.
EpochBacking = Callable[[str, int], None]


@dataclass
class FencingStats:
    """Fencing counters (surfaced through ``collect_metrics``)."""

    grants: int = 0
    bumps: int = 0
    fenced_rejections: int = 0
    lease_expiries: int = 0


@dataclass(frozen=True)
class FenceToken:
    """The wire form of a lease: what gets stamped into envelopes."""

    role: str
    epoch: int

    def to_fields(self) -> dict:
        return {"role": self.role, "epoch": self.epoch}


class EpochLease:
    """One leader's claim on a role at a specific epoch.

    Deliberately *not* self-invalidating: the holder caches the epoch it
    was granted and keeps stamping it.  Only an explicit :meth:`check`
    (possible when the holder can reach the authority) or an acceptor's
    :class:`~repro.errors.FencedError` reveals that the lease is dead.
    """

    __slots__ = ("role", "epoch", "holder", "_service")

    def __init__(
        self, service: "EpochService", role: str, epoch: int, holder: str = ""
    ) -> None:
        self._service = service
        self.role = role
        self.epoch = epoch
        self.holder = holder

    @property
    def stale(self) -> bool:
        """Authority consult: has this lease been superseded?"""
        return self._service.current(self.role) != self.epoch

    def token(self) -> FenceToken:
        return FenceToken(self.role, self.epoch)

    def stamp(self) -> dict:
        """Envelope fields for this lease — no authority consult, by
        design (a zombie must keep stamping its stale epoch)."""
        return {"role": self.role, "epoch": self.epoch}

    def check(self) -> None:
        """Holder-side validity check against the authority.

        Call this only where the holder legitimately has authority
        access (e.g. at a commit point on the control-plane side of the
        world); raises :class:`LeaseExpiredError` when superseded.
        """
        if self.stale:
            self._service.stats.lease_expiries += 1
            raise LeaseExpiredError(
                f"lease for role {self.role!r} held by "
                f"{self.holder or 'unknown'} at epoch {self.epoch} was "
                f"superseded (authority at {self._service.current(self.role)})"
            )

    def __repr__(self) -> str:
        return f"EpochLease({self.role!r}, epoch={self.epoch}, holder={self.holder!r})"


class EpochGuard:
    """Acceptor-side fencing state: highest epoch seen for one role.

    Each guard belongs to one downstream acceptor (the CAS standby's
    replication endpoint, the shared checkpoint store, a serving
    replica).  Guards learn new epochs two ways: a stamped request from
    the *new* leader, or the control plane's fence round at bump time
    (:meth:`EpochService.bump` advances every registered guard before
    the replacement is activated — that ordering is what closes the
    window where a zombie could still commit).
    """

    __slots__ = ("role", "name", "require", "highest_seen", "_stats")

    def __init__(
        self,
        role: str,
        name: str = "",
        require: bool = False,
        stats: Optional[FencingStats] = None,
    ) -> None:
        self.role = role
        self.name = name
        #: When True, unstamped requests are rejected too (an endpoint
        #: that only ever serves a fenced leader should insist on proof).
        self.require = require
        self.highest_seen = 0
        self._stats = stats

    def advance(self, epoch: int) -> None:
        """Control-plane fence round: remember the new epoch."""
        if epoch > self.highest_seen:
            self.highest_seen = epoch

    def check(self, epoch: Optional[int]) -> None:
        """Validate one request's stamped epoch (None = unstamped)."""
        if epoch is None:
            if self.require:
                if self._stats is not None:
                    self._stats.fenced_rejections += 1
                # Guards have no clock of their own: the recorder files
                # these under its control ring at fleet time.
                probe.flight(
                    None, "fence", self.role, f"unstamped acceptor={self.name or '?'}"
                )
                probe.incident(
                    "fence", self.role, detail=f"unstamped acceptor={self.name or '?'}"
                )
                raise FencedError(
                    f"acceptor {self.name or self.role!r} requires an epoch "
                    f"stamp for role {self.role!r}"
                )
            return
        if epoch < self.highest_seen:
            if self._stats is not None:
                self._stats.fenced_rejections += 1
            probe.flight(
                None,
                "fence",
                self.role,
                f"stale epoch={epoch} highest={self.highest_seen} "
                f"acceptor={self.name or '?'}",
            )
            probe.incident(
                "fence",
                self.role,
                detail=f"stale epoch={epoch} highest={self.highest_seen}",
            )
            raise FencedError(
                f"stale epoch {epoch} for role {self.role!r} at acceptor "
                f"{self.name or '?'} (highest seen {self.highest_seen}): "
                "sender was fenced"
            )
        self.highest_seen = epoch


class EpochService:
    """The fencing authority: one monotonic epoch per role name.

    Stands in for the epoch registry the replicated CAS database holds
    in production (``backing`` persists every bump there).  One service
    per deployment, owned by the control plane next to the orchestrator.
    """

    def __init__(self, backing: Optional[EpochBacking] = None) -> None:
        self._epochs: Dict[str, int] = {}
        self._guards: Dict[str, List[EpochGuard]] = {}
        self._leases: Dict[str, EpochLease] = {}
        self._backing = backing
        self.stats = FencingStats()
        #: Bump/grant log (canonical, for byte-identity replay checks).
        self.events: List[str] = []

    # -- queries ---------------------------------------------------------

    def current(self, role: str) -> int:
        return self._epochs.get(role, 0)

    def holder(self, role: str) -> Optional[EpochLease]:
        """The lease most recently granted for ``role`` (None = never)."""
        return self._leases.get(role)

    # -- guard registry --------------------------------------------------

    def register_guard(self, guard: EpochGuard) -> EpochGuard:
        """Enroll an acceptor's guard in the role's fence rounds."""
        self._guards.setdefault(guard.role, []).append(guard)
        guard.advance(self.current(guard.role))
        if guard._stats is None:
            guard._stats = self.stats
        return guard

    def make_guard(
        self, role: str, name: str = "", require: bool = False
    ) -> EpochGuard:
        """Create + register an acceptor guard in one step."""
        return self.register_guard(
            EpochGuard(role, name=name, require=require, stats=self.stats)
        )

    # -- mutations -------------------------------------------------------

    def bump(self, role: str) -> int:
        """Advance the role's epoch and fence every registered acceptor.

        This is the first half of every promotion: after it returns, any
        request stamped with the old epoch is rejected fleet-wide, so
        the replacement can be activated without a split-brain window.
        """
        epoch = self._epochs.get(role, 0) + 1
        self._epochs[role] = epoch
        self.stats.bumps += 1
        if self._backing is not None:
            self._backing(role, epoch)
        for guard in self._guards.get(role, []):
            guard.advance(epoch)
        self.events.append(f"bump {role} -> {epoch}")
        return epoch

    def grant(self, role: str, holder: str = "") -> EpochLease:
        """Bump the role's epoch and issue the lease for the new epoch.

        Granting *is* fencing: the previous holder's lease (if any) is
        stale the moment this returns.  The orchestrator calls this
        before activating a replacement leader.
        """
        epoch = self.bump(role)
        lease = EpochLease(self, role, epoch, holder=holder)
        self._leases[role] = lease
        self.stats.grants += 1
        self.events.append(f"grant {role} epoch={epoch} holder={holder}")
        return lease

    def restore(self, epochs: Dict[str, int]) -> None:
        """Rebuild authority state from persisted ``epoch/<role>`` records.

        Used when the control plane itself restarts (or fails over to
        the CAS standby's copy of the registry): epochs only ever move
        *forward* — a persisted record older than what this service
        already knows is ignored, so a stale replica of the registry can
        never un-fence a zombie.  Registered guards are advanced to the
        restored epochs, and a bump after restore is strictly greater
        than anything ever granted.
        """
        for role in sorted(epochs):
            epoch = int(epochs[role])
            if epoch <= self._epochs.get(role, 0):
                continue
            self._epochs[role] = epoch
            for guard in self._guards.get(role, []):
                guard.advance(epoch)
            self.events.append(f"restore {role} -> {epoch}")

    def trace_bytes(self) -> bytes:
        """Canonical grant/bump log (compared across seeded runs)."""
        return "\n".join(self.events).encode()


#: Key prefix epoch records use in the CAS secrets database.
EPOCH_KEY_PREFIX = "epoch/"


def load_epochs(db) -> Dict[str, int]:
    """Read persisted epoch records out of a CAS secrets database.

    Duck-typed over anything with ``keys()``/``get()`` returning bytes
    values, so the caller can hand in whichever replica survived.
    Malformed records are skipped (a half-written value must not brick
    the authority's restart).
    """
    epochs: Dict[str, int] = {}
    for key in db.keys():
        if not key.startswith(EPOCH_KEY_PREFIX):
            continue
        value = db.get(key)
        try:
            epochs[key[len(EPOCH_KEY_PREFIX):]] = int(bytes(value).decode())
        except (TypeError, ValueError):
            continue
    return epochs


__all__ = [
    "EPOCH_KEY_PREFIX",
    "EpochBacking",
    "EpochGuard",
    "EpochLease",
    "EpochService",
    "FencingStats",
    "FenceToken",
    "load_epochs",
]
