"""Fleet-scale replica traffic as stackless scheduler activities.

This is the load pattern the event core exists for: *hundreds* of
replicas, each alternating think-time with RPC to a peer, all live at
once.  Under the old synchronous walk each replica's RPC nested the
callee's execution inside the caller's Python stack and something had
to min-scan every clock to decide who acts next; here every replica is
a generator **activity** on the global event heap
(:meth:`~repro._sim.scheduler.Scheduler.spawn`), parking stacklessly on
timers and :meth:`~repro.cluster.network.Network.call_async`
completions, so a 256-replica fleet costs O(events · log events) and
zero stacked frames.

:class:`ReplicaFleet` models the serving-style gossip/heartbeat
workload used by ``benchmarks/bench_sim_core.py`` and the tier-2 perf
smoke: each replica is an echo endpoint plus an activity that, per
round, sleeps a deterministically jittered spacing and then calls its
ring successor.  Determinism: jitter draws come from each node's
seeded RNG children in replica order, and all interleaving is heap
order — two seeded runs produce identical traffic, stats, and clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro._sim.scheduler import Completion, Scheduler
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.errors import ClusterError, RpcTransportError


@dataclass
class FleetStats:
    """Aggregate traffic counters across all replicas of a fleet."""

    replicas: int = 0
    rounds: int = 0
    calls: int = 0
    responses: int = 0
    transport_errors: int = 0
    #: Per-replica completed round counts (index = replica index).
    rounds_per_replica: List[int] = field(default_factory=list)


class ReplicaFleet:
    """N replicas exchanging ring traffic as scheduler activities.

    Each replica ``i`` lives on ``nodes[i % len(nodes)]`` (sharing that
    node's clock, like co-located containers do), registers an echo
    endpoint ``{name}-{i}``, and runs an activity: per round, park on a
    jittered timer, then RPC the ring successor and park on the reply.
    Replicas tolerate transport faults (a lost heartbeat is counted,
    not fatal), so the fleet composes with the chaos plane.
    """

    def __init__(
        self,
        network: Network,
        nodes: List[Node],
        n_replicas: int,
        rounds: int = 1,
        payload: int = 128,
        spacing: float = 0.01,
        jitter: float = 0.5,
        name: str = "replica",
    ) -> None:
        if not nodes:
            raise ClusterError("a fleet needs at least one node")
        if n_replicas < 2:
            raise ClusterError("ring traffic needs at least two replicas")
        self._network = network
        self._scheduler: Scheduler = network.scheduler
        self._nodes = list(nodes)
        self._n = n_replicas
        self._rounds = rounds
        self._payload = bytes(payload)
        self._spacing = spacing
        self._jitter = jitter
        self._name = name
        self.stats = FleetStats(
            replicas=n_replicas, rounds_per_replica=[0] * n_replicas
        )
        self._homes: List[Node] = []
        for index in range(n_replicas):
            node = self._nodes[index % len(self._nodes)]
            self._homes.append(node)
            self._network.register(
                self._address(index),
                node.clock,
                lambda request: request,  # echo: heartbeat ack
            )

    def _address(self, index: int) -> str:
        return f"{self._name}-{index}"

    def _activity(self, index: int):
        """One replica's life: (sleep, call successor) × rounds."""
        node = self._homes[index]
        rng = node.rng.child(f"fleet-{self._name}-{index}")
        self_addr = self._address(index)
        peer_addr = self._address((index + 1) % self._n)
        for _ in range(self._rounds):
            delay = self._spacing * (
                1.0 + self._jitter * rng.uniform(-1.0, 1.0)
            )
            yield self._scheduler.timer(
                node.clock, delay, label=f"{self_addr}:pace"
            )
            self.stats.calls += 1
            try:
                completion: Completion = self._network.call_async(
                    self_addr, node.clock, peer_addr, self._payload
                )
            except RpcTransportError:
                self.stats.transport_errors += 1
                continue
            try:
                yield completion
            except RpcTransportError:
                self.stats.transport_errors += 1
                continue
            self.stats.responses += 1
            self.stats.rounds_per_replica[index] += 1
        self.stats.rounds += 1
        return self.stats.rounds_per_replica[index]

    def launch(self) -> List[Completion]:
        """Spawn every replica's activity (does not drain the heap)."""
        return [
            self._scheduler.spawn(
                self._activity(index),
                name=self._address(index),
                clock=self._homes[index].clock,
            )
            for index in range(self._n)
        ]

    def run(self) -> FleetStats:
        """Launch the fleet and drain the heap to quiescence."""
        completions = self.launch()
        self._scheduler.run()
        for completion in completions:
            completion.result()  # surface unexpected activity failures
        return self.stats

    def shutdown(self) -> None:
        """Unregister every replica endpoint."""
        for index in range(self._n):
            self._network.unregister(self._address(index))

    def fleet_time(self) -> float:
        """Max simulated time across the replicas' home clocks."""
        return max(node.clock.now for node in self._homes)


__all__ = ["FleetStats", "ReplicaFleet"]
