"""Distributed secure training (paper §3.3.4 training, §5.4 evaluation).

A training job launches one parameter server and N workers as attested
containers, provisions them through CAS, and runs synchronous
data-parallel rounds.  The Fig. 8 configurations map directly:

- ``mode=NATIVE`` + ``network_shield=False`` → native TensorFlow,
- ``mode=SIM`` with/without the network shield,
- ``mode=HW`` with all features (the full secureTF stack).

Training always uses the full TensorFlow engine: Lite cannot train.

Containers are launched through the platform orchestrator, so elastic
recovery applies: with a ``retry_policy`` configured, the job doubles as
the :class:`~repro.cluster.parameter_server.SyncTrainer`'s recovery
supervisor — crashed workers are restarted (re-attested and
re-provisioned by the orchestrator's ``on_start`` hooks) and rejoin
their round, and a crashed PS is rebuilt from its checkpoint store at
the same network address, resuming at the exact version it reached.
Chaos plans (:class:`~repro.cluster.faults.FaultPlan`) attach via
:meth:`TrainingJob.attach_chaos`; their scheduled container crashes
fire at round boundaries through the trainer's ``tick``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.container import Container
from repro.crypto import encoding
from repro.cluster.faults import FaultPlan
from repro.cluster.orchestrator import ContainerSpec
from repro.cluster.parameter_server import (
    InMemoryCheckpointStore,
    ParameterServer,
    ShardedParameterService,
    ShardedSyncTrainer,
    SyncTrainer,
    TrainingResult,
)
from repro.cluster.sharding import GradientQuantizer
from repro.cluster.retry import RetryPolicy
from repro.cluster.worker import TrainingWorker
from repro.core.platform import SecureTFPlatform
from repro.crypto.ed25519 import Ed25519PublicKey
from repro.enclave.sgx import SgxMode
from repro.errors import ClusterError, ConfigurationError
from repro.runtime.scone import RuntimeConfig
from repro.tensor.engine import FULL_TF_PROFILE


def training_runtime_config(
    name: str,
    mode: SgxMode,
    max_threads: int = 8,
    syscall_ring_depth: int = 64,
    syscall_handler_threads: int = 2,
    tracing: bool = False,
) -> RuntimeConfig:
    """Runtime config (→ measurement) of a training container.

    ``tracing`` does not enter the measurement (see
    :class:`~repro.runtime.scone.RuntimeConfig`), so traced and untraced
    containers satisfy the same CAS policy.
    """
    return RuntimeConfig(
        name=name,
        mode=mode,
        binary_size=FULL_TF_PROFILE.binary_size,
        binary_identity=f"{name}:tensorflow".encode(),
        heap_size=128 * 1024 * 1024,
        max_threads=max_threads,
        syscall_ring_depth=syscall_ring_depth,
        syscall_handler_threads=syscall_handler_threads,
        fs_shield_enabled=False,  # training inputs fed via the PS protocol
        tracing=tracing,
    )


@dataclass
class TrainingJobConfig:
    """Everything that defines one Fig. 8-style run."""

    session: str
    n_workers: int = 1
    mode: SgxMode = SgxMode.HW
    network_shield: bool = True
    model_name: str = "mnist_cnn"
    learning_rate: float = 0.0005  # the paper's §5.4 setting
    threads_per_worker: int = 4
    seed: int = 0
    #: When set, worker→PS RPC retries with backoff AND the job
    #: supervises recovery (PS checkpoint/restore, container restarts).
    retry_policy: Optional[RetryPolicy] = None
    #: Restarts allowed per container lineage before quarantine.
    recovery_budget: int = 3
    #: Journaled (crash-consistent) checkpoint shield layout.
    checkpoint_journal: bool = False
    #: Replica count for checkpoint chunks (self-healing reads).
    checkpoint_replicas: int = 1
    #: Exit-less syscall ring shape for every container of the job
    #: (the paper's sync-vs-async / #handler-threads sweeps turn these).
    syscall_ring_depth: int = 64
    syscall_handlers: int = 2
    #: Parameter-server enclaves the model is weight-sharded across.
    #: 1 = the classic single-PS plane (exactly the pre-sharding
    #: behaviour); N > 1 partitions variables with a deterministic
    #: byte-balanced shard map and fans every pull/push out per shard.
    ps_shards: int = 1
    #: Quantize gradient pushes to this many bits (None = float32).
    #: Cuts the bytes crossing the network shield per push at a bounded
    #: rounding error; deterministic, so seeded runs stay byte-identical.
    #: A sharded-plane feature: ignored at ``ps_shards == 1`` (the
    #: single-PS plane is kept bit-compatible with earlier releases).
    gradient_quantization_bits: Optional[int] = None


class TrainingJob:
    """A launched PS + workers deployment."""

    def __init__(self, platform: SecureTFPlatform, config: TrainingJobConfig) -> None:
        if config.n_workers < 1:
            raise ConfigurationError("training needs at least one worker")
        if config.ps_shards < 1:
            raise ConfigurationError("training needs at least one PS shard")
        if config.network_shield and config.mode is SgxMode.NATIVE:
            raise ConfigurationError(
                "the network shield is part of the SCONE runtime; "
                "NATIVE mode cannot enable it"
            )
        self.platform = platform
        self.config = config
        self.workers: List[TrainingWorker] = []
        self.ps: Optional[ParameterServer] = None
        #: The sharded PS plane (None when ``ps_shards == 1``).
        self.ps_service: Optional[ShardedParameterService] = None
        self.trainer: Optional[SyncTrainer] = None
        self.quantizer: Optional[GradientQuantizer] = (
            GradientQuantizer(config.gradient_quantization_bits)
            if config.gradient_quantization_bits is not None
            else None
        )
        self._containers: List[Container] = []
        self._ps_spec: Optional[ContainerSpec] = None
        self._worker_spec: Optional[ContainerSpec] = None
        self._ps_container: Optional[Container] = None
        self._shard_specs: List[ContainerSpec] = []
        self._shard_containers: List[Optional[Container]] = []
        self._worker_containers: List[Container] = []
        self._worker_slots: Dict[str, int] = {}
        self._identities: Dict[str, object] = {}
        self._ps_store: Optional[InMemoryCheckpointStore] = None
        self._hook_installed = False
        #: Attached chaos plan (None = fault-free run).
        self.chaos: Optional[FaultPlan] = None
        #: Recovery decisions, in order (also mirrored into the chaos
        #: plan's trace so replay tests can compare one byte stream).
        self.recovery_events: List[str] = []

    # ------------------------------------------------------------------

    def _worker_config(self) -> RuntimeConfig:
        return training_runtime_config(
            f"{self.config.session}-worker",
            self.config.mode,
            self.config.threads_per_worker,
            syscall_ring_depth=self.config.syscall_ring_depth,
            syscall_handler_threads=self.config.syscall_handlers,
            tracing=self.platform.telemetry is not None,
        )

    def _ps_config(self) -> RuntimeConfig:
        return training_runtime_config(
            f"{self.config.session}-ps",
            self.config.mode,
            syscall_ring_depth=self.config.syscall_ring_depth,
            syscall_handler_threads=self.config.syscall_handlers,
            tracing=self.platform.telemetry is not None,
        )

    def register_session(self) -> None:
        """Register the CAS policy admitting this job's containers.

        Idempotent: a resumed job (crash recovery) reuses the session CAS
        already knows — its keys, secrets, and audit history must carry
        over for checkpoints to remain readable.
        """
        if self.config.session in self.platform.cas.policies.sessions():
            return
        self.platform.register_session(
            self.config.session,
            configs=[self._worker_config(), self._ps_config()],
            accept_debug=self.config.mode is not SgxMode.HW,
        )

    def _on_container_start(self, container: Container) -> None:
        """Orchestrator hook: attest + provision every container of this
        job — including *replacement* containers launched by supervision
        (a restarted enclave has fresh memory and must re-prove itself).
        """
        cfg = self.config
        if cfg.mode is SgxMode.NATIVE:
            return
        if not container.name.startswith(f"{cfg.session}-"):
            return
        identity = self.platform.provision_runtime(
            container.runtime, container.node, cfg.session
        )
        self._identities[container.name] = identity

    def _shield_for(self, container: Container):
        if not self.config.network_shield:
            return None
        identity = self._identities.get(container.name)
        if identity is None:
            return None
        return container.runtime.make_net_shield(
            identity.tls_identity(),
            [Ed25519PublicKey(identity.trusted_root)],
        )

    def _build_ps(self, container: Container) -> ParameterServer:
        """The PS service for ``container`` — a replacement restores from
        the checkpoint store (same address → same snapshot key)."""
        return ParameterServer(
            container.node,
            f"{self.config.session}-ps",
            self.platform.network,
            learning_rate=self.config.learning_rate,
            shield=self._shield_for(container),
            checkpoint_store=self._ps_store,
            # Checkpoint + socket I/O ride the PS enclave's syscall ring.
            syscalls=container.runtime.syscalls,
        )

    def _build_shard_ps(self, shard: int, container: Container) -> ParameterServer:
        """PS shard ``shard`` for ``container`` — the address doubles as
        the checkpoint-store key, so a replacement restores its own
        shard's snapshot lineage (and only that shard's)."""
        return ParameterServer(
            container.node,
            f"{self.config.session}-ps{shard}",
            self.platform.network,
            learning_rate=self.config.learning_rate,
            shield=self._shield_for(container),
            checkpoint_store=self._ps_store,
            syscalls=container.runtime.syscalls,
            quantizer=self.quantizer,
        )

    def _build_worker(self, slot: int, container: Container) -> TrainingWorker:
        worker = TrainingWorker(
            f"{self.config.session}-w{slot}",
            container.node,
            container.runtime,
            model_name=self.config.model_name,
            seed=self.config.seed,
            threads=self.config.threads_per_worker,
            shield=self._shield_for(container),
        )
        self._worker_slots[worker.name] = slot
        return worker

    def start(self) -> None:
        """Launch PS + workers via the orchestrator; attest and provision
        each (unless NATIVE)."""
        cfg = self.config
        nodes = self.platform.nodes
        orchestrator = self.platform.orchestrator
        if cfg.mode is not SgxMode.NATIVE:
            self.register_session()
        if not self._hook_installed:
            orchestrator.on_start.append(self._on_container_start)
            self._hook_installed = True
        if cfg.retry_policy is not None:
            self._ps_store = InMemoryCheckpointStore()
            orchestrator.restart_budget = cfg.recovery_budget
            if self.platform.epochs is not None:
                if cfg.ps_shards == 1:
                    # The checkpoint store is the durable acceptor shared
                    # by a crashed PS and its replacement: fence it, so a
                    # zombie PS cannot overwrite the successor's snapshots.
                    self._ps_store.guard = self.platform.epochs.make_guard(
                        "ps", name="ps-checkpoint-store"
                    )
                else:
                    # Sharded plane: one role (and one fence) per shard,
                    # keyed by the shard's snapshot slot, so restarting
                    # shard k never disturbs the other shards' epochs.
                    for k in range(cfg.ps_shards):
                        key = f"{cfg.session}-ps{k}"
                        self._ps_store.guards[key] = (
                            self.platform.epochs.make_guard(
                                f"ps-{k}", name=f"{key}-checkpoint-store"
                            )
                        )

        self._worker_spec = ContainerSpec(
            f"{cfg.session}-worker", lambda node, index: self._worker_config()
        )

        if cfg.ps_shards == 1:
            self._ps_spec = ContainerSpec(
                f"{cfg.session}-ps", lambda node, index: self._ps_config()
            )
            # Parameter server on the last node (paper runs PS/workers on
            # the same 3 machines; placement matches Fig. 2).
            self._ps_container = orchestrator.launch(self._ps_spec, node=nodes[-1])
            self._containers.append(self._ps_container)
            self.ps = self._build_ps(self._ps_container)
            if self.platform.epochs is not None:
                self.ps.lease = self.platform.epochs.grant(
                    "ps", holder=self._ps_container.name
                )
        else:
            # N shard enclaves, spread across nodes from the tail (the
            # single-PS placement generalized: shard 0 lands where the
            # lone PS would have).  Each shard gets its own spec so the
            # orchestrator tracks restart lineage per shard.
            shards: List[ParameterServer] = []
            for k in range(cfg.ps_shards):
                spec = ContainerSpec(
                    f"{cfg.session}-ps{k}", lambda node, index: self._ps_config()
                )
                self._shard_specs.append(spec)
                node = nodes[(len(nodes) - 1 - k) % len(nodes)]
                container = orchestrator.launch(spec, node=node)
                self._containers.append(container)
                self._shard_containers.append(container)
                ps = self._build_shard_ps(k, container)
                if self.platform.epochs is not None:
                    ps.lease = self.platform.epochs.grant(
                        f"ps-{k}", holder=container.name
                    )
                shards.append(ps)
            self.ps_service = ShardedParameterService(
                shards, barrier_store=self._ps_store
            )

        for index in range(cfg.n_workers):
            # One worker per node, wrapping (the paper's 3-machine cluster
            # colocates the PS with a worker; PS work is microseconds).
            node = nodes[index % len(nodes)]
            container = orchestrator.launch(self._worker_spec, node=node)
            self._containers.append(container)
            self._worker_containers.append(container)
            self.workers.append(self._build_worker(index, container))

        if cfg.ps_shards == 1:
            self.ps.initialize(self.workers[0].initial_weights())
            self.trainer = SyncTrainer(
                self.platform.network,
                self.ps,
                self.workers,
                retry=cfg.retry_policy,
                recovery=self if cfg.retry_policy is not None else None,
            )
        else:
            self.ps_service.initialize(self.workers[0].initial_weights())
            self.trainer = ShardedSyncTrainer(
                self.platform.network,
                self.ps_service,
                self.workers,
                retry=cfg.retry_policy,
                recovery=self if cfg.retry_policy is not None else None,
                quantizer=self.quantizer,
            )

    def train(self, batches: List, steps: Optional[int] = None) -> TrainingResult:
        if self.trainer is None:
            raise ConfigurationError("start() the job before training")
        return self.trainer.train(batches, steps=steps)

    def simulated_events(self) -> int:
        """Total event-heap events executed on this job's platform so
        far (deliveries, replies, retry timers, watchdog probes)."""
        return self.platform.scheduler.events_processed

    # ------------------------------------------------------------------
    # Chaos attachment + recovery supervision (SyncTrainer's ``recovery``
    # protocol: tick / worker_ok / replace_worker / ps_ok / recover_ps).
    # ------------------------------------------------------------------

    def attach_chaos(self, plan: FaultPlan) -> None:
        """Subject this job's traffic to ``plan`` (message faults now,
        container crashes at the round boundaries the plan schedules)."""
        self.chaos = plan
        self.platform.network.faults.append(plan.inject)

    def record_recovery(self, event: str) -> None:
        self.recovery_events.append(event)
        if self.chaos is not None:
            self.chaos.record(event)

    def tick(self, round_index: int) -> None:
        """Round boundary: fire the chaos plan's scheduled crashes."""
        if self.chaos is None:
            return
        for crash in self.chaos.due_crashes(round_index):
            self._apply_crash(crash.target)

    def _apply_crash(self, target: str) -> None:
        if target == "ps" or (
            target.startswith("ps-") and target[3:].isdigit()
        ):
            if self.ps_service is not None:
                # Sharded plane: "ps" aliases shard 0 so single-PS chaos
                # plans replay unchanged against a sharded job.
                shard = 0 if target == "ps" else int(target[3:])
                if shard >= len(self._shard_containers):
                    raise ConfigurationError(f"no such PS shard {target!r}")
                container = self._shard_containers[shard]
                if container is not None and container.running:
                    self.platform.orchestrator.fail_container(container)
                    self.ps_service.shard(shard).crash()
            elif target in ("ps", "ps-0"):
                if self._ps_container is not None and self._ps_container.running:
                    self.platform.orchestrator.fail_container(self._ps_container)
                    self.ps.crash()
            else:
                raise ConfigurationError(f"unknown crash target {target!r}")
        elif target.startswith("worker-"):
            slot = int(target.rsplit("-", 1)[1])
            container = self._worker_containers[slot]
            if container.running:
                self.platform.orchestrator.fail_container(container)
        else:
            raise ConfigurationError(f"unknown crash target {target!r}")

    def worker_ok(self, worker: TrainingWorker) -> bool:
        slot = self._worker_slots.get(worker.name)
        if slot is None:
            return True
        return self._worker_containers[slot].running

    def replace_worker(self, worker: TrainingWorker) -> TrainingWorker:
        slot = self._worker_slots[worker.name]
        failed = self._worker_containers[slot]
        replacement = self.platform.orchestrator.restart(self._worker_spec, failed)
        if replacement is None:
            raise ClusterError(
                f"worker slot {slot} exhausted its restart budget"
            )
        self._containers.append(replacement)
        self._worker_containers[slot] = replacement
        new_worker = self._build_worker(slot, replacement)
        self.workers[slot] = new_worker
        self.record_recovery(
            f"worker-restart slot={slot} container={replacement.name}"
        )
        return new_worker

    def ps_ok(self) -> bool:
        return self._ps_container is not None and self._ps_container.running

    def recover_ps(self) -> Optional[ParameterServer]:
        """Restart the PS container and resume from its checkpoint."""
        if self.ps_ok():
            return self.ps
        replacement = self.platform.orchestrator.restart(
            self._ps_spec, self._ps_container
        )
        if replacement is None:
            return None
        # Bump BEFORE the replacement serves: the fence round advances
        # the checkpoint store's guard first, so even if the "crashed"
        # PS turns out to be a partitioned zombie, nothing it commits
        # from here on can land.
        lease = (
            self.platform.epochs.grant("ps", holder=replacement.name)
            if self.platform.epochs is not None
            else None
        )
        self._ps_container = replacement
        self._containers.append(replacement)
        self.ps = self._build_ps(replacement)
        self.ps.lease = lease
        self.record_recovery(
            f"ps-restart container={replacement.name} version={self.ps.version}"
        )
        return self.ps

    # -- sharded-PS supervision (ShardedSyncTrainer's ``recovery``
    # protocol: tick / worker_ok / replace_worker / shard_ok /
    # recover_shard) -- ------------------------------------------------

    def shard_ok(self, shard: int) -> bool:
        container = self._shard_containers[shard]
        return container is not None and container.running

    def recover_shard(self, shard: int) -> Optional[ParameterServer]:
        """Restart shard ``shard``'s container and resume it from its
        own checkpoint slot, fence-first (the shard's epoch is bumped
        before the replacement serves, so the zombie predecessor's saves
        and barrier commits are dead on arrival)."""
        if self.shard_ok(shard):
            return self.ps_service.shard(shard)
        replacement = self.platform.orchestrator.restart(
            self._shard_specs[shard],
            self._shard_containers[shard],
            reason=f"ps-shard-{shard}",
        )
        if replacement is None:
            return None
        lease = (
            self.platform.epochs.grant(f"ps-{shard}", holder=replacement.name)
            if self.platform.epochs is not None
            else None
        )
        self._shard_containers[shard] = replacement
        self._containers.append(replacement)
        ps = self._build_shard_ps(shard, replacement)
        ps.lease = lease
        ps.shard_stats.restarts += 1
        self.record_recovery(
            f"ps-shard-restart shard={shard} container={replacement.name} "
            f"version={ps.version}"
        )
        return ps

    def weights(self) -> Dict:
        if self.ps_service is not None:
            return self.ps_service.weights
        if self.ps is None:
            raise ConfigurationError("job not started")
        return self.ps.weights

    # ------------------------------------------------------------------
    # Secure checkpointing (stateful computing, challenge ❺): the PS's
    # weights persist to untrusted storage through the file-system
    # shield, keyed by the session key and freshness-audited by CAS, so
    # a restarted job resumes from genuine, current state.
    # ------------------------------------------------------------------

    def _checkpoint_shield(self):
        from repro.cas.audit import ScopedFreshnessTracker
        from repro.runtime.fs_shield import (
            FileSystemShield,
            PathRule,
            ShieldPolicy,
        )
        from repro.runtime.syscall import SyscallInterface

        if self.config.mode is SgxMode.NATIVE:
            raise ConfigurationError(
                "secure checkpoints need a CAS session; NATIVE mode has none"
            )
        if self.ps is None and self.ps_service is None:
            raise ConfigurationError("job not started")
        node = (
            self.ps.node
            if self.ps is not None
            else self.ps_service.shard(0).node
        )
        syscalls = SyscallInterface(
            node.vfs, self.platform.cost_model, node.clock, mode=SgxMode.NATIVE
        )
        return FileSystemShield(
            syscalls,
            self.platform.active_cas.owner_fs_key(self.config.session),
            [PathRule("/secure/checkpoints/", ShieldPolicy.ENCRYPT)],
            self.platform.cost_model,
            node.clock,
            freshness=ScopedFreshnessTracker(
                self.platform.active_cas.audit,
                f"{self.config.session}@{node.node_id}",
            ),
            journal=self.config.checkpoint_journal,
            replicas=self.config.checkpoint_replicas,
        )

    def checkpoint_path(self) -> str:
        return f"/secure/checkpoints/{self.config.session}.ckpt"

    def save_checkpoint(self) -> str:
        """Persist the PS weights, encrypted + freshness-audited."""
        from repro.tensor.arrays import encode_array_dict

        version = (
            self.ps.version
            if self.ps is not None
            else max(s.version for s in self.ps_service.shards)
        )
        path = self.checkpoint_path()
        payload = encoding.encode(
            {
                "session": self.config.session,
                "version": version,
                "weights": encode_array_dict(self.weights()),
            }
        )
        self._checkpoint_shield().write_file(path, payload)
        return path

    def restore_checkpoint(self) -> int:
        """Load the latest audited checkpoint into the PS; returns its
        recorded PS version."""
        from repro.tensor.arrays import decode_array_dict

        payload = encoding.decode(
            self._checkpoint_shield().read_file(self.checkpoint_path())
        )
        if payload.get("session") != self.config.session:
            raise ConfigurationError(
                f"checkpoint belongs to session {payload.get('session')!r}"
            )
        restored = decode_array_dict(payload["weights"])
        if self.ps_service is not None:
            self.ps_service.initialize(restored)
        else:
            self.ps.initialize(restored)
        return int(payload["version"])

    def stop(self) -> None:
        if self.ps is not None:
            self.ps.stop()
        if self.ps_service is not None:
            self.ps_service.stop()
        for container in self._containers:
            if container.running:
                container.stop()
