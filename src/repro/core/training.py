"""Distributed secure training (paper §3.3.4 training, §5.4 evaluation).

A training job launches one parameter server and N workers as attested
containers, provisions them through CAS, and runs synchronous
data-parallel rounds.  The Fig. 8 configurations map directly:

- ``mode=NATIVE`` + ``network_shield=False`` → native TensorFlow,
- ``mode=SIM`` with/without the network shield,
- ``mode=HW`` with all features (the full secureTF stack).

Training always uses the full TensorFlow engine: Lite cannot train.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.container import Container
from repro.crypto import encoding
from repro.cluster.parameter_server import ParameterServer, SyncTrainer, TrainingResult
from repro.cluster.worker import TrainingWorker
from repro.core.platform import SecureTFPlatform
from repro.crypto.ed25519 import Ed25519PublicKey
from repro.enclave.sgx import SgxMode
from repro.errors import ConfigurationError
from repro.runtime.scone import RuntimeConfig
from repro.tensor.engine import FULL_TF_PROFILE


def training_runtime_config(
    name: str, mode: SgxMode, max_threads: int = 8
) -> RuntimeConfig:
    """Runtime config (→ measurement) of a training container."""
    return RuntimeConfig(
        name=name,
        mode=mode,
        binary_size=FULL_TF_PROFILE.binary_size,
        binary_identity=f"{name}:tensorflow".encode(),
        heap_size=128 * 1024 * 1024,
        max_threads=max_threads,
        fs_shield_enabled=False,  # training inputs fed via the PS protocol
    )


@dataclass
class TrainingJobConfig:
    """Everything that defines one Fig. 8-style run."""

    session: str
    n_workers: int = 1
    mode: SgxMode = SgxMode.HW
    network_shield: bool = True
    model_name: str = "mnist_cnn"
    learning_rate: float = 0.0005  # the paper's §5.4 setting
    threads_per_worker: int = 4
    seed: int = 0


class TrainingJob:
    """A launched PS + workers deployment."""

    def __init__(self, platform: SecureTFPlatform, config: TrainingJobConfig) -> None:
        if config.n_workers < 1:
            raise ConfigurationError("training needs at least one worker")
        if config.network_shield and config.mode is SgxMode.NATIVE:
            raise ConfigurationError(
                "the network shield is part of the SCONE runtime; "
                "NATIVE mode cannot enable it"
            )
        self.platform = platform
        self.config = config
        self.workers: List[TrainingWorker] = []
        self.ps: Optional[ParameterServer] = None
        self.trainer: Optional[SyncTrainer] = None
        self._containers: List[Container] = []

    # ------------------------------------------------------------------

    def _worker_config(self) -> RuntimeConfig:
        return training_runtime_config(
            f"{self.config.session}-worker",
            self.config.mode,
            self.config.threads_per_worker,
        )

    def _ps_config(self) -> RuntimeConfig:
        return training_runtime_config(
            f"{self.config.session}-ps", self.config.mode
        )

    def register_session(self) -> None:
        """Register the CAS policy admitting this job's containers.

        Idempotent: a resumed job (crash recovery) reuses the session CAS
        already knows — its keys, secrets, and audit history must carry
        over for checkpoints to remain readable.
        """
        if self.config.session in self.platform.cas.policies.sessions():
            return
        self.platform.register_session(
            self.config.session,
            configs=[self._worker_config(), self._ps_config()],
            accept_debug=self.config.mode is not SgxMode.HW,
        )

    def start(self) -> None:
        """Launch PS + workers; attest and provision each (unless NATIVE)."""
        cfg = self.config
        nodes = self.platform.nodes
        secure = cfg.mode is not SgxMode.NATIVE
        if secure:
            self.register_session()

        # Parameter server on the last node (paper runs PS/workers on the
        # same 3 machines; placement matches Fig. 2).
        ps_node = nodes[-1]
        ps_shield = None
        if secure:
            ps_container = Container(
                f"{cfg.session}-ps", ps_node, self._ps_config()
            )
            ps_runtime = ps_container.start()
            self._containers.append(ps_container)
            identity = self.platform.provision_runtime(
                ps_runtime, ps_node, cfg.session
            )
            if cfg.network_shield:
                ps_shield = ps_runtime.make_net_shield(
                    identity.tls_identity(),
                    [Ed25519PublicKey(identity.trusted_root)],
                )
        self.ps = ParameterServer(
            ps_node,
            f"{cfg.session}-ps",
            self.platform.network,
            learning_rate=cfg.learning_rate,
            shield=ps_shield if cfg.network_shield else None,
        )

        for index in range(cfg.n_workers):
            # One worker per node, wrapping (the paper's 3-machine cluster
            # colocates the PS with a worker; PS work is microseconds).
            node = nodes[index % len(nodes)]
            worker_shield = None
            if secure:
                container = Container(
                    f"{cfg.session}-worker-{index}", node, self._worker_config()
                )
                runtime = container.start()
                self._containers.append(container)
                identity = self.platform.provision_runtime(
                    runtime, node, cfg.session
                )
                if cfg.network_shield:
                    worker_shield = runtime.make_net_shield(
                        identity.tls_identity(),
                        [Ed25519PublicKey(identity.trusted_root)],
                    )
            else:
                container = Container(
                    f"{cfg.session}-worker-{index}", node, self._worker_config()
                )
                runtime = container.start()
                self._containers.append(container)
            self.workers.append(
                TrainingWorker(
                    f"{cfg.session}-w{index}",
                    node,
                    runtime,
                    model_name=cfg.model_name,
                    seed=cfg.seed,
                    threads=cfg.threads_per_worker,
                    shield=worker_shield,
                )
            )

        self.ps.initialize(self.workers[0].initial_weights())
        self.trainer = SyncTrainer(self.platform.network, self.ps, self.workers)

    def train(self, batches: List, steps: Optional[int] = None) -> TrainingResult:
        if self.trainer is None:
            raise ConfigurationError("start() the job before training")
        return self.trainer.train(batches, steps=steps)

    def weights(self) -> Dict:
        if self.ps is None:
            raise ConfigurationError("job not started")
        return self.ps.weights

    # ------------------------------------------------------------------
    # Secure checkpointing (stateful computing, challenge ❺): the PS's
    # weights persist to untrusted storage through the file-system
    # shield, keyed by the session key and freshness-audited by CAS, so
    # a restarted job resumes from genuine, current state.
    # ------------------------------------------------------------------

    def _checkpoint_shield(self):
        from repro.cas.audit import ScopedFreshnessTracker
        from repro.runtime.fs_shield import (
            FileSystemShield,
            PathRule,
            ShieldPolicy,
        )
        from repro.runtime.syscall import SyscallInterface

        if self.config.mode is SgxMode.NATIVE:
            raise ConfigurationError(
                "secure checkpoints need a CAS session; NATIVE mode has none"
            )
        if self.ps is None:
            raise ConfigurationError("job not started")
        node = self.ps.node
        syscalls = SyscallInterface(
            node.vfs, self.platform.cost_model, node.clock, mode=SgxMode.NATIVE
        )
        return FileSystemShield(
            syscalls,
            self.platform.cas.owner_fs_key(self.config.session),
            [PathRule("/secure/checkpoints/", ShieldPolicy.ENCRYPT)],
            self.platform.cost_model,
            node.clock,
            freshness=ScopedFreshnessTracker(
                self.platform.cas.audit,
                f"{self.config.session}@{node.node_id}",
            ),
        )

    def checkpoint_path(self) -> str:
        return f"/secure/checkpoints/{self.config.session}.ckpt"

    def save_checkpoint(self) -> str:
        """Persist the PS weights, encrypted + freshness-audited."""
        from repro.tensor.arrays import encode_array_dict

        path = self.checkpoint_path()
        payload = encoding.encode(
            {
                "session": self.config.session,
                "version": self.ps.version,
                "weights": encode_array_dict(self.ps.weights),
            }
        )
        self._checkpoint_shield().write_file(path, payload)
        return path

    def restore_checkpoint(self) -> int:
        """Load the latest audited checkpoint into the PS; returns its
        recorded PS version."""
        from repro.tensor.arrays import decode_array_dict

        payload = encoding.decode(
            self._checkpoint_shield().read_file(self.checkpoint_path())
        )
        if payload.get("session") != self.config.session:
            raise ConfigurationError(
                f"checkpoint belongs to session {payload.get('session')!r}"
            )
        self.ps.initialize(decode_array_dict(payload["weights"]))
        return int(payload["version"])

    def stop(self) -> None:
        if self.ps is not None:
            self.ps.stop()
        for container in self._containers:
            if container.running:
                container.stop()
