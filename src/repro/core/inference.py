"""The secure classification service (paper §4.2, deployment §6.1).

Lifecycle, exactly as the paper deploys it:

1. The model owner registers a session with CAS and uploads the model
   (and any code) to the node **encrypted under the session's fs key** —
   the cloud never sees plaintext weights.
2. A container starts, attests to CAS, and receives the fs key + TLS
   identity.
3. The service reads the model through the file-system shield (integrity
   + decryption inside the enclave), builds the interpreter, and serves
   classification requests over network-shield TLS.

The service supports both engines: TensorFlow Lite (the intended
deployment) and full TensorFlow (the §5.3 #4 comparison), and all three
modes (NATIVE baseline, SIM, HW).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._sim import probe
from repro.cas.audit import ScopedFreshnessTracker
from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.cluster.rpc import SecureRpcServer
from repro.core.platform import SecureTFPlatform
from repro.crypto.ed25519 import Ed25519PublicKey
from repro.enclave.sgx import SgxMode
from repro.errors import ConfigurationError, ReproError
from repro.runtime.fs_shield import FileSystemShield, PathRule, ShieldPolicy
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.runtime.syscall import SyscallInterface
from repro.tensor.arrays import decode_array
from repro.crypto import encoding
from repro.tensor.engine import (
    EngineProfile,
    ExecutionEngine,
    FULL_TF_PROFILE,
    LITE_PROFILE,
)
from repro.tensor.lite import Interpreter, LiteModel

MODEL_PATH_PREFIX = "/secure/models/"


def service_runtime_config(
    service_name: str,
    mode: SgxMode,
    engine: EngineProfile = LITE_PROFILE,
    fs_shield: bool = True,
    max_threads: int = 8,
    syscall_ring_depth: int = 64,
    syscall_handler_threads: int = 2,
) -> RuntimeConfig:
    """The runtime config (→ measurement) of an inference container."""
    return RuntimeConfig(
        name=service_name,
        mode=mode,
        binary_size=engine.binary_size,
        binary_identity=f"{service_name}:{engine.name}".encode(),
        heap_size=32 * 1024 * 1024,
        max_threads=max_threads,
        syscall_ring_depth=syscall_ring_depth,
        syscall_handler_threads=syscall_handler_threads,
        fs_shield_enabled=fs_shield and mode is not SgxMode.NATIVE,
        fs_rules=[PathRule(MODEL_PATH_PREFIX, ShieldPolicy.ENCRYPT)],
    )


def deploy_encrypted_model(
    platform: SecureTFPlatform,
    session: str,
    node: Node,
    model: LiteModel,
    path: Optional[str] = None,
) -> str:
    """Owner-side upload: encrypt the model under the session fs key.

    Runs outside any enclave (the owner's own machine): a plain syscall
    interface on the target node's storage, a shield armed with the key
    the owner fetched from CAS over its attested channel.
    """
    path = path or f"{MODEL_PATH_PREFIX}{model.name}.tflite"
    fs_key = platform.cas.owner_fs_key(session)
    owner_syscalls = SyscallInterface(
        node.vfs, platform.cost_model, node.clock, mode=SgxMode.NATIVE
    )
    owner_shield = FileSystemShield(
        owner_syscalls,
        fs_key,
        [PathRule(MODEL_PATH_PREFIX, ShieldPolicy.ENCRYPT)],
        platform.cost_model,
        node.clock,
        # Freshness scope is per (session, node): the same model path
        # exists on every node's own storage.
        freshness=ScopedFreshnessTracker(
            platform.cas.audit, f"{session}@{node.node_id}"
        ),
    )
    owner_shield.write_file(path, model.to_bytes(), declared_size=model.size_bytes)
    return path


@dataclass
class InferenceStats:
    requests: int = 0
    total_latency: float = 0.0
    startup_latency: float = 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.requests if self.requests else 0.0


class InferenceService:
    """One classification container (label_image-style service)."""

    def __init__(
        self,
        platform: SecureTFPlatform,
        session: str,
        node: Node,
        model_path: str,
        mode: SgxMode = SgxMode.HW,
        engine: EngineProfile = LITE_PROFILE,
        threads: int = 1,
        name: Optional[str] = None,
        fs_shield: bool = True,
    ) -> None:
        self.platform = platform
        self.session = session
        self.node = node
        self.model_path = model_path
        self.mode = mode
        self.engine_profile = engine
        self.threads = threads
        self.name = name or f"inference-{session}"
        self.fs_shield = fs_shield
        self.stats = InferenceStats()
        self.runtime: Optional[SconeRuntime] = None
        self.container: Optional[Container] = None
        self.interpreter: Optional[Interpreter] = None
        self._rpc: Optional[SecureRpcServer] = None
        self.identity = None

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Container start → attest/provision → load model → ready."""
        with probe.span(
            self.node.clock,
            "inference.startup",
            category="inference",
            attrs={"service": self.name},
        ):
            self._start_inner()

    def _start_inner(self) -> None:
        start_time = self.node.clock.now
        # The config here must match the one the policy was registered
        # with byte-for-byte: any difference changes the measurement and
        # CAS will refuse to provision.
        config = service_runtime_config(
            self.name, self.mode, self.engine_profile, fs_shield=self.fs_shield
        )
        self.container = Container(self.name, self.node, config)
        runtime = self.container.start()
        self.runtime = runtime

        if self.mode is not SgxMode.NATIVE:
            self.identity = self.platform.provision_runtime(
                runtime, self.node, self.session
            )
            if self.fs_shield:
                runtime.install_fs_key(
                    self.identity.fs_key,
                    freshness=ScopedFreshnessTracker(
                        self.platform.cas.audit,
                        f"{self.session}@{self.node.node_id}",
                    ),
                )

        model_bytes = runtime.read_protected(self.model_path)
        model = LiteModel.from_bytes(model_bytes)
        if self.engine_profile is FULL_TF_PROFILE:
            # §5.3 #4: run the same frozen graph under the full-TF engine.
            self.interpreter = _FullTfRunner(model, runtime, self.threads)
        else:
            self.interpreter = Interpreter(
                model, runtime=runtime, threads=self.threads
            )
        self.interpreter.allocate_tensors()
        self.stats.startup_latency = self.node.clock.now - start_time

    def classify(self, image: np.ndarray) -> int:
        """Classify one image locally (the Fig. 5/6 measurement path)."""
        if self.interpreter is None:
            raise ConfigurationError(f"service {self.name!r} is not started")
        before = self.node.clock.now
        with probe.span(
            self.node.clock,
            "inference.request",
            category="inference",
            attrs={"service": self.name},
        ):
            label = self.interpreter.classify(
                image[None] if image.ndim == 3 else image
            )
        self.stats.requests += 1
        self.stats.total_latency += self.node.clock.now - before
        return label

    def classify_batch(self, images: np.ndarray) -> List[int]:
        return [self.classify(image) for image in images]

    # ------------------------------------------------------------------

    def serve(self, address: Optional[str] = None) -> str:
        """Expose classification over network-shield TLS."""
        if self.runtime is None or self.identity is None:
            raise ConfigurationError("start() the service before serving")
        shield = self.runtime.make_net_shield(
            self.identity.tls_identity(),
            [Ed25519PublicKey(self.identity.trusted_root)],
        )
        address = address or self.name
        self._rpc = SecureRpcServer(
            self.platform.network, address, self.node, shield,
            require_client_cert=True,
        )

        def handle_classify(payload: bytes, peer) -> bytes:
            image = decode_array(encoding.decode(payload))
            label = self.classify(image)
            return encoding.encode({"label": label})

        self._rpc.register("classify", handle_classify)
        self._rpc.start()
        return address

    def stop(self) -> None:
        if self._rpc is not None:
            self._rpc.stop()
            self._rpc = None
        if self.container is not None and self.container.running:
            self.container.stop()


class _FullTfRunner:
    """Runs a Lite-format model under the full-TensorFlow engine profile.

    Used only by the §5.3 #4 comparison: same graph, same numerics, but
    the 87.4 MB binary and the heavyweight dispatch of full TensorFlow.
    """

    def __init__(self, model: LiteModel, runtime: SconeRuntime, threads: int) -> None:
        from repro.tensor.saver import import_graph
        from repro.tensor.session import Session

        self._model = model
        self._runtime = runtime
        self._threads = threads
        self._import_graph = import_graph
        self._session_cls = Session
        self._session = None
        self._imported = None

    def allocate_tensors(self) -> None:
        imported = self._import_graph(self._model.graph_blob)
        engine = ExecutionEngine(self._runtime, FULL_TF_PROFILE, threads=self._threads)
        self._imported = imported
        self._session = self._session_cls(
            graph=imported.graph, engine=engine, threads=self._threads
        )

    def classify(self, inputs: np.ndarray) -> int:
        output = self._session.run(
            self._imported.outputs[0], {self._imported.inputs[0]: inputs}
        )
        output = np.asarray(output)
        return int(np.argmax(output[0] if output.ndim > 1 else output))


def _boot_activity(
    platform: SecureTFPlatform,
    service: InferenceService,
    delay: float,
    after=None,
):
    """One service's boot as a scheduler activity.

    ``start()`` is synchronous legacy code: its RPCs park via the
    blocking bridge (``run_until``), which drains the heap and would
    execute *other* replicas' pending boots inside this one's Python
    stack — O(fleet) recursion.  Two guards keep the stack constant:

    - gate on ``after`` (the previous replica's boot completion), so at
      most one synchronous boot body is ever live.  Boots still overlap
      in *simulated* time: each advances only its own node's clock.
    - always park on the stagger timer (even at delay 0), so the boot
      body runs from the scheduler's top-level loop, never inside
      another boot's resolution stack.
    """
    if after is not None:
        try:
            yield after
        except ReproError:
            pass  # the failed boot reports through its own completion
    yield platform.scheduler.timer(
        service.node.clock, delay, label=f"boot:{service.name}"
    )
    service.start()
    return service


def launch_fleet(
    platform: SecureTFPlatform,
    services: List[InferenceService],
    stagger: float = 0.0,
) -> List[InferenceService]:
    """Boot many inference services as activities on the event heap.

    Elastic scale-out (paper challenge ❹) at fleet size: each service's
    start sequence — container start, attestation round-trip to CAS,
    key provisioning, model load through the fs shield — runs as a
    scheduler activity, so boots on *different* nodes interleave by
    simulated-time order on the global heap instead of executing in
    Python list order.  ``stagger`` spaces the boots ``i * stagger``
    simulated seconds apart (0 = thundering herd).

    Returns the services once every boot completed; a failed boot
    (attestation rejection, policy violation) re-raises here.
    """
    completions = []
    previous = None
    for index, service in enumerate(services):
        previous = platform.scheduler.spawn(
            _boot_activity(platform, service, index * stagger, after=previous),
            name=f"boot:{service.name}",
            clock=service.node.clock,
        )
        completions.append(previous)
    platform.scheduler.run()
    return [completion.result() for completion in completions]
