"""Secure federated learning — the medical use case of §6.2 (Fig. 10).

Hospitals train locally on their private data (their own machines, which
they trust) and share only model parameters.  Because local models still
leak (§6.2 cites model-inversion and GAN attacks), the *global
aggregation* runs inside an attested secureTF enclave: hospitals verify
the aggregator's quote before submitting, and all parameter exchange
rides network-shield TLS.

Aggregation is FedAvg: the global model is the example-count-weighted
mean of the submitted local models.

**Secure-aggregation mode** (``secure_aggregation=True``) strengthens
the trust story further, following the tf-encrypted / Bonawitz et al.
shape: the single aggregator becomes a *committee* of ``n_aggregators``
enclaves, and each hospital submits only **additive ring shares** of its
example-weighted update (:mod:`repro.crypto.masking`) — one share per
aggregator.  Any single aggregator (and any proper subset of the
committee) holds uniformly random masks, so even a compromised
aggregator enclave learns nothing about an individual hospital's model;
only the combination of *every* committee member's partial sum reveals
the aggregate.  Fixed-point ring arithmetic makes the masked aggregate
bit-exact: it equals the unmasked fixed-point FedAvg byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

import repro.tensor as tf
from repro._sim import probe
from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.cluster.rpc import SecureRpcClient, SecureRpcServer
from repro.core.platform import SecureTFPlatform
from repro.core.training import training_runtime_config
from repro.crypto import encoding
from repro.crypto.certs import Certificate
from repro.crypto.masking import (
    combine_tensor_shares,
    decode_fixed,
    share_tensors,
)
from repro.crypto.ed25519 import Ed25519PrivateKey, Ed25519PublicKey
from repro.crypto.tls import TlsIdentity
from repro.data.loaders import Dataset
from repro.enclave.attestation import AttestationVerifier
from repro.enclave.sgx import SgxMode
from repro.errors import AttestationError, ConfigurationError
from repro.tensor.arrays import decode_array_dict, encode_array_dict
from repro.tensor.variables import GLOBAL_VARIABLES


class Hospital:
    """A data owner doing local training on its own trusted hardware."""

    def __init__(
        self,
        name: str,
        node: Node,
        dataset: Dataset,
        model_name: str = "mnist_cnn",
        learning_rate: float = 0.05,
        batch_size: int = 50,
        seed: int = 0,
    ) -> None:
        from repro.models import build_model

        self.name = name
        self.node = node
        self.dataset = dataset
        self.batch_size = batch_size
        built = build_model(model_name, seed=seed)
        self._built = built
        with built.graph.as_default():
            self._labels = tf.placeholder(
                "float32", (None, dataset.num_classes), name=f"{name}/labels"
            )
            self._loss = tf.losses.softmax_cross_entropy(self._labels, built.logits)
            self._train_op = tf.optimizers.GradientDescent(learning_rate).minimize(
                self._loss
            )
        self._variables = [
            v for v in built.graph.get_collection(GLOBAL_VARIABLES) if v.trainable
        ]
        self._session = tf.Session(graph=built.graph)
        self.identity: Optional[TlsIdentity] = None

    def weights(self) -> Dict[str, np.ndarray]:
        return {v.name: v.value for v in self._variables}

    def load_weights(self, weights: Dict[str, np.ndarray]) -> None:
        for var in self._variables:
            var.load(weights[var.name])

    def local_train(self, steps: int, round_seed: int = 0) -> float:
        """Run ``steps`` local SGD steps; returns the last batch loss."""
        loss = float("nan")
        batches = self.dataset.batches(self.batch_size, shuffle_seed=round_seed)
        for _, (images, labels) in zip(range(steps), batches):
            loss = self._session.run(
                [self._loss, self._train_op],
                {self._built.input: images, self._labels: labels},
            )[0]
        return float(loss)

    def evaluate_accuracy(self, test: Dataset, n: int = 500) -> float:
        images = test.images[:n]
        labels = test.labels[:n]
        logits = self._session.run(
            self._built.logits, {self._built.input: images}
        )
        return float((np.argmax(logits, axis=1) == labels).mean())


class _AggregatorEnclave:
    """One committee member of the secure-aggregation mode.

    Holds only the *wrapping sum of the ring shares* submitted to it —
    uniformly random masks until combined with every other member's
    partial sum (the DataOwner/ModelOwner split of tf-encrypted: data
    owners submit shares, no single compute party sees plaintext).
    """

    def __init__(self, fl: "FederatedLearning", index: int, node: Node) -> None:
        self.fl = fl
        self.index = index
        self.node = node
        self.address = f"fl-agg{index}-{fl.session}"
        self.container: Optional[Container] = None
        self.server: Optional[SecureRpcServer] = None
        self.shield = None
        #: Wrapping per-tensor sum of the shares this member received.
        self.partial: Dict[str, np.ndarray] = {}
        self.submissions = 0
        self.total_examples = 0

    def start(self, config) -> None:
        self.container = Container(self.address, self.node, config)
        runtime = self.container.start()
        identity = self.fl.platform.provision_runtime(
            runtime, self.node, self.fl.session
        )
        self.shield = runtime.make_net_shield(
            identity.tls_identity(), [Ed25519PublicKey(identity.trusted_root)]
        )
        self.server = SecureRpcServer(
            self.fl.platform.network, self.address, self.node, self.shield,
            require_client_cert=True,
        )
        self.server.register("submit_share", self._handle_submit_share)
        self.server.register("pull_partial", self._handle_pull_partial)
        if self.index == 0:
            self.server.register("pull_global", self.fl._handle_pull)
        self.server.start()
        self.runtime = runtime

    def _handle_submit_share(self, payload: bytes, peer) -> bytes:
        self.fl._check_peer(peer)
        body = encoding.decode(payload)
        share = decode_array_dict(body["share"])
        for name in sorted(share):
            if name in self.partial:
                self.partial[name] = self.partial[name] + share[name]
            else:
                self.partial[name] = np.asarray(share[name], dtype=np.uint64)
        self.total_examples += int(body["n_examples"])
        self.submissions += 1
        self.fl.share_submissions += 1
        return b"ok"

    def _handle_pull_partial(self, payload: bytes, peer) -> bytes:
        # Committee-internal: only another attested enclave of this
        # session (never a hospital) may read a partial sum.
        if (
            peer is None
            or not peer.startswith(f"{self.fl.session}/")
            or "/hospital/" in peer
        ):
            raise AttestationError(
                f"peer {peer!r} is not an aggregator of session "
                f"{self.fl.session!r}"
            )
        reply = encoding.encode(
            {
                "partial": encode_array_dict(self.partial),
                "n_examples": self.total_examples,
                "submissions": self.submissions,
            }
        )
        self.reset()
        return reply

    def reset(self) -> None:
        self.partial = {}
        self.submissions = 0
        self.total_examples = 0

    def stop(self) -> None:
        if self.server is not None:
            self.server.stop()
        if self.container is not None and self.container.running:
            self.container.stop()


class FederatedLearning:
    """The attested global-aggregation enclave plus its hospital clients."""

    def __init__(
        self,
        platform: SecureTFPlatform,
        session: str,
        hospitals: List[Hospital],
        aggregator_node: Optional[Node] = None,
        mode: SgxMode = SgxMode.HW,
        secure_aggregation: bool = False,
        n_aggregators: int = 2,
    ) -> None:
        if len(hospitals) < 2:
            raise ConfigurationError("federated learning needs >= 2 parties")
        if secure_aggregation and n_aggregators < 2:
            raise ConfigurationError(
                "secure aggregation needs >= 2 aggregator enclaves "
                "(a single member's partial sum is the plaintext aggregate)"
            )
        self.platform = platform
        self.session = session
        self.hospitals = hospitals
        self.mode = mode
        self.secure_aggregation = secure_aggregation
        self.node = aggregator_node or platform.nodes[0]
        self._container: Optional[Container] = None
        self._server: Optional[SecureRpcServer] = None
        self._global: Dict[str, np.ndarray] = {}
        self._pending: List = []
        self.rounds_completed = 0
        #: Total ring-share submissions accepted across the committee.
        self.share_submissions = 0
        self.aggregators: List[_AggregatorEnclave] = []
        if secure_aggregation:
            nodes = platform.nodes
            start_index = nodes.index(self.node)
            self.aggregators = [
                _AggregatorEnclave(
                    self, i, nodes[(start_index + i) % len(nodes)]
                )
                for i in range(n_aggregators)
            ]
            self.address = self.aggregators[0].address
        else:
            self.address = f"fl-aggregator-{session}"

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Launch + attest the aggregator(s); issue hospital identities."""
        config = training_runtime_config(
            f"fl-{self.session}", self.mode
        )
        self.platform.register_session(
            self.session, [config], accept_debug=self.mode is not SgxMode.HW
        )
        verifier = AttestationVerifier(self.platform.provisioning.public_key())
        if self.secure_aggregation:
            # The whole committee runs the same attested image; hospitals
            # verify every member's quote — a single unattested member
            # would hold real shares.
            for aggregator in self.aggregators:
                aggregator.start(config)
                quote = aggregator.runtime.attest()
                report = verifier.verify(
                    quote, accept_debug=self.mode is not SgxMode.HW
                )
                if report.measurement != aggregator.runtime.measurement:
                    raise AttestationError(
                        f"aggregator {aggregator.address} quote does not "
                        "match its image"
                    )
        else:
            self._container = Container(self.address, self.node, config)
            runtime = self._container.start()
            identity = self.platform.provision_runtime(
                runtime, self.node, self.session
            )
            shield = runtime.make_net_shield(
                identity.tls_identity(), [Ed25519PublicKey(identity.trusted_root)]
            )
            self._server = SecureRpcServer(
                self.platform.network, self.address, self.node, shield,
                require_client_cert=True,
            )
            self._server.register("pull_global", self._handle_pull)
            self._server.register("submit", self._handle_submit)
            self._server.start()
            self._runtime = runtime

            # Hospitals verify the aggregator's quote before trusting it.
            quote = runtime.attest()
            report = verifier.verify(
                quote, accept_debug=self.mode is not SgxMode.HW
            )
            expected = runtime.measurement
            if report.measurement != expected:
                raise AttestationError(
                    "aggregator quote does not match its image"
                )

        # CAS issues each hospital a client TLS identity (data owners are
        # authenticated parties of the session).
        for hospital in self.hospitals:
            key_bytes, cert_bytes = self.platform.cas.keys.new_tls_identity(
                f"{self.session}/hospital/{hospital.name}",
                now=hospital.node.clock.now,
            )
            hospital.identity = TlsIdentity(
                signing_key=Ed25519PrivateKey(key_bytes),
                certificate=Certificate.from_bytes(cert_bytes),
            )

        self._global = self.hospitals[0].weights()

    # ------------------------------------------------------------------

    def _handle_pull(self, payload: bytes, peer) -> bytes:
        self._check_peer(peer)
        return encode_array_dict(self._global)

    def _handle_submit(self, payload: bytes, peer) -> bytes:
        self._check_peer(peer)
        body = encoding.decode(payload)
        weights = decode_array_dict(body["weights"])
        self._pending.append((weights, body["n_examples"]))
        if len(self._pending) == len(self.hospitals):
            self._aggregate()
        return b"ok"

    def _check_peer(self, peer) -> None:
        if peer is None or not peer.startswith(f"{self.session}/hospital/"):
            raise AttestationError(
                f"peer {peer!r} is not an authenticated hospital of "
                f"session {self.session!r}"
            )

    def _aggregate(self) -> None:
        """FedAvg over the pending submissions (inside the enclave)."""
        total = sum(n for _, n in self._pending)
        merged: Dict[str, np.ndarray] = {}
        for name in self._global:
            merged[name] = sum(
                weights[name] * (n / total) for weights, n in self._pending
            ).astype(np.float32)
        # Charge the aggregation compute on the enclave's clock.
        flops = 3 * sum(a.size for a in merged.values()) * len(self._pending)
        self.node.clock.advance(
            flops / self.node.cost_model.flops_per_second_full_tf
        )
        self._global = merged
        self._pending = []
        self.rounds_completed += 1

    # ------------------------------------------------------------------

    def run_round(self, local_steps: int = 5, round_seed: int = 0) -> float:
        """One federated round; returns the mean local loss."""
        if self._server is None and not self.aggregators:
            raise ConfigurationError("start() the federation first")
        losses = []
        for hospital in self.hospitals:
            assert hospital.identity is not None
            shield = _hospital_shield(self.platform, hospital)
            client = SecureRpcClient(
                self.platform.network,
                f"{hospital.name}@{hospital.node.node_id}-r{self.rounds_completed}-{round_seed}",
                hospital.node,
                shield=shield,
            )
            conn = client.connect(self.address, expected_server=None)
            global_weights = decode_array_dict(conn.call("pull_global", b""))
            hospital.load_weights(global_weights)
            losses.append(hospital.local_train(local_steps, round_seed=round_seed))
            if self.secure_aggregation:
                self._submit_shares(hospital, shield, round_seed)
            else:
                conn.call(
                    "submit",
                    encoding.encode(
                        {
                            "weights": encode_array_dict(hospital.weights()),
                            "n_examples": len(hospital.dataset),
                        }
                    ),
                )
        if self.secure_aggregation:
            self._finish_secure_round()
        self.platform.network.barrier(
            [h.node.clock for h in self.hospitals]
            + (
                [a.node.clock for a in self.aggregators]
                if self.aggregators
                else [self.node.clock]
            )
        )
        return float(np.mean(losses))

    # -- secure-aggregation round ----------------------------------------

    def _submit_shares(self, hospital: Hospital, shield, round_seed: int) -> None:
        """Split the hospital's example-weighted update into ring shares
        and hand exactly one share to each committee member.  The mask
        stream is seeded per (hospital, round), so seeded runs replay
        the identical shares."""
        n = len(hospital.dataset)
        weighted = {
            name: value * np.float32(n)
            for name, value in hospital.weights().items()
        }
        rng = hospital.node.rng.child(
            f"fl-mask-r{self.rounds_completed}-s{round_seed}-{hospital.name}"
        )
        with probe.span(
            hospital.node.clock,
            "secure_agg.mask",
            category="federated",
            attrs={"hospital": hospital.name, "round": self.rounds_completed},
        ):
            shares = share_tensors(weighted, len(self.aggregators), rng)
        for aggregator, share in zip(self.aggregators, shares):
            client = SecureRpcClient(
                self.platform.network,
                f"{hospital.name}@{hospital.node.node_id}"
                f"-agg{aggregator.index}-r{self.rounds_completed}-{round_seed}",
                hospital.node,
                shield=shield,
            )
            conn = client.connect(aggregator.address, expected_server=None)
            conn.call(
                "submit_share",
                encoding.encode(
                    {
                        "share": encode_array_dict(share),
                        "n_examples": n,
                    }
                ),
            )

    def _finish_secure_round(self) -> None:
        """Combine the committee's partial sums into the new global model.

        The primary member pulls every other member's partial over the
        attested channel, wrapping-adds them to its own, and only that
        combined ring sum — never any single partial — is decoded back
        to floats.  Exact fixed-point division by the example total
        yields the FedAvg mean, bit-identical to the unmasked
        fixed-point computation.
        """
        primary = self.aggregators[0]
        expected = len(self.hospitals)
        if primary.submissions != expected:
            raise ConfigurationError(
                f"round incomplete: {primary.submissions}/{expected} shares"
            )
        partials = [dict(primary.partial)]
        total = primary.total_examples
        client = SecureRpcClient(
            self.platform.network,
            f"{primary.address}-combine-r{self.rounds_completed}",
            primary.node,
            shield=primary.shield,
        )
        for member in self.aggregators[1:]:
            conn = client.connect(member.address, expected_server=None)
            body = encoding.decode(conn.call("pull_partial", b""))
            if int(body["submissions"]) != expected:
                raise ConfigurationError(
                    f"committee member {member.address} is missing shares"
                )
            partials.append(decode_array_dict(body["partial"]))
        primary.reset()
        with probe.span(
            primary.node.clock,
            "secure_agg.combine",
            category="federated",
            attrs={"round": self.rounds_completed, "members": len(self.aggregators)},
        ):
            combined = combine_tensor_shares(partials)
            self._global = {
                name: (decode_fixed(value) / np.float32(total)).astype(np.float32)
                for name, value in combined.items()
            }
            # Charge the combine + decode on the primary's enclave clock.
            flops = (
                3 * sum(a.size for a in combined.values()) * len(self.aggregators)
            )
            primary.node.clock.advance(
                flops / primary.node.cost_model.flops_per_second_full_tf
            )
        self.rounds_completed += 1

    def global_weights(self) -> Dict[str, np.ndarray]:
        return dict(self._global)

    def stop(self) -> None:
        if self._server is not None:
            self._server.stop()
        if self._container is not None and self._container.running:
            self._container.stop()
        for aggregator in self.aggregators:
            aggregator.stop()


def _hospital_shield(platform: SecureTFPlatform, hospital: Hospital):
    from repro.runtime.net_shield import NetworkShield

    return NetworkShield(
        hospital.identity,
        [platform.cas.keys.ca.public_key()],
        platform.cost_model,
        hospital.node.clock,
        hospital.node.rng.child(f"fl-{hospital.name}"),
    )
