"""Secure federated learning — the medical use case of §6.2 (Fig. 10).

Hospitals train locally on their private data (their own machines, which
they trust) and share only model parameters.  Because local models still
leak (§6.2 cites model-inversion and GAN attacks), the *global
aggregation* runs inside an attested secureTF enclave: hospitals verify
the aggregator's quote before submitting, and all parameter exchange
rides network-shield TLS.

Aggregation is FedAvg: the global model is the example-count-weighted
mean of the submitted local models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

import repro.tensor as tf
from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.cluster.rpc import SecureRpcClient, SecureRpcServer
from repro.core.platform import SecureTFPlatform
from repro.core.training import training_runtime_config
from repro.crypto import encoding
from repro.crypto.certs import Certificate
from repro.crypto.ed25519 import Ed25519PrivateKey, Ed25519PublicKey
from repro.crypto.tls import TlsIdentity
from repro.data.loaders import Dataset
from repro.enclave.attestation import AttestationVerifier
from repro.enclave.sgx import SgxMode
from repro.errors import AttestationError, ConfigurationError
from repro.tensor.arrays import decode_array_dict, encode_array_dict
from repro.tensor.variables import GLOBAL_VARIABLES


class Hospital:
    """A data owner doing local training on its own trusted hardware."""

    def __init__(
        self,
        name: str,
        node: Node,
        dataset: Dataset,
        model_name: str = "mnist_cnn",
        learning_rate: float = 0.05,
        batch_size: int = 50,
        seed: int = 0,
    ) -> None:
        from repro.models import build_model

        self.name = name
        self.node = node
        self.dataset = dataset
        self.batch_size = batch_size
        built = build_model(model_name, seed=seed)
        self._built = built
        with built.graph.as_default():
            self._labels = tf.placeholder(
                "float32", (None, dataset.num_classes), name=f"{name}/labels"
            )
            self._loss = tf.losses.softmax_cross_entropy(self._labels, built.logits)
            self._train_op = tf.optimizers.GradientDescent(learning_rate).minimize(
                self._loss
            )
        self._variables = [
            v for v in built.graph.get_collection(GLOBAL_VARIABLES) if v.trainable
        ]
        self._session = tf.Session(graph=built.graph)
        self.identity: Optional[TlsIdentity] = None

    def weights(self) -> Dict[str, np.ndarray]:
        return {v.name: v.value for v in self._variables}

    def load_weights(self, weights: Dict[str, np.ndarray]) -> None:
        for var in self._variables:
            var.load(weights[var.name])

    def local_train(self, steps: int, round_seed: int = 0) -> float:
        """Run ``steps`` local SGD steps; returns the last batch loss."""
        loss = float("nan")
        batches = self.dataset.batches(self.batch_size, shuffle_seed=round_seed)
        for _, (images, labels) in zip(range(steps), batches):
            loss = self._session.run(
                [self._loss, self._train_op],
                {self._built.input: images, self._labels: labels},
            )[0]
        return float(loss)

    def evaluate_accuracy(self, test: Dataset, n: int = 500) -> float:
        images = test.images[:n]
        labels = test.labels[:n]
        logits = self._session.run(
            self._built.logits, {self._built.input: images}
        )
        return float((np.argmax(logits, axis=1) == labels).mean())


class FederatedLearning:
    """The attested global-aggregation enclave plus its hospital clients."""

    def __init__(
        self,
        platform: SecureTFPlatform,
        session: str,
        hospitals: List[Hospital],
        aggregator_node: Optional[Node] = None,
        mode: SgxMode = SgxMode.HW,
    ) -> None:
        if len(hospitals) < 2:
            raise ConfigurationError("federated learning needs >= 2 parties")
        self.platform = platform
        self.session = session
        self.hospitals = hospitals
        self.mode = mode
        self.node = aggregator_node or platform.nodes[0]
        self._container: Optional[Container] = None
        self._server: Optional[SecureRpcServer] = None
        self._global: Dict[str, np.ndarray] = {}
        self._pending: List = []
        self.rounds_completed = 0
        self.address = f"fl-aggregator-{session}"

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Launch + attest the aggregator; issue hospital identities."""
        config = training_runtime_config(
            f"fl-{self.session}", self.mode
        )
        self.platform.register_session(
            self.session, [config], accept_debug=self.mode is not SgxMode.HW
        )
        self._container = Container(self.address, self.node, config)
        runtime = self._container.start()
        identity = self.platform.provision_runtime(runtime, self.node, self.session)
        shield = runtime.make_net_shield(
            identity.tls_identity(), [Ed25519PublicKey(identity.trusted_root)]
        )
        self._server = SecureRpcServer(
            self.platform.network, self.address, self.node, shield,
            require_client_cert=True,
        )
        self._server.register("pull_global", self._handle_pull)
        self._server.register("submit", self._handle_submit)
        self._server.start()
        self._runtime = runtime

        # Hospitals verify the aggregator's quote before trusting it.
        verifier = AttestationVerifier(self.platform.provisioning.public_key())
        quote = runtime.attest()
        report = verifier.verify(quote, accept_debug=self.mode is not SgxMode.HW)
        expected = runtime.measurement
        if report.measurement != expected:
            raise AttestationError("aggregator quote does not match its image")

        # CAS issues each hospital a client TLS identity (data owners are
        # authenticated parties of the session).
        for hospital in self.hospitals:
            key_bytes, cert_bytes = self.platform.cas.keys.new_tls_identity(
                f"{self.session}/hospital/{hospital.name}",
                now=hospital.node.clock.now,
            )
            hospital.identity = TlsIdentity(
                signing_key=Ed25519PrivateKey(key_bytes),
                certificate=Certificate.from_bytes(cert_bytes),
            )

        self._global = self.hospitals[0].weights()

    # ------------------------------------------------------------------

    def _handle_pull(self, payload: bytes, peer) -> bytes:
        self._check_peer(peer)
        return encode_array_dict(self._global)

    def _handle_submit(self, payload: bytes, peer) -> bytes:
        self._check_peer(peer)
        body = encoding.decode(payload)
        weights = decode_array_dict(body["weights"])
        self._pending.append((weights, body["n_examples"]))
        if len(self._pending) == len(self.hospitals):
            self._aggregate()
        return b"ok"

    def _check_peer(self, peer) -> None:
        if peer is None or not peer.startswith(f"{self.session}/hospital/"):
            raise AttestationError(
                f"peer {peer!r} is not an authenticated hospital of "
                f"session {self.session!r}"
            )

    def _aggregate(self) -> None:
        """FedAvg over the pending submissions (inside the enclave)."""
        total = sum(n for _, n in self._pending)
        merged: Dict[str, np.ndarray] = {}
        for name in self._global:
            merged[name] = sum(
                weights[name] * (n / total) for weights, n in self._pending
            ).astype(np.float32)
        # Charge the aggregation compute on the enclave's clock.
        flops = 3 * sum(a.size for a in merged.values()) * len(self._pending)
        self.node.clock.advance(
            flops / self.node.cost_model.flops_per_second_full_tf
        )
        self._global = merged
        self._pending = []
        self.rounds_completed += 1

    # ------------------------------------------------------------------

    def run_round(self, local_steps: int = 5, round_seed: int = 0) -> float:
        """One federated round; returns the mean local loss."""
        if self._server is None:
            raise ConfigurationError("start() the federation first")
        losses = []
        for hospital in self.hospitals:
            assert hospital.identity is not None
            client = SecureRpcClient(
                self.platform.network,
                f"{hospital.name}@{hospital.node.node_id}-r{self.rounds_completed}-{round_seed}",
                hospital.node,
                shield=_hospital_shield(self.platform, hospital),
            )
            conn = client.connect(self.address, expected_server=None)
            global_weights = decode_array_dict(conn.call("pull_global", b""))
            hospital.load_weights(global_weights)
            losses.append(hospital.local_train(local_steps, round_seed=round_seed))
            conn.call(
                "submit",
                encoding.encode(
                    {
                        "weights": encode_array_dict(hospital.weights()),
                        "n_examples": len(hospital.dataset),
                    }
                ),
            )
        self.platform.network.barrier(
            [h.node.clock for h in self.hospitals] + [self.node.clock]
        )
        return float(np.mean(losses))

    def global_weights(self) -> Dict[str, np.ndarray]:
        return dict(self._global)

    def stop(self) -> None:
        if self._server is not None:
            self._server.stop()
        if self._container is not None and self._container.running:
            self._container.stop()


def _hospital_shield(platform: SecureTFPlatform, hospital: Hospital):
    from repro.runtime.net_shield import NetworkShield

    return NetworkShield(
        hospital.identity,
        [platform.cas.keys.ca.public_key()],
        platform.cost_model,
        hospital.node.clock,
        hospital.node.rng.child(f"fl-{hospital.name}"),
    )
