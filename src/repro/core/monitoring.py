"""Platform monitoring: a TEEMon-style metrics snapshot.

The paper's group ships a continuous TEE performance monitor (TEEMon,
Middleware'20, cited as [51]); production secureTF deployments run it
alongside.  This module provides the equivalent introspection surface
for the simulated platform: one call collects the security- and
performance-relevant counters from every layer into a flat, printable
report — EPC pressure per node, shield traffic, attestation volume,
network totals, audit-log health.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.platform import SecureTFPlatform
from repro.crypto.aead import aead_cache_stats
from repro.runtime import stats_registry


def _is_max_field(name: str) -> bool:
    """High-water-mark counters combine by max, not sum."""
    return name.endswith("_peak") or name.startswith("max_")


#: Snapshot fields that are levels, not cumulative counters: an
#: interval ``diff`` keeps the later value instead of subtracting.
_GAUGE_FIELDS = frozenset(
    {
        "epc_capacity_granules",
        "epc_resident_granules",
        "epc_fault_rate",
        "cas_sessions",
        "cas_secrets",
        "breakers_closed",
        "breakers_open",
        "breakers_half_open",
        "heap_size",
        "activities_running",
        "activities_parked",
    }
)


def aggregate_into(target, source, prefixes: Sequence[str] = ("",)) -> None:
    """Fold ``source``'s counters into the metrics dataclass ``target``.

    Driven by ``dataclasses.fields(target)`` so a counter added to a
    metrics dataclass is aggregated automatically (forgetting it is a
    one-line test failure, not a silent zero): each target field is
    matched to a source attribute by stripping the first applicable
    prefix (``fs_crypto_bytes`` + prefix ``fs_`` → ``crypto_bytes``).
    Ints and floats sum, ``*_peak``/``max_*`` fields take the max, and
    dict fields merge additively per key.
    """
    for f in dataclasses.fields(target):
        value = None
        for prefix in prefixes:
            if prefix and not f.name.startswith(prefix):
                continue
            attr = f.name[len(prefix):]
            if hasattr(source, attr):
                value = getattr(source, attr)
                break
        if value is None:
            continue
        current = getattr(target, f.name)
        if isinstance(value, dict):
            for key, n in value.items():
                current[key] = current.get(key, 0) + n
        elif isinstance(value, bool):
            continue  # no boolean counters; never sum truth values
        elif isinstance(value, (int, float)):
            if _is_max_field(f.name):
                setattr(target, f.name, max(current, value))
            else:
                setattr(target, f.name, current + value)


def _diff_dataclass(later, earlier):
    """Field-wise interval delta between two metrics dataclasses.

    Cumulative counters subtract; gauges, high-water marks, booleans,
    and strings keep the later snapshot's value; dicts subtract per
    key; nested dataclasses recurse.
    """
    if type(later) is not type(earlier):
        raise TypeError(
            f"cannot diff {type(later).__name__} against {type(earlier).__name__}"
        )
    changes = {}
    for f in dataclasses.fields(later):
        a = getattr(later, f.name)
        b = getattr(earlier, f.name)
        if dataclasses.is_dataclass(a) and not isinstance(a, type):
            changes[f.name] = _diff_dataclass(a, b)
        elif isinstance(a, dict):
            changes[f.name] = {
                key: a.get(key, 0) - b.get(key, 0)
                for key in set(a) | set(b)
            }
        elif isinstance(a, (bool, str)) or a is None:
            changes[f.name] = a
        elif isinstance(a, (int, float)):
            if _is_max_field(f.name) or f.name in _GAUGE_FIELDS:
                changes[f.name] = a
            else:
                changes[f.name] = a - b
        else:
            changes[f.name] = a
    return dataclasses.replace(later, **changes)


@dataclass
class NodeMetrics:
    """Per-node counters."""

    node_id: str
    simulated_time: float
    epc_capacity_granules: int
    epc_resident_granules: int
    epc_faults: int
    epc_fault_time: float
    epc_fault_rate: float
    enclave_transitions: int

    @property
    def epc_utilization(self) -> float:
        if self.epc_capacity_granules == 0:
            return 0.0
        return self.epc_resident_granules / self.epc_capacity_granules


@dataclass
class ShieldMetrics:
    """Data-plane counters aggregated over every shield on the platform."""

    fs_files_written: int = 0
    fs_files_read: int = 0
    fs_crypto_bytes: int = 0
    fs_crypto_time: float = 0.0
    fs_real_crypto_time: float = 0.0
    fs_key_cache_hits: int = 0
    fs_key_cache_misses: int = 0
    fs_chunk_cache_hits: int = 0
    fs_chunk_cache_misses: int = 0
    # Storage-plane robustness (journaled shields).
    fs_torn_writes_detected: int = 0
    fs_chunks_repaired: int = 0
    fs_recovery_scans: int = 0
    fs_recoveries_rolled_back: int = 0
    fs_recoveries_rolled_forward: int = 0
    net_records_protected: int = 0
    net_records_opened: int = 0
    net_crypto_bytes: int = 0
    net_crypto_time: float = 0.0
    net_real_crypto_time: float = 0.0
    aead_cache_hits: int = 0
    aead_cache_misses: int = 0
    bytes_by_cipher: Dict[str, int] = field(default_factory=dict)


@dataclass
class SyscallMetrics:
    """Exit-less syscall-plane counters aggregated over every interface."""

    calls: int = 0
    userspace_handled: int = 0
    transitions: int = 0
    ring_submissions: int = 0
    ring_completions: int = 0
    ring_occupancy_peak: int = 0
    batches: int = 0
    max_batch: int = 0
    flushes_on_block: int = 0
    backpressure_stalls: int = 0
    backpressure_time: float = 0.0
    handler_wakeups: int = 0
    sync_fallbacks: int = 0
    overlap_hidden_time: float = 0.0
    overlap_exposed_time: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    time: float = 0.0

    @property
    def kernel_overlap(self) -> float:
        total = self.overlap_hidden_time + self.overlap_exposed_time
        return self.overlap_hidden_time / total if total else 0.0


@dataclass
class RecoveryMetrics:
    """Resilience counters aggregated across every RPC endpoint, plus the
    orchestrator's supervision tallies."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    giveups: int = 0
    backoff_time: float = 0.0
    reconnects: int = 0
    breaker_trips: int = 0
    breaker_rejections: int = 0
    # Live breaker census (gauges): how many per-endpoint breakers sit in
    # each state right now, summed across every executor in the fleet.
    breakers_closed: int = 0
    breakers_open: int = 0
    breakers_half_open: int = 0
    dedup_hits: int = 0
    handshakes_expired: int = 0
    restarts: int = 0
    quarantined: int = 0
    # CAS high availability.
    cas_failovers: int = 0
    cas_ops_replicated: int = 0
    cas_records_replicated: int = 0
    # Epoch fencing.  ``fenced_calls`` folds in from every endpoint's
    # RecoveryStats (authoritative rejections seen by callers); the
    # epoch_* counters come from the platform's EpochService itself.
    fenced_calls: int = 0
    epoch_grants: int = 0
    epoch_bumps: int = 0
    fenced_rejections: int = 0
    lease_expiries: int = 0


@dataclass
class TrainingMetrics:
    """Sharded-training-plane counters, aggregated over every PS shard
    (a single-PS job reports here too — it is the 1-shard case)."""

    pulls: int = 0
    pushes: int = 0
    quantized_pushes: int = 0
    gradient_bytes_in: int = 0
    gradient_bytes_saved: int = 0
    restarts: int = 0
    barrier_commits: int = 0
    # Per-shard breakdowns (keyed by the shard's checkpoint-store key,
    # which survives container restarts).
    pulls_by_shard: Dict[str, int] = field(default_factory=dict)
    pushes_by_shard: Dict[str, int] = field(default_factory=dict)
    restarts_by_shard: Dict[str, int] = field(default_factory=dict)


@dataclass
class SimCoreMetrics:
    """Event-heap scheduler gauges: the pulse of the simulation core."""

    heap_size: int = 0  # gauge: pending events right now
    heap_peak: int = 0  # high-water mark (combines by max)
    events_scheduled: int = 0
    events_fired: int = 0
    events_cancelled: int = 0
    activities_running: int = 0  # gauge
    activities_parked: int = 0  # gauge: blocked on a Completion


@dataclass
class MonitoringMetrics:
    """SLO-engine / flight-recorder / incident-pipeline counters,
    aggregated over every :class:`~repro.observability.monitoring
    .MonitoringSession` on the platform."""

    slo_evaluations: int = 0
    alerts_pending: int = 0
    alerts_fired: int = 0
    alerts_resolved: int = 0
    flight_events: int = 0
    incidents_triggered: int = 0
    incidents_suppressed: int = 0
    bundles_emitted: int = 0


@dataclass
class PlatformMetrics:
    """One snapshot of the whole deployment."""

    nodes: List[NodeMetrics]
    network_messages: int
    network_bytes: int
    network_dropped: int
    cas_sessions: int
    cas_secrets: int
    audit_records: int
    audit_chain_ok: bool
    shields: ShieldMetrics = field(default_factory=ShieldMetrics)
    network_duplicated: int = 0
    network_delayed: int = 0
    recovery: RecoveryMetrics = field(default_factory=RecoveryMetrics)
    syscalls: SyscallMetrics = field(default_factory=SyscallMetrics)
    training: TrainingMetrics = field(default_factory=TrainingMetrics)
    sim_core: SimCoreMetrics = field(default_factory=SimCoreMetrics)
    monitoring: MonitoringMetrics = field(default_factory=MonitoringMetrics)

    def to_rows(self) -> List[List[str]]:
        rows = []
        for node in self.nodes:
            rows.append(
                [
                    node.node_id,
                    f"{node.simulated_time:.2f}s",
                    f"{node.epc_utilization * 100:.0f}%",
                    f"{node.epc_faults}",
                    f"{node.epc_fault_time:.3f}s",
                    f"{node.epc_fault_rate * 100:.1f}%",
                    f"{node.enclave_transitions}",
                ]
            )
        return rows

    def format(self) -> str:
        lines = ["platform metrics snapshot", "-" * 68]
        lines.append(
            f"{'node':<8}{'time':>10}{'EPC util':>10}{'faults':>10}"
            f"{'fault time':>12}{'fault rate':>12}{'transitions':>13}"
        )
        for row in self.to_rows():
            lines.append(
                f"{row[0]:<8}{row[1]:>10}{row[2]:>10}{row[3]:>10}"
                f"{row[4]:>12}{row[5]:>12}{row[6]:>13}"
            )
        lines.append(
            f"network: {self.network_messages} messages, "
            f"{self.network_bytes / 1e6:.1f} MB, {self.network_dropped} dropped, "
            f"{self.network_duplicated} duplicated, {self.network_delayed} delayed"
        )
        lines.append(
            f"CAS: {self.cas_sessions} sessions, {self.cas_secrets} stored "
            f"records, audit log {self.audit_records} entries "
            f"({'chain OK' if self.audit_chain_ok else 'CHAIN BROKEN'})"
        )
        s = self.shields
        lines.append(
            f"fs shield: {s.fs_files_written} written / {s.fs_files_read} read, "
            f"{s.fs_crypto_bytes / 1e6:.1f} MB, sim {s.fs_crypto_time:.3f}s / "
            f"real {s.fs_real_crypto_time:.3f}s, "
            f"key cache {s.fs_key_cache_hits}/{s.fs_key_cache_hits + s.fs_key_cache_misses}, "
            f"chunk cache {s.fs_chunk_cache_hits}/"
            f"{s.fs_chunk_cache_hits + s.fs_chunk_cache_misses}"
        )
        lines.append(
            f"net shield: {s.net_records_protected} protected / "
            f"{s.net_records_opened} opened, {s.net_crypto_bytes / 1e6:.1f} MB, "
            f"sim {s.net_crypto_time:.3f}s / real {s.net_real_crypto_time:.3f}s"
        )
        cipher_bytes = ", ".join(
            f"{name}={n / 1e6:.1f}MB" for name, n in sorted(s.bytes_by_cipher.items())
        )
        lines.append(
            f"aead cache: {s.aead_cache_hits} hits / {s.aead_cache_misses} misses"
            + (f"; bytes by cipher: {cipher_bytes}" if cipher_bytes else "")
        )
        lines.append(
            f"storage: {s.fs_torn_writes_detected} torn/rotted artifacts "
            f"detected, {s.fs_chunks_repaired} chunks repaired, "
            f"{s.fs_recovery_scans} recovery scans "
            f"({s.fs_recoveries_rolled_back} rolled back / "
            f"{s.fs_recoveries_rolled_forward} rolled forward)"
        )
        sc = self.syscalls
        lines.append(
            f"syscall plane: {sc.calls} calls "
            f"({sc.userspace_handled} userspace, {sc.sync_fallbacks} sync "
            f"fallbacks), ring {sc.ring_submissions} submitted / "
            f"{sc.ring_completions} completed (peak occupancy "
            f"{sc.ring_occupancy_peak}), {sc.batches} batches (max "
            f"{sc.max_batch}), {sc.backpressure_stalls} stalls "
            f"({sc.backpressure_time:.3f}s), {sc.handler_wakeups} wakeups, "
            f"overlap {sc.kernel_overlap * 100:.0f}%"
        )
        r = self.recovery
        lines.append(
            f"recovery: {r.retries} retries ({r.backoff_time:.3f}s backoff), "
            f"{r.giveups} giveups, {r.reconnects} reconnects, "
            f"{r.dedup_hits} dedup hits, {r.handshakes_expired} handshakes "
            f"expired, breakers {r.breaker_trips} trips/"
            f"{r.breaker_rejections} rejections "
            f"({r.breakers_closed} closed/{r.breakers_open} open/"
            f"{r.breakers_half_open} half-open), "
            f"{r.restarts} restarts, {r.quarantined} quarantined"
        )
        lines.append(
            f"cas ha: {r.cas_failovers} failovers, "
            f"{r.cas_ops_replicated} ops / {r.cas_records_replicated} audit "
            f"records replicated"
        )
        lines.append(
            f"fencing: {r.epoch_grants} grants, {r.epoch_bumps} bumps, "
            f"{r.fenced_rejections} stale epochs rejected, "
            f"{r.lease_expiries} lease expiries, "
            f"{r.fenced_calls} fenced calls"
        )
        t = self.training
        shards = ", ".join(
            f"{shard}={t.pushes_by_shard[shard]}"
            for shard in sorted(t.pushes_by_shard)
        )
        lines.append(
            f"training: {t.pulls} pulls, {t.pushes} pushes "
            f"({t.quantized_pushes} quantized), "
            f"{t.gradient_bytes_in / 1e6:.2f} MB gradients on the wire "
            f"({t.gradient_bytes_saved / 1e6:.2f} MB saved by quantization), "
            f"{t.restarts} shard restarts, {t.barrier_commits} barrier commits"
            + (f"; pushes by shard: {shards}" if shards else "")
        )
        c = self.sim_core
        lines.append(
            f"sim core: heap {c.heap_size} pending (peak {c.heap_peak}), "
            f"{c.events_scheduled} scheduled / {c.events_fired} fired / "
            f"{c.events_cancelled} cancelled, activities "
            f"{c.activities_running} running ({c.activities_parked} parked)"
        )
        m = self.monitoring
        lines.append(
            f"monitoring: {m.slo_evaluations} SLO evaluations, alerts "
            f"{m.alerts_pending} pending/{m.alerts_fired} fired/"
            f"{m.alerts_resolved} resolved, {m.flight_events} flight events, "
            f"incidents {m.incidents_triggered} triggered "
            f"({m.incidents_suppressed} suppressed), "
            f"{m.bundles_emitted} bundles emitted"
        )
        return "\n".join(lines)

    # -- serialization + interval deltas --------------------------------

    def to_json(self) -> Dict[str, object]:
        """The snapshot as a JSON-safe nested dict (round-trips through
        :meth:`from_json`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "PlatformMetrics":
        payload = dict(data)
        payload["nodes"] = [NodeMetrics(**node) for node in payload["nodes"]]
        payload["shields"] = ShieldMetrics(**payload["shields"])
        payload["recovery"] = RecoveryMetrics(**payload["recovery"])
        payload["syscalls"] = SyscallMetrics(**payload["syscalls"])
        payload["training"] = TrainingMetrics(**payload["training"])
        payload["sim_core"] = SimCoreMetrics(**payload["sim_core"])
        payload["monitoring"] = MonitoringMetrics(**payload["monitoring"])
        return cls(**payload)

    def diff(self, earlier: "PlatformMetrics") -> "PlatformMetrics":
        """The interval delta since ``earlier`` (what the telemetry
        sampler records): cumulative counters subtract, gauges and
        high-water marks keep this snapshot's value.  Nodes are matched
        by node ID; a node absent from ``earlier`` (scale-out) reports
        its full counters."""
        earlier_nodes = {node.node_id: node for node in earlier.nodes}
        nodes = [
            _diff_dataclass(node, earlier_nodes[node.node_id])
            if node.node_id in earlier_nodes
            else node
            for node in self.nodes
        ]
        delta = _diff_dataclass(self, earlier)
        return dataclasses.replace(delta, nodes=nodes)


def collect_metrics(platform: SecureTFPlatform) -> PlatformMetrics:
    """Snapshot every layer's counters (read-only; no clock advance)."""
    nodes = []
    for node in platform.nodes:
        epc = node.cpu.epc
        nodes.append(
            NodeMetrics(
                node_id=node.node_id,
                simulated_time=node.clock.now,
                epc_capacity_granules=epc.capacity_granules,
                epc_resident_granules=epc.resident_granules,
                epc_faults=epc.stats.faults,
                epc_fault_time=epc.stats.fault_time,
                epc_fault_rate=epc.stats.fault_rate,
                enclave_transitions=node.cpu.transitions,
            )
        )
    audit = platform.active_cas.audit
    chain_ok = True
    try:
        audit.verify_chain()
    except Exception:
        chain_ok = False
    clocks = [node.clock for node in platform.nodes]
    shields = ShieldMetrics()
    for stats in stats_registry.fs_stats_for(clocks):
        # fs_* fields match by stripped prefix; the shared
        # ``bytes_by_cipher`` dict matches under the empty prefix.
        aggregate_into(shields, stats, prefixes=("fs_", ""))
    for stats in stats_registry.net_stats_for(clocks):
        aggregate_into(shields, stats, prefixes=("net_", ""))
    aead_counters = aead_cache_stats()
    shields.aead_cache_hits = aead_counters["hits"]
    shields.aead_cache_misses = aead_counters["misses"]
    syscalls = SyscallMetrics()
    for stats in stats_registry.syscall_stats_for(clocks):
        aggregate_into(syscalls, stats)
    training = TrainingMetrics()
    for stats in stats_registry.training_stats_for(clocks):
        aggregate_into(training, stats)
        for dict_field, count in (
            (training.pulls_by_shard, stats.pulls),
            (training.pushes_by_shard, stats.pushes),
            (training.restarts_by_shard, stats.restarts),
        ):
            # Keyed by store key: a restarted shard's replacement folds
            # into the same lineage entry.
            dict_field[stats.shard] = dict_field.get(stats.shard, 0) + count
    sched = platform.scheduler
    sim_core = SimCoreMetrics(
        heap_size=sched.heap_size,
        heap_peak=sched.heap_peak,
        events_scheduled=sched.events_scheduled,
        events_fired=sched.events_processed,
        events_cancelled=sched.events_cancelled,
        activities_running=sched.activities_running,
        activities_parked=sched.activities_parked,
    )
    monitoring = MonitoringMetrics()
    for stats in stats_registry.monitoring_stats_for(clocks):
        aggregate_into(monitoring, stats)
    recovery = RecoveryMetrics()
    for stats in stats_registry.recovery_stats_for(clocks):
        aggregate_into(recovery, stats)
    recovery.restarts = platform.orchestrator.restarts_total
    recovery.quarantined = platform.orchestrator.quarantined_total
    if platform.epochs is not None:
        fencing = platform.epochs.stats
        recovery.epoch_grants = fencing.grants
        recovery.epoch_bumps = fencing.bumps
        recovery.fenced_rejections = fencing.fenced_rejections
        recovery.lease_expiries = fencing.lease_expiries
    if platform.cas_pair is not None:
        recovery.cas_failovers = platform.cas_pair.stats.failovers
        recovery.cas_ops_replicated = platform.cas_pair.stats.ops_replicated
        recovery.cas_records_replicated = platform.cas_pair.stats.records_replicated
    return PlatformMetrics(
        nodes=nodes,
        network_messages=platform.network.stats.messages,
        network_bytes=platform.network.stats.bytes_transferred,
        network_dropped=platform.network.stats.dropped,
        cas_sessions=len(platform.active_cas.policies.sessions()),
        cas_secrets=len(platform.active_cas.db),
        audit_records=len(audit.log),
        audit_chain_ok=chain_ok,
        shields=shields,
        network_duplicated=platform.network.stats.duplicated,
        network_delayed=platform.network.stats.delayed,
        recovery=recovery,
        syscalls=syscalls,
        training=training,
        sim_core=sim_core,
        monitoring=monitoring,
    )
