"""secureTF: the paper's end-to-end system, assembled.

This is the public API a user of the platform touches (Fig. 1/2):

- :class:`~repro.core.platform.SecureTFPlatform` — deploy a cluster with
  CAS, attest CAS, register session policies.
- :class:`~repro.core.inference.InferenceService` — the secure
  classification service of §4.2: encrypted model + code on disk,
  attested enclave, TLS-only request path.
- :class:`~repro.core.training.TrainingJob` — distributed secure
  training (§3.3.4/§5.4): parameter server + workers in enclaves with
  shielded channels.
- :class:`~repro.core.federated.FederatedLearning` — the §6.2 medical
  use case: hospitals train locally, the global aggregation runs in an
  attested enclave.

Everything below this layer (enclaves, shields, CAS, cluster, the
TensorFlow stand-in) is importable independently; this package only
composes it the way the paper deploys it.
"""

from repro.core.platform import SecureTFPlatform, PlatformConfig
from repro.core.inference import InferenceService, deploy_encrypted_model
from repro.core.training import TrainingJob, TrainingJobConfig
from repro.core.federated import FederatedLearning, Hospital
from repro.core.data_protection import (
    deploy_encrypted_dataset,
    load_encrypted_dataset,
)
from repro.core.monitoring import PlatformMetrics, collect_metrics

__all__ = [
    "SecureTFPlatform",
    "PlatformConfig",
    "InferenceService",
    "deploy_encrypted_model",
    "TrainingJob",
    "TrainingJobConfig",
    "FederatedLearning",
    "Hospital",
    "deploy_encrypted_dataset",
    "load_encrypted_dataset",
    "PlatformMetrics",
    "collect_metrics",
]
