"""Platform assembly: cluster + CAS + orchestrator + user trust bootstrap.

The deployment story of Fig. 1: the user first attests the CAS instance
running in the untrusted cloud, then registers session policies and
secrets with it; afterwards, services launched on the cluster attest to
CAS and receive their keys without any user involvement — which is what
makes elastic scaling practical (challenge ❹).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._sim.rng import DeterministicRng
from repro._sim.scheduler import Scheduler
from repro._sim.trace import EventTrace
from repro.cas import CasService, Policy
from repro.cas.client import RemoteCasClient, serve_cas
from repro.cas.failover import ReplicatedCasPair
from repro.cluster import Network, Node, Orchestrator, make_cluster
from repro.cluster.epoch import EPOCH_KEY_PREFIX, EpochService, load_epochs
from repro.cluster.retry import RetryPolicy
from repro.enclave.attestation import AttestationVerifier, ProvisioningAuthority, Report
from repro.enclave.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.enclave.sgx import SgxMode
from repro.errors import AttestationError, ConfigurationError
from repro.runtime.scone import RuntimeConfig, SconeRuntime, expected_measurement


@dataclass
class PlatformConfig:
    """Deployment parameters (defaults mirror the paper's cluster §5.1)."""

    n_nodes: int = 3
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    seed: int = 0
    cas_node: int = 0
    cas_mode: SgxMode = SgxMode.HW
    epc_policy: str = "random"
    #: Node index of a standby CAS replica (None = no HA pair).  Must
    #: differ from ``cas_node``: the pair exists to survive a node loss.
    cas_backup_node: Optional[int] = None
    #: Retry policy CAS clients use to ride out a failover window.
    cas_retry: Optional[RetryPolicy] = None
    #: Install a telemetry plane (distributed tracing + layer charges)
    #: for this platform's lifetime.  Off by default: a disabled run is
    #: byte-identical to one without the subsystem imported.
    tracing: bool = False
    #: Simulated seconds between metric samples (0 = no sampler; only
    #: meaningful with ``tracing=True``).
    metrics_interval: float = 0.0
    #: Epoch-fence every leader-shaped role (CAS primary, parameter
    #: server, serving router): leases stamped into envelopes, stale
    #: epochs rejected with FencedError, the watchdog bumps before it
    #: promotes.  Off by default so pre-fencing runs stay byte-identical;
    #: the chaos campaigns sweep both settings.
    fencing: bool = False


class SecureTFPlatform:
    """A deployed secureTF cluster."""

    def __init__(self, config: Optional[PlatformConfig] = None) -> None:
        self.config = config or PlatformConfig()
        if self.config.n_nodes < 1:
            raise ConfigurationError("platform needs at least one node")
        self.rng = DeterministicRng(self.config.seed, label="platform")
        self.provisioning = ProvisioningAuthority(self.rng.child("intel"))
        #: The global event heap every network delivery, retry timer and
        #: watchdog probe of this deployment runs on.
        self.scheduler = Scheduler()
        self.nodes: List[Node] = make_cluster(
            self.config.n_nodes,
            self.config.cost_model,
            self.provisioning,
            seed=self.config.seed,
            epc_policy=self.config.epc_policy,
            scheduler=self.scheduler,
        )
        self.network = Network(self.config.cost_model, scheduler=self.scheduler)
        self.cas = CasService(
            self.nodes[self.config.cas_node],
            self.provisioning.public_key(),
            mode=self.config.cas_mode,
        )
        self.orchestrator = Orchestrator(self.nodes)
        #: The deployment's epoch-fencing authority (None = fencing off).
        #: In production this registry is ``epoch/<role>`` records in the
        #: replicated CAS database; the service object is its interface,
        #: owned by the control plane next to the orchestrator.
        self.epochs: Optional[EpochService] = (
            EpochService(backing=self._persist_epoch)
            if self.config.fencing
            else None
        )
        self.cas_pair: Optional[ReplicatedCasPair] = None
        if self.config.cas_backup_node is not None:
            if self.config.cas_backup_node == self.config.cas_node:
                raise ConfigurationError(
                    "the CAS standby must live on a different node"
                )
            backup = CasService(
                self.nodes[self.config.cas_backup_node],
                self.provisioning.public_key(),
                mode=self.config.cas_mode,
            )
            self.cas_pair = ReplicatedCasPair(
                self.network,
                self.cas,
                backup,
                address="cas",
                retry=self.config.cas_retry,
                epochs=self.epochs,
            )
            self.cas_server = self.cas_pair.primary_server
            if self.epochs is not None:
                # Fenced supervision needs a partition-aware probe: ping
                # by RPC from a non-CAS node (falling back to the CAS
                # node when the cluster has only one), so a one-way
                # partitioned primary actually *fails* its probe.
                probe_node = next(
                    (n for n in self.nodes if n is not self.cas.node),
                    self.cas.node,
                )
                self.cas_pair.attach_probe(probe_node)
            self.orchestrator.register_service(
                "cas", self.cas_pair.probe, self.cas_pair.promote
            )
        else:
            self.cas_server = serve_cas(self.network, self.cas, address="cas")

        #: The platform's telemetry plane (None unless ``tracing=True``).
        #: The import is deliberately lazy: an untraced platform never
        #: loads the observability package at all.
        self.telemetry = None
        if self.config.tracing:
            from repro.observability import Telemetry

            self.telemetry = Telemetry(
                self, sample_interval=self.config.metrics_interval
            )

    def _persist_epoch(self, role: str, epoch: int) -> None:
        """Epoch-service backing: every bump is durable control-plane
        state in the CAS database (an ``epoch/<role>`` record), so epochs
        survive CAS failover exactly like policies do.  With an HA pair
        the record is double-written to both instances through the
        control plane's administrative channel (the authority must be
        able to bump *during* a failover, when the primary→standby
        replication stream is exactly what's broken)."""
        record = str(epoch).encode()
        if self.cas_pair is not None:
            self.cas_pair.put_control_record(f"{EPOCH_KEY_PREFIX}{role}", record)
        else:
            self.cas.db.put(f"{EPOCH_KEY_PREFIX}{role}", record)

    def persisted_epochs(self) -> Dict[str, int]:
        """The epoch registry as persisted in the *active* CAS replica —
        what a restarted control plane would rebuild its
        :class:`EpochService` from (``EpochService.restore``)."""
        return load_epochs(self.active_cas.db)

    def close_telemetry(self) -> None:
        """Detach the telemetry plane (restores any previous recorder)."""
        if self.telemetry is not None:
            self.telemetry.close()

    @property
    def cost_model(self) -> CostModel:
        return self.config.cost_model

    # ------------------------------------------------------------------
    # User trust bootstrap
    # ------------------------------------------------------------------

    def user_attest_cas(self) -> Report:
        """The user's first step: verify CAS itself runs the expected code
        inside a genuine enclave (Fig. 1, step 1)."""
        quote = self.cas.attest()
        verifier = AttestationVerifier(self.provisioning.public_key())
        report = verifier.verify(
            quote, accept_debug=self.config.cas_mode is not SgxMode.HW
        )
        if report.attributes.get("name") != "cas":
            raise AttestationError(
                f"expected the CAS enclave, got {report.attributes.get('name')!r}"
            )
        return report

    def register_session(
        self,
        session: str,
        configs: List[RuntimeConfig],
        secrets: Optional[Dict[str, bytes]] = None,
        accept_debug: bool = False,
        max_members: Optional[int] = None,
    ) -> Policy:
        """Register a policy admitting containers built from ``configs``."""
        measurements = [expected_measurement(c) for c in configs]
        policy = Policy(
            session=session,
            allowed_measurements=measurements,
            secret_names=sorted(secrets or {}),
            accept_debug=accept_debug,
            max_members=max_members,
        )
        self.cas.register_policy(policy, secrets=secrets)
        return policy

    @property
    def active_cas(self) -> CasService:
        """The CAS instance currently serving the well-known address."""
        return self.cas_pair.active if self.cas_pair is not None else self.cas

    def cas_client(
        self, node: Node, trace: Optional[EventTrace] = None
    ) -> RemoteCasClient:
        return RemoteCasClient(
            self.network, node, "cas", trace=trace, retry=self.config.cas_retry
        )

    def provision_runtime(self, runtime: SconeRuntime, node: Node, session: str):
        """Attest a running container to CAS and install its secrets."""
        return self.cas_client(node).provision(runtime, session)

    def node(self, index: int) -> Node:
        return self.nodes[index]

    def barrier(self) -> float:
        """Synchronize all node clocks (end-of-experiment readout)."""
        return self.network.barrier([n.clock for n in self.nodes])

    @property
    def time(self) -> float:
        """Max simulated time across the cluster."""
        return max(n.clock.now for n in self.nodes)
