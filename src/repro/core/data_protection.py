"""Encrypted dataset deployment: the training-input path of §4.1.

"The user must also provide the inputs for training, such as a set of
annotated images.  secureTF protects the input data and code by
activating the file system shield."  These helpers implement that flow:
the data owner uploads a dataset shard encrypted under the session key;
a provisioned worker reads it back through its shield inside the
enclave.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cas.audit import ScopedFreshnessTracker
from repro.cluster.node import Node
from repro.core.platform import SecureTFPlatform
from repro.crypto import encoding
from repro.data.loaders import Dataset
from repro.enclave.sgx import SgxMode
from repro.errors import IntegrityError
from repro.runtime.fs_shield import FileSystemShield, PathRule, ShieldPolicy
from repro.runtime.scone import SconeRuntime
from repro.runtime.syscall import SyscallInterface
from repro.tensor.arrays import decode_array, encode_array

DATASET_PATH_PREFIX = "/secure/datasets/"


def serialize_dataset(dataset: Dataset) -> bytes:
    """Canonical serialization of a dataset shard."""
    return encoding.encode(
        {
            "name": dataset.name,
            "num_classes": dataset.num_classes,
            "images": encode_array(dataset.images),
            "labels": encode_array(dataset.labels),
        }
    )


def deserialize_dataset(blob: bytes) -> Dataset:
    payload = encoding.decode(blob)
    try:
        return Dataset(
            images=decode_array(payload["images"]),
            labels=decode_array(payload["labels"]),
            num_classes=payload["num_classes"],
            name=payload["name"],
        )
    except (KeyError, TypeError) as exc:
        raise IntegrityError("malformed dataset blob") from exc


def deploy_encrypted_dataset(
    platform: SecureTFPlatform,
    session: str,
    node: Node,
    dataset: Dataset,
    path: Optional[str] = None,
) -> str:
    """Owner-side upload of a training shard, encrypted + audited."""
    path = path or f"{DATASET_PATH_PREFIX}{dataset.name}.shard"
    owner_syscalls = SyscallInterface(
        node.vfs, platform.cost_model, node.clock, mode=SgxMode.NATIVE
    )
    shield = FileSystemShield(
        owner_syscalls,
        platform.cas.owner_fs_key(session),
        [PathRule(DATASET_PATH_PREFIX, ShieldPolicy.ENCRYPT)],
        platform.cost_model,
        node.clock,
        freshness=ScopedFreshnessTracker(
            platform.cas.audit, f"{session}@{node.node_id}"
        ),
    )
    shield.write_file(path, serialize_dataset(dataset))
    return path


def load_encrypted_dataset(runtime: SconeRuntime, path: str) -> Dataset:
    """Worker-side: decrypt + verify a shard inside the enclave.

    The runtime's fs shield must already be armed (CAS-provisioned) and
    the path covered by an ENCRYPT rule; otherwise the read fails — the
    worker can never silently train on unauthenticated data.
    """
    return deserialize_dataset(runtime.read_protected(path))


def dataset_rules() -> "list[PathRule]":
    """The shield rule set protecting dataset shards."""
    return [PathRule(DATASET_PATH_PREFIX, ShieldPolicy.ENCRYPT)]
