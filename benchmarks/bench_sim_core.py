"""Event-heap simulation core: throughput vs the pre-PR synchronous walk.

The PR 6 tentpole replaced per-node clock walking with one global event
heap.  This bench quantifies the win on the workload the refactor
exists for: a fleet of replicas with irregular (jittered) heartbeat
timers, each heartbeat an RPC to a ring peer.

Two simulators run the *same seeded scenario*:

- **event core** — replicas as stackless activities on the global heap
  (:class:`repro.cluster.fleet.ReplicaFleet` through the real
  ``Network``): cost is O(events · log events), independent of how much
  simulated time passes between events.
- **synchronous walk** — the pre-PR pattern faithfully extrapolated to
  a fleet: per-node clocks advanced in **lockstep** at a fixed cadence
  (every pre-PR drive loop was lockstep — SyncTrainer's barrier rounds,
  fig7's phases, clock-subscription samplers), each tick scanning every
  replica for due work and executing due heartbeats as the old nested
  inline call.  Cost is O(sim-time / cadence · nodes) *regardless of
  event density*.  The baseline is deliberately favored: its wake
  times are precomputed, its call path skips the fault chain and
  stats, and its 1 ms cadence is far *coarser* than the event core
  (which resolves jittered timers exactly) — and it still loses.

The equivalence check keeps the comparison honest: both simulators
complete the identical number of heartbeats and agree on final
simulated time to within the walk's tick quantization.

Records to ``BENCH.json`` under ``sim_core``: the fleet-size sweep
(8 → 256 replicas) of simulated-events/s for both cores, the speedup
at each size, and the 256-replica wall time.
"""

import time

import pytest

from harness import print_table, record, run_once, save_bench

from repro._sim import DeterministicRng, Scheduler
from repro.cluster import ReplicaFleet
from repro.cluster.network import Network
from repro.cluster.node import make_cluster
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM

FLEET_SIZES = (8, 16, 32, 64, 128, 256)
ROUNDS = 10
PAYLOAD = 128
SPACING = 1.0       # mean heartbeat period (sim-seconds), ±50% jitter
WALK_TICK = 0.001   # the walk's lockstep cadence (coarser than exact)
SEED = 9


def _nodes(n, scheduler=None):
    rng = DeterministicRng(SEED, label="sim-core-bench")
    return make_cluster(
        n,
        CM,
        ProvisioningAuthority(rng.child("intel")),
        seed=SEED,
        scheduler=scheduler,
    )


def _run_event_core(n_replicas):
    scheduler = Scheduler()
    nodes = _nodes(n_replicas, scheduler)
    network = Network(CM, scheduler=scheduler)
    fleet = ReplicaFleet(
        network, nodes, n_replicas, rounds=ROUNDS, payload=PAYLOAD, spacing=SPACING
    )
    started = time.perf_counter()
    stats = fleet.run()
    wall = time.perf_counter() - started
    return {
        "events": scheduler.events_processed,
        "wall_s": wall,
        "events_per_s": scheduler.events_processed / wall,
        "heartbeats": stats.responses,
        "sim_time": fleet.fleet_time(),
    }


class _WalkReplica:
    __slots__ = ("index", "node", "rng", "wake", "remaining")


def _run_synchronous_walk(n_replicas):
    """The pre-PR walk on the identical seeded scenario.

    Matches ReplicaFleet's per-replica RNG streams (same child labels,
    same draw order) so both simulators play out the same timers.
    """
    nodes = _nodes(n_replicas)

    def transfer(n_bytes):
        return CM.lan_rtt / 2 + n_bytes / CM.lan_bandwidth

    replicas = []
    for index in range(n_replicas):
        replica = _WalkReplica()
        replica.index = index
        replica.node = nodes[index % len(nodes)]
        replica.rng = replica.node.rng.child(f"fleet-replica-{index}")
        replica.remaining = ROUNDS
        replica.wake = replica.node.clock.now + SPACING * (
            1.0 + 0.5 * replica.rng.uniform(-1.0, 1.0)
        )
        replicas.append(replica)

    heartbeats = 0
    started = time.perf_counter()
    now = 0.0
    while any(r.remaining for r in replicas):
        now += WALK_TICK
        # The walk itself: every per-node clock advances in lockstep,
        # whether or not anything is due — O(nodes) per tick.
        for node in nodes:
            node.clock.advance_to(now)
        for replica in replicas:
            if replica.remaining and replica.wake <= now:
                peer = replicas[(replica.index + 1) % n_replicas]
                # The old nested inline call: walk the callee's clock
                # forward inside the caller's stack frame.
                arrival = replica.node.clock.now + transfer(PAYLOAD)
                peer.node.clock.advance_to(arrival)
                response = bytes(PAYLOAD)  # echo handler
                reply_at = peer.node.clock.now + transfer(len(response))
                replica.node.clock.advance_to(reply_at)
                heartbeats += 1
                replica.remaining -= 1
                if replica.remaining:
                    replica.wake = replica.node.clock.now + SPACING * (
                        1.0 + 0.5 * replica.rng.uniform(-1.0, 1.0)
                    )
    wall = time.perf_counter() - started
    # 3 logical events per heartbeat (timer, delivery, reply) — the same
    # work units the event core counts in events_processed.
    events = heartbeats * 3
    return {
        "events": events,
        "wall_s": wall,
        "events_per_s": events / wall,
        "heartbeats": heartbeats,
        "sim_time": max(node.clock.now for node in nodes),
    }


def _collect():
    sweep = {}
    for n in FLEET_SIZES:
        sweep[n] = {
            "core": _run_event_core(n),
            "walk": _run_synchronous_walk(n),
        }
    return sweep


def test_sim_core_throughput(benchmark):
    sweep = run_once(benchmark, _collect)

    rows = []
    for n in FLEET_SIZES:
        core, walk = sweep[n]["core"], sweep[n]["walk"]
        rows.append(
            [
                n,
                f"{core['events_per_s']:,.0f}",
                f"{walk['events_per_s']:,.0f}",
                f"{core['events_per_s'] / walk['events_per_s']:.1f}x",
                f"{core['wall_s'] * 1e3:.0f}ms",
            ]
        )
    print_table(
        "Event-heap core vs pre-PR synchronous walk "
        f"({ROUNDS} heartbeat rounds, {SPACING:.1f}s mean spacing)",
        ("replicas", "core ev/s", "walk ev/s", "speedup", "core wall"),
        rows,
        notes=[
            f"walk cadence {WALK_TICK * 1e3:.0f}ms (coarser than the core's "
            "exact event times) and lighter per-call path — still loses",
        ],
    )

    # -- equivalence: same scenario, same outcome ----------------------
    for n in FLEET_SIZES:
        core, walk = sweep[n]["core"], sweep[n]["walk"]
        assert core["heartbeats"] == walk["heartbeats"] == n * ROUNDS
        # The walk quantizes wakes to its tick; drift is bounded by one
        # tick per round.
        assert abs(core["sim_time"] - walk["sim_time"]) < (ROUNDS + 1) * WALK_TICK

    # -- acceptance: >= 5x simulated-events/s at 64 replicas -----------
    speedup_64 = (
        sweep[64]["core"]["events_per_s"] / sweep[64]["walk"]["events_per_s"]
    )
    assert speedup_64 >= 5.0, f"only {speedup_64:.1f}x at 64 replicas"

    # The event core's rate holds flat as the fleet grows (O(log N));
    # the walk's rate cannot (O(N) per tick).
    assert (
        sweep[256]["core"]["events_per_s"]
        > sweep[8]["core"]["events_per_s"] * 0.3
    )
    # 256-replica fleet comfortably inside the ISSUE's 2-minute budget.
    assert sweep[256]["core"]["wall_s"] < 120.0

    record(
        benchmark,
        core_ev_s_64=sweep[64]["core"]["events_per_s"],
        walk_ev_s_64=sweep[64]["walk"]["events_per_s"],
        speedup_64=speedup_64,
        core_wall_256=sweep[256]["core"]["wall_s"],
    )
    save_bench(
        "sim_core",
        {
            "rounds": ROUNDS,
            "spacing_s": SPACING,
            "walk_tick_s": WALK_TICK,
            "speedup_at_64": round(speedup_64, 1),
            "fleet_sweep": {
                str(n): {
                    "core_events_per_s": round(sweep[n]["core"]["events_per_s"]),
                    "walk_events_per_s": round(sweep[n]["walk"]["events_per_s"]),
                    "core_wall_s": round(sweep[n]["core"]["wall_s"], 4),
                    "events": sweep[n]["core"]["events"],
                }
                for n in FLEET_SIZES
            },
        },
    )
