"""Chaos-campaign throughput and detection yield.

Runs the full fault-schedule grid twice — fencing on and fencing off —
and records the acceptance numbers into ``BENCH.json``:

- ``schedules_swept`` (the >= 200 floor) and ``schedules_per_s``
  (wall-clock throughput of the sweep, replay verification included —
  every schedule is executed twice and byte-compared);
- ``violations_fenced`` (must be 0) vs ``violations_unfenced`` (the
  detection yield: how much split-brain damage the same grid produces
  when the fence is off), broken down by invariant;
- ``replay_mismatches`` (must be 0 in both configurations).
"""

import time

import pytest

from harness import print_table, record, run_once, save_bench

from repro.chaos import default_campaign, run_campaign


def sweep(fencing):
    campaign = default_campaign()
    start = time.perf_counter()
    report = run_campaign(campaign, fencing=fencing, verify_replay=True)
    elapsed = time.perf_counter() - start
    return report, elapsed


def test_chaos_campaign(benchmark):
    def scenario():
        fenced, fenced_s = sweep(fencing=True)
        unfenced, unfenced_s = sweep(fencing=False)
        return fenced, fenced_s, unfenced, unfenced_s

    fenced, fenced_s, unfenced, unfenced_s = run_once(benchmark, scenario)

    # The acceptance shape the bench rides on — a throughput number for
    # a sweep that misses the bug (or breaks replay) is worthless.
    assert fenced.schedules_run >= 200
    assert fenced.violations == []
    assert fenced.replay_mismatches == []
    assert unfenced.replay_mismatches == []
    assert unfenced.violations_by_invariant().get("single-writer-per-epoch", 0) > 0

    n = fenced.schedules_run
    print_table(
        "Chaos campaign: epoch fencing on vs off",
        ["config", "schedules", "violations", "fenced ops", "sweep", "sched/s"],
        [
            ["fenced", n, len(fenced.violations), fenced.fenced_ops,
             f"{fenced_s:.1f}s", f"{n / fenced_s:.1f}"],
            ["unfenced", n, len(unfenced.violations), unfenced.fenced_ops,
             f"{unfenced_s:.1f}s", f"{n / unfenced_s:.1f}"],
        ],
        notes=[
            "each schedule runs twice per sweep (replay byte-identity check)",
            "unfenced violations by invariant: "
            + ", ".join(
                f"{k}={v}"
                for k, v in sorted(unfenced.violations_by_invariant().items())
            ),
        ],
    )
    record(
        benchmark,
        schedules_swept=n,
        schedules_per_s=n / fenced_s,
        violations_unfenced=len(unfenced.violations),
    )
    save_bench(
        "chaos_campaign",
        {
            "schedules_swept": n,
            "schedules_per_s": round(n / fenced_s, 2),
            "fenced_sweep_s": round(fenced_s, 2),
            "unfenced_sweep_s": round(unfenced_s, 2),
            "violations_fenced": len(fenced.violations),
            "violations_unfenced": len(unfenced.violations),
            "violations_unfenced_by_invariant": unfenced.violations_by_invariant(),
            "split_brain_schedules_unfenced": len(unfenced.violating_schedules),
            "fenced_ops": fenced.fenced_ops,
            "replay_mismatches": 0,
        },
    )
