"""§5.3 #4: TensorFlow vs TensorFlow Lite inference inside the enclave.

Paper: same Inception-v3 model and input, HW mode; Lite classifies in
0.697 s while full TensorFlow takes 49.782 s (~71×), because the 87.4 MB
TensorFlow binary cannot stay EPC-resident next to the 91 MB model,
while Lite's 1.9 MB binary can.

The mechanism reproduces (binary size vs EPC → order-of-magnitude gap);
the magnitude is smaller here because the EPC model charges paging as
sequential 64 KiB streams rather than the pathological random 4 KiB
thrash a real allocator produces (see EXPERIMENTS.md).
"""

import pytest

from harness import PAPER, fmt_s, print_table, record, run_once

from repro.core.inference import (
    InferenceService,
    deploy_encrypted_model,
    service_runtime_config,
)
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.data import synthetic_cifar10
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model
from repro.tensor.engine import FULL_TF_PROFILE, LITE_PROFILE

RUNS = 6


def _measure(engine_profile):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=90))
    model = pretrained_lite_model("inception_v3", seed=0)
    platform.register_session(
        "tfvslite",
        [
            service_runtime_config("svc", SgxMode.HW, engine=profile)
            for profile in (LITE_PROFILE, FULL_TF_PROFILE)
        ],
    )
    path = deploy_encrypted_model(platform, "tfvslite", platform.node(1), model)
    _, test = synthetic_cifar10(n_train=5, n_test=5, seed=11)
    image = test.images[0]
    service = InferenceService(
        platform, "tfvslite", platform.node(1), path, mode=SgxMode.HW,
        name="svc", engine=engine_profile,
    )
    service.start()
    service.classify(image)
    before = service.node.clock.now
    for _ in range(RUNS):
        service.classify(image)
    return (service.node.clock.now - before) / RUNS


def test_tensorflow_vs_lite_in_enclave(benchmark):
    def scenario():
        return _measure(LITE_PROFILE), _measure(FULL_TF_PROFILE)

    lite, full = run_once(benchmark, scenario)
    ratio = full / lite
    print_table(
        "§5.3 #4 — TensorFlow vs TensorFlow Lite, Inception-v3, HW mode",
        ("engine", "binary", "latency"),
        [
            ("TensorFlow Lite", "1.9 MB", fmt_s(lite)),
            ("TensorFlow (full)", "87.4 MB", fmt_s(full)),
        ],
        notes=[
            f"ratio {ratio:.1f}x (paper: ~{PAPER['tf_vs_lite_ratio']:.0f}x — "
            f"{PAPER['tf_lite_hw_inception_v3_s']}s vs "
            f"{PAPER['tf_full_hw_inception_v3_s']}s)",
            "mechanism: the full-TF binary + model exceed the ~94 MB EPC",
        ],
    )
    record(benchmark, lite_s=lite, full_s=full, ratio=ratio)

    # Shape: Lite is in the right absolute ballpark, and full TF is an
    # order of magnitude slower in the enclave.
    assert 0.3 < lite < 3.0
    assert ratio > 8.0
