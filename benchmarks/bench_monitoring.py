"""The monitoring plane: SLO evaluation throughput, incident latency,
and recorder overhead.

Three measurements of the ISSUE 10 subsystem:

- **SLO evaluation throughput**: a standalone :class:`SloMonitor` over
  the event heap — evaluations per wall second at the default 0.25 s
  interval (the cost of continuously watching an objective);
- **incident bundle latency**: wall time to freeze the rings, merge the
  cross-node timeline, and dump one canonical bundle from a loaded
  recorder (the "black box hits the ground" path);
- **recorder overhead**: the serving workload (replica crash under
  traffic) with monitoring off vs on — wall ratio and the proof that
  simulated results did not move.

An example bundle lands in ``bench_artifacts/`` next to ``BENCH.json``;
scalars go to ``BENCH.json`` under ``monitoring``.
"""

import time

from harness import print_table, record, run_once, save_artifact, save_bench

from repro._sim.clock import SimClock
from repro._sim.scheduler import Scheduler
from repro.observability.flight import FlightRecorder
from repro.observability.incident import IncidentPipeline
from repro.observability.monitoring import SloMonitor, SloSpec
from repro.serving.service import ServingPlane

EVAL_SECONDS = 200.0  # simulated span the standalone monitor sweeps
RING_EVENTS = 5000  # events loaded into the recorder before the freeze
RING_NODES = 8


def _slo_throughput():
    scheduler = Scheduler()
    clock = SimClock()
    value = {"v": 0.1}
    specs = [
        SloSpec(
            name=f"bench.metric{i}",
            value_probe=lambda: value["v"],
            objective=1.0,
            budget=0.01,
            short_window=1.0,
            long_window=4.0,
        )
        for i in range(4)
    ]
    monitor = SloMonitor(scheduler, clock, specs, interval=0.25)
    monitor.start()
    started = time.perf_counter()
    scheduler.run(until=EVAL_SECONDS)
    wall = time.perf_counter() - started
    monitor.stop()
    scheduler.run()
    return monitor.evaluations * len(specs), wall


def _bundle_latency():
    recorder = FlightRecorder(capacity=1024)
    clocks = []
    for i in range(RING_NODES):
        clock = SimClock()
        recorder.register_clock(clock, f"node-{i}")
        clocks.append(clock)
    for i in range(RING_EVENTS):
        clock = clocks[i % RING_NODES]
        clock.advance(0.001)
        recorder.record(clock, "rpc", f"call-{i}", f"attempt={i % 3}")
    pipeline = IncidentPipeline(recorder, window=2.0)
    started = time.perf_counter()
    bundle = pipeline.trigger("crash", "node-0", clock=clocks[0])
    dump = bundle.dump()
    wall = time.perf_counter() - started
    return bundle, dump, wall


def _serve(monitoring: bool):
    plane = ServingPlane(
        seed=29, n_nodes=3, initial_replicas=2, monitoring=monitoring
    )
    plane.platform.scheduler.schedule(
        1.0, lambda: plane.pool.crash("replica-0"), label="chaos:crash"
    )
    started = time.perf_counter()
    stats = plane.run_traffic(clients=4, duration=2.0, deadline_budget=0.5)
    wall = time.perf_counter() - started
    plane.check_invariants()
    bundles = list(plane.monitoring.bundles) if monitoring else []
    result = (stats.ok, plane.platform.time, plane.trace_bytes())
    plane.close()
    return result, bundles, wall


def test_bench_monitoring(benchmark):
    def scenario():
        metrics = {}

        evaluations, eval_wall = _slo_throughput()
        metrics["slo_evaluations"] = evaluations
        metrics["slo_evals_per_s"] = evaluations / eval_wall if eval_wall else 0.0

        bundle, dump, bundle_wall = _bundle_latency()
        metrics["bundle_events"] = len(bundle.timeline)
        metrics["bundle_bytes"] = len(dump)
        metrics["bundle_latency_ms"] = bundle_wall * 1e3
        save_artifact("monitoring.incident.json", dump.decode() + "\n")

        plain_result, _, plain_wall = _serve(monitoring=False)
        monitored_result, bundles, monitored_wall = _serve(monitoring=True)
        metrics["serving_plain_wall_s"] = plain_wall
        metrics["serving_monitored_wall_s"] = monitored_wall
        metrics["recorder_overhead_ratio"] = (
            monitored_wall / plain_wall if plain_wall else 0.0
        )
        metrics["serving_bundles"] = len(bundles)
        # The recorder is read-only: identical ok-count, simulated time,
        # and canonical decision trace with monitoring on.
        assert monitored_result == plain_result
        assert bundles  # the crash produced its incident
        return metrics

    metrics = run_once(benchmark, scenario)
    print_table(
        "Monitoring plane — SLO engine, flight recorder, incidents",
        ("measurement", "value"),
        [
            ("SLO evaluations / wall s", f"{metrics['slo_evals_per_s']:,.0f}"),
            (
                "bundle latency (freeze+merge+dump)",
                f"{metrics['bundle_latency_ms']:.2f}ms",
            ),
            ("bundle timeline events", metrics["bundle_events"]),
            ("bundle size", f"{metrics['bundle_bytes']} B"),
            (
                "serving wall, monitoring off/on",
                f"{metrics['serving_plain_wall_s']:.2f}s / "
                f"{metrics['serving_monitored_wall_s']:.2f}s",
            ),
            (
                "recorder overhead",
                f"{metrics['recorder_overhead_ratio']:.2f}x",
            ),
        ],
        notes=[
            "simulated results byte-identical with monitoring on "
            f"({metrics['serving_bundles']} incident bundle(s) emitted)",
        ],
    )
    record(benchmark, **metrics)
    save_bench(
        "monitoring",
        {k: (round(v, 4) if isinstance(v, float) else v)
         for k, v in metrics.items()},
    )
    assert metrics["slo_evals_per_s"] > 0
    assert metrics["bundle_events"] > 0
    assert metrics["serving_bundles"] >= 1
