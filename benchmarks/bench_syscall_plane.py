"""The exit-less syscall plane: sync vs async throughput, ring sweeps.

Measures the *simulated* cost of the enclave/OS boundary under the
submission/completion ring (SCONE §3.3.3) against classic synchronous
transitions, in HW mode:

- raw syscall rate (calls/s) over a nop loop;
- fs-shield read bandwidth (MB/s) for a 2 MiB encrypted model;
- a handler-thread sweep (starvation → the plane degrades to sync
  fallbacks at 0 handlers, queues at 1, breathes at 4);
- a scheduler-occupancy sweep (the kernel overlap is *measured* from
  runnable-thread occupancy, not a constant).

Results go to ``BENCH.json`` under ``syscall_plane``.
"""

import pytest

from harness import fmt_ms, print_table, record, run_once, save_bench

from repro._sim import DeterministicRng, SimClock
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import EnclaveImage, Segment, SgxCpu, SgxMode
from repro.runtime.fs_shield import FileSystemShield, PathRule, ShieldPolicy
from repro.runtime.syscall import SyscallInterface
from repro.runtime.syscall_plane import SyscallPlaneConfig
from repro.runtime.threading_ul import UserLevelScheduler
from repro.runtime.vfs import VirtualFileSystem

N_SYSCALLS = 5000
PAYLOAD_BYTES = 2 * 1024 * 1024


def _hw_interface(asynchronous, handler_threads=2, runnable=4, seed=0):
    rng = DeterministicRng(seed, label="plane-bench")
    clock = SimClock()
    pa = ProvisioningAuthority(rng.child("intel"))
    cpu = SgxCpu("cpu-plane", CM, clock, pa, rng.child("cpu"))
    image = EnclaveImage("plane", [Segment.from_content("b", b"x", "code")])
    enclave = cpu.create_enclave(image, SgxMode.HW)
    syscalls = SyscallInterface(
        VirtualFileSystem(),
        CM,
        clock,
        mode=SgxMode.HW,
        enclave=enclave,
        asynchronous=asynchronous,
        plane_config=SyscallPlaneConfig(handler_threads=handler_threads),
    )
    scheduler = UserLevelScheduler(CM, clock, mode=SgxMode.HW)
    scheduler.set_runnable(runnable)
    syscalls.attach_scheduler(scheduler)
    return syscalls, clock


def _shield_over(syscalls, clock):
    return FileSystemShield(
        syscalls,
        bytes(range(32)),
        [PathRule("/secure/", ShieldPolicy.ENCRYPT)],
        CM,
        clock,
        chunk_size=64 * 1024,
    )


def test_bench_syscall_plane(benchmark):
    def scenario():
        metrics = {}

        # -- raw syscall rate, sync vs async --------------------------
        for asynchronous in (False, True):
            syscalls, clock = _hw_interface(asynchronous)
            before = clock.now
            for _ in range(N_SYSCALLS):
                syscalls.nop_syscall()
            elapsed = clock.now - before
            key = "async" if asynchronous else "sync"
            metrics[f"{key}_calls_s"] = N_SYSCALLS / elapsed

        # -- fs-shield read bandwidth, sync vs async ------------------
        for asynchronous in (False, True):
            syscalls, clock = _hw_interface(asynchronous)
            shield = _shield_over(syscalls, clock)
            shield.write_file("/secure/model", b"w" * PAYLOAD_BYTES)
            before = clock.now
            shield.read_file("/secure/model")
            elapsed = clock.now - before
            key = "async" if asynchronous else "sync"
            metrics[f"{key}_read_mb_s"] = PAYLOAD_BYTES / elapsed / 1e6
            metrics[f"{key}_read_ms"] = elapsed * 1e3

        # -- handler-thread sweep (posted-write drain) ----------------
        for handlers in (0, 1, 4):
            syscalls, clock = _hw_interface(True, handler_threads=handlers)
            before = clock.now
            for _ in range(N_SYSCALLS):
                syscalls.socket_send(1024)
            syscalls.flush()
            metrics[f"handlers_{handlers}_send_ms"] = (clock.now - before) * 1e3
            metrics[f"handlers_{handlers}_sync_fallbacks"] = (
                syscalls.stats.sync_fallbacks
            )

        # -- occupancy sweep: measured kernel overlap -----------------
        for runnable in (1, 2, 8):
            syscalls, clock = _hw_interface(True, runnable=runnable)
            for _ in range(500):
                syscalls.nop_syscall("read")
            stats = syscalls.stats
            waited = stats.overlap_hidden_time + stats.overlap_exposed_time
            metrics[f"overlap_runnable_{runnable}"] = (
                stats.overlap_hidden_time / waited if waited else 0.0
            )
        return metrics

    metrics = run_once(benchmark, scenario)
    speedup = metrics["async_calls_s"] / metrics["sync_calls_s"]
    print_table(
        f"Syscall plane — {N_SYSCALLS} HW nop syscalls + 2 MiB shielded read",
        ("path", "calls/s", "read MB/s"),
        [
            ("sync", f"{metrics['sync_calls_s']:,.0f}",
             f"{metrics['sync_read_mb_s']:.1f}"),
            ("async", f"{metrics['async_calls_s']:,.0f}",
             f"{metrics['async_read_mb_s']:.1f}"),
        ],
        notes=[f"exit-less ring is {speedup:.1f}x faster on raw calls"],
    )
    print_table(
        "Handler sweep — 5000 posted sends",
        ("handlers", "time", "sync fallbacks"),
        [
            (n, fmt_ms(metrics[f"handlers_{n}_send_ms"] / 1e3),
             metrics[f"handlers_{n}_sync_fallbacks"])
            for n in (0, 1, 4)
        ],
    )
    print_table(
        "Occupancy sweep — measured kernel overlap",
        ("runnable threads", "overlap hidden"),
        [
            (r, f"{metrics[f'overlap_runnable_{r}'] * 100:.0f}%")
            for r in (1, 2, 8)
        ],
    )
    record(benchmark, **metrics)
    save_bench(
        "syscall_plane",
        {k: (round(v, 3) if isinstance(v, float) else v)
         for k, v in metrics.items()},
    )
    # The exit-less interface must be measurably cheaper than sync
    # transitions, and the overlap must grow with occupancy.
    assert metrics["async_calls_s"] > metrics["sync_calls_s"]
    assert metrics["async_read_mb_s"] > metrics["sync_read_mb_s"]
    assert metrics["handlers_0_sync_fallbacks"] == N_SYSCALLS
    assert (
        metrics["overlap_runnable_1"]
        < metrics["overlap_runnable_2"]
        < metrics["overlap_runnable_8"]
    )
