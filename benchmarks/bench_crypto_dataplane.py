"""Crypto data-plane throughput: real MB/s of the AEADs and shield paths.

Unlike the figure benchmarks, which report *simulated* time, this one
measures the wall-clock throughput of the cryptography the simulator
actually executes — the vectorized AES-GCM and ChaCha20-Poly1305 cores
and the file-system shield built on them.  Results go to
``benchmark.extra_info`` and are persisted in ``BENCH.json`` so the
repo's perf trajectory is tracked PR over PR.

Seed baseline for reference: AES-GCM ~0.2 MB/s (bigint GHASH, serial
CTR), ChaCha20-Poly1305 ~22 MB/s (serial bigint Poly1305).
"""

import os
import time

from harness import print_table, record, run_once, save_bench

from repro._sim import SimClock
from repro.crypto.aead import get_aead
from repro.enclave.cost_model import DEFAULT_COST_MODEL
from repro.enclave.sgx import SgxMode
from repro.runtime.fs_shield import FileSystemShield, PathRule, ShieldPolicy
from repro.runtime.syscall import SyscallInterface
from repro.runtime.vfs import VirtualFileSystem

MESSAGE_SIZE = 1 << 20
REPEATS = 5
CIPHERS = ("chacha20-poly1305", "aes-256-gcm", "aes-128-gcm")


def _mb_per_s(n_bytes: int, fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return n_bytes / best / 1e6


def _aead_throughputs() -> dict:
    results = {}
    payload = os.urandom(MESSAGE_SIZE)
    nonce = os.urandom(12)
    for cipher in CIPHERS:
        key = os.urandom(32 if cipher != "aes-128-gcm" else 16)
        aead = get_aead(cipher, key)
        sealed = aead.encrypt(nonce, payload)
        results[f"{cipher}_encrypt_mb_s"] = _mb_per_s(
            MESSAGE_SIZE, lambda a=aead: a.encrypt(nonce, payload)
        )
        results[f"{cipher}_decrypt_mb_s"] = _mb_per_s(
            MESSAGE_SIZE, lambda a=aead: a.decrypt(nonce, sealed)
        )
    return results


def _make_shield(cipher: str) -> FileSystemShield:
    vfs = VirtualFileSystem()
    clock = SimClock()
    syscalls = SyscallInterface(vfs, DEFAULT_COST_MODEL, clock, mode=SgxMode.NATIVE)
    return FileSystemShield(
        syscalls,
        bytes(range(32)),
        [PathRule("/secure/", ShieldPolicy.ENCRYPT)],
        DEFAULT_COST_MODEL,
        clock,
        cipher=cipher,
    )


def _shield_throughputs() -> dict:
    results = {}
    payload = os.urandom(MESSAGE_SIZE)
    for cipher in CIPHERS:
        shield = _make_shield(cipher)
        results[f"fs_shield_{cipher}_write_mb_s"] = _mb_per_s(
            MESSAGE_SIZE, lambda s=shield: s.write_file("/secure/bench", payload)
        )
        # Cold read: caches dropped before every iteration.
        results[f"fs_shield_{cipher}_read_cold_mb_s"] = _mb_per_s(
            MESSAGE_SIZE,
            lambda s=shield: (s.drop_caches(), s.read_file("/secure/bench")),
        )
        # Warm read: chunk cache populated by the previous read.
        shield.read_file("/secure/bench")
        results[f"fs_shield_{cipher}_read_warm_mb_s"] = _mb_per_s(
            MESSAGE_SIZE, lambda s=shield: s.read_file("/secure/bench")
        )
    return results


def _collect() -> dict:
    results = _aead_throughputs()
    results.update(_shield_throughputs())
    return results


def test_crypto_dataplane_throughput(benchmark):
    results = run_once(benchmark, _collect)

    rows = []
    for cipher in CIPHERS:
        rows.append(
            (
                cipher,
                f"{results[f'{cipher}_encrypt_mb_s']:.1f}",
                f"{results[f'{cipher}_decrypt_mb_s']:.1f}",
                f"{results[f'fs_shield_{cipher}_write_mb_s']:.1f}",
                f"{results[f'fs_shield_{cipher}_read_cold_mb_s']:.1f}",
                f"{results[f'fs_shield_{cipher}_read_warm_mb_s']:.1f}",
            )
        )
    print_table(
        "Crypto data plane — real throughput (MB/s)",
        ("cipher", "encrypt", "decrypt", "shield write", "read cold", "read warm"),
        rows,
        notes=[
            "seed baseline: aes-gcm ~0.2 MB/s, chacha20-poly1305 ~22 MB/s",
            "warm reads serve plaintext chunks from the freshness-bound cache",
        ],
    )
    record(benchmark, **results)
    save_bench("crypto_dataplane", {k: round(v, 2) for k, v in results.items()})

    # Acceptance floors from the data-plane rework (conservative: CI
    # machines vary, but regressions to the seed's bigint paths are
    # orders of magnitude, not percent).
    assert results["chacha20-poly1305_encrypt_mb_s"] >= 45.0
    assert results["aes-256-gcm_encrypt_mb_s"] >= 10.0
    assert results["aes-128-gcm_encrypt_mb_s"] >= 10.0
    # The warm read path must beat the cold one — that's the cache.
    for cipher in CIPHERS:
        assert (
            results[f"fs_shield_{cipher}_read_warm_mb_s"]
            > results[f"fs_shield_{cipher}_read_cold_mb_s"]
        )
