"""Resilient serving plane under diurnal load and seeded chaos.

Drives the full :class:`ServingPlane` (attested router, elastic replica
pool, watchdog supervision, SLO autoscaler) with a closed-loop client
fleet through a diurnal spike profile, twice: fault-free and under a
seeded chaos plan (message loss + latency spikes + duplicate delivery,
one transient partition, one replica crash mid-spike).  Headline
numbers — sustained requests/s, client p99 under chaos, and the
cold-start → attested latency that makes elastic scaling practical
(paper challenge ❹) — land in ``BENCH.json`` under ``serving``.

The bench also *asserts* the plane's contract while measuring it:
every admitted request terminates in exactly one reply or one typed
error, and the chaos run replays byte-for-byte from its seed.
"""

import pytest

from harness import fmt_ms, fmt_s, print_table, record, run_once, save_bench

from repro.cluster.faults import FaultPlan, FaultSpec, TransientPartition
from repro.serving.autoscaler import AutoscalerPolicy
from repro.serving.service import ServingPlane
from repro.serving.traffic import DiurnalProfile

SEED = 21
CLIENTS = 12
DURATION = 8.0
DEADLINE_BUDGET = 0.5


def _run(seed: int, chaos: bool):
    plane = ServingPlane(
        seed=seed,
        n_nodes=4,
        initial_replicas=2,
        autoscaler_policy=AutoscalerPolicy(
            slo_p99=0.2, min_replicas=2, max_replicas=6
        ),
    )
    plan = None
    if chaos:
        plan = FaultPlan(
            seed + 1,
            FaultSpec(loss=0.02, delay=0.02, delay_seconds=0.05, duplication=0.01),
            partitions=[TransientPartition("replica-1", 3.0, 4.0)],
        )
        plane.add_faults(plan)
        # replica-0 is never a drain target (scale-in drains the newest
        # replica first), so this always kills a *running* enclave.
        plane.platform.scheduler.schedule(
            5.0, lambda: plane.pool.crash("replica-0"), label="chaos:crash"
        )
    start = plane.time
    stats = plane.run_traffic(
        CLIENTS,
        DURATION,
        profile=DiurnalProfile(),
        deadline_budget=DEADLINE_BUDGET,
    )
    elapsed = plane.time - start
    # The contract the numbers ride on: no silent drops, no double
    # execution — every admitted request has exactly one outcome.
    plane.check_invariants()
    stats.assert_accounted()
    return plane, plan, stats, elapsed


def test_serving_plane(benchmark):
    def scenario():
        clean = _run(SEED, chaos=False)
        chaos = _run(SEED, chaos=True)
        replay = _run(SEED, chaos=True)
        return clean, chaos, replay

    clean, chaos, replay = run_once(benchmark, scenario)

    # Determinism: the chaos run replays byte-for-byte from its seed —
    # router decisions, pool lifecycle, autoscaler moves, injected
    # faults, all of it.
    assert chaos[0].trace_bytes() == replay[0].trace_bytes()
    assert chaos[1].trace_bytes() == replay[1].trace_bytes()
    assert chaos[2].outcomes == replay[2].outcomes

    def measures(run):
        plane, _, stats, elapsed = run
        return {
            "req_per_s": stats.ok / elapsed,
            "p50": stats.latency.percentile(50),
            "p99": stats.latency.percentile(99),
            "ok": stats.ok,
            "sent": stats.sent,
            "typed_errors": stats.overload + stats.deadline + stats.transport,
            "retries": plane.router.stats.retries,
            "hedges": plane.router.stats.hedges_fired,
            "hedges_won": plane.router.stats.hedges_won,
            "replicas_attested": len(plane.pool.cold_starts),
            "cold_starts": list(plane.pool.cold_starts),
        }

    m_clean, m_chaos = measures(clean), measures(chaos)
    cold = m_chaos["cold_starts"]
    cold_mean = sum(cold) / len(cold)

    def row(label, m):
        return (
            label,
            f"{m['req_per_s']:.0f}",
            fmt_ms(m["p50"]),
            fmt_ms(m["p99"]),
            f"{m['ok']}/{m['sent']}",
            str(m["typed_errors"]),
            str(m["retries"]),
            f"{m['hedges_won']}/{m['hedges']}",
        )

    print_table(
        f"Serving plane: {CLIENTS} clients, {fmt_s(DURATION)} diurnal spike, "
        f"{fmt_s(DEADLINE_BUDGET)} deadline budget",
        ("scenario", "req/s", "p50", "p99", "ok/sent", "typed err",
         "retries", "hedge won"),
        [
            row("fault-free", m_clean),
            row("chaos (loss+part+crash)", m_chaos),
        ],
        notes=[
            "chaos: 2% loss, 2% latency spikes, 1% duplication, 1s partition "
            f"of replica-1, replica-0 crashed mid-spike (seed {SEED + 1})",
            f"{m_chaos['replicas_attested']} replicas attested over the chaos "
            f"run; cold start -> attested mean {fmt_ms(cold_mean)}, "
            f"max {fmt_ms(max(cold))}",
            "every admitted request terminated in exactly one reply or one "
            "typed error; chaos run replays byte-identically from its seed",
        ],
    )

    record(
        benchmark,
        clean_req_per_s=m_clean["req_per_s"],
        chaos_req_per_s=m_chaos["req_per_s"],
        chaos_p99_s=m_chaos["p99"],
        cold_start_mean_s=cold_mean,
    )
    save_bench(
        "serving",
        {
            "clients": CLIENTS,
            "duration_s": DURATION,
            "deadline_budget_s": DEADLINE_BUDGET,
            "clean_requests_per_sec": round(m_clean["req_per_s"], 1),
            "clean_p99_ms": round(m_clean["p99"] * 1e3, 3),
            "chaos_requests_per_sec": round(m_chaos["req_per_s"], 1),
            "chaos_p99_ms": round(m_chaos["p99"] * 1e3, 3),
            "chaos_ok": m_chaos["ok"],
            "chaos_sent": m_chaos["sent"],
            "chaos_typed_errors": m_chaos["typed_errors"],
            "chaos_retries": m_chaos["retries"],
            "chaos_hedges_fired": m_chaos["hedges"],
            "chaos_hedges_won": m_chaos["hedges_won"],
            "cold_start_to_attested_ms_mean": round(cold_mean * 1e3, 3),
            "cold_start_to_attested_ms_max": round(max(cold) * 1e3, 3),
            "replicas_attested_under_chaos": m_chaos["replicas_attested"],
            "replay_byte_identical": True,
        },
    )
