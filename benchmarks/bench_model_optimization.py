"""§7.2: model optimization (quantization / pruning) in the enclave.

The paper's proposed extension: shrink deployed models so they fit the
EPC next to the runtime — and enable SGX edge devices.  This benchmark
quantizes and prunes Inception-v3 (91 MB, the borderline model) and
measures HW-mode inference latency for each variant.
"""

import pytest

from harness import fmt_s, print_table, record, run_once

from repro.core.inference import (
    InferenceService,
    deploy_encrypted_model,
    service_runtime_config,
)
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.data import synthetic_cifar10
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model
from repro.tensor.lite import prune, quantize

RUNS = 8


def _latency(model):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=110))
    platform.register_session(
        "opt", [service_runtime_config("svc", SgxMode.HW)]
    )
    path = deploy_encrypted_model(platform, "opt", platform.node(1), model)
    _, test = synthetic_cifar10(n_train=5, n_test=5, seed=14)
    service = InferenceService(
        platform, "opt", platform.node(1), path, mode=SgxMode.HW, name="svc"
    )
    service.start()
    service.classify(test.images[0])
    before = service.node.clock.now
    for _ in range(RUNS):
        service.classify(test.images[0])
    return (service.node.clock.now - before) / RUNS


def _collect():
    base = pretrained_lite_model("inception_v3", seed=0)
    variants = {
        "fp32 (91 MB)": base,
        "int8 quantized": quantize(base),
        "pruned 50%": prune(base, 0.5),
        "int8 + pruned 50%": prune(quantize(base), 0.5),
    }
    return {
        name: (model.size_bytes, _latency(model))
        for name, model in variants.items()
    }


def test_model_optimization_in_enclave(benchmark):
    results = run_once(benchmark, _collect)

    rows = [
        (name, f"{size / 1e6:.0f} MB", fmt_s(latency))
        for name, (size, latency) in results.items()
    ]
    base_latency = results["fp32 (91 MB)"][1]
    best_latency = min(latency for _, latency in results.values())
    print_table(
        "§7.2 — model optimization: Inception-v3, HW-mode inference",
        ("variant", "model size", "latency"),
        rows,
        notes=[
            f"best optimized variant is {base_latency / best_latency:.2f}x "
            f"faster in the enclave",
            "smaller models stop competing with the runtime for the EPC "
            "and become edge-deployable (§7.2)",
        ],
    )
    record(
        benchmark,
        **{name.split()[0]: latency for name, (_, latency) in results.items()},
    )

    # Quantization shrinks the model ~4x and never slows HW inference.
    assert results["int8 quantized"][0] < results["fp32 (91 MB)"][0] / 3
    assert results["int8 quantized"][1] <= base_latency * 1.01
    # The combined variant is the smallest.
    assert results["int8 + pruned 50%"][0] == min(s for s, _ in results.values())
