"""Sharded parameter-server scaling and secure-aggregation overhead.

Not a paper figure — the sharded training plane extends §5.4's
single-PS architecture — but benched to the same standard: simulated
steps/s must improve monotonically from 1 to 4 shards (the dominant
``fc1`` kernel is row-split, so per-push PS work parallelizes), 8-bit
gradient quantization must cut the bytes the shield's record crypto is
charged for, and the secure-aggregation committee's masking overhead
over plain federated averaging is recorded.
"""

import numpy as np
import pytest

from harness import fmt_s, print_table, record, run_once, save_bench

from repro.core import FederatedLearning, Hospital, SecureTFPlatform, TrainingJob
from repro.core.monitoring import collect_metrics
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJobConfig
from repro.cluster.retry import RetryPolicy
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode

STEPS = 8
SHARD_COUNTS = (1, 2, 4, 8)


def _run_sharded(batches, shards, bits):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=90))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session=f"bench-s{shards}-q{bits or 0}",
            n_workers=2,
            mode=SgxMode.SIM,
            network_shield=True,
            learning_rate=0.05,
            ps_shards=shards,
            gradient_quantization_bits=bits,
            retry_policy=RetryPolicy(max_attempts=4, base_delay=0.02),
        ),
    )
    job.start()
    result = job.train(batches, steps=STEPS)
    metrics = collect_metrics(platform)
    job.stop()
    return {
        "wall_s": result.wall_clock,
        "steps_per_s": STEPS / result.wall_clock,
        "wire_bytes": metrics.training.gradient_bytes_in,
        "bytes_saved": metrics.training.gradient_bytes_saved,
    }


def _run_federated(secure):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=91))
    train, _ = synthetic_mnist(n_train=300, n_test=10, seed=92)
    hospitals = [
        Hospital(
            f"hospital-{i}", platform.node(i), train.take(100),
            learning_rate=0.1, seed=3,
        )
        for i in range(3)
    ]
    fl = FederatedLearning(
        platform, "bench-fl", hospitals, mode=SgxMode.SIM,
        secure_aggregation=secure, n_aggregators=3 if secure else 2,
    )
    fl.start()
    clocks = [platform.node(i).clock for i in range(3)]
    before = max(c.now for c in clocks)
    for round_index in range(2):
        fl.run_round(local_steps=3, round_seed=round_index)
    wall = max(c.now for c in clocks) - before
    fl.stop()
    return wall


def _collect():
    train, _ = synthetic_mnist(n_train=400, n_test=10, seed=60)
    batches = list(train.batches(50))
    quantized = {s: _run_sharded(batches, s, 8) for s in SHARD_COUNTS}
    float32 = _run_sharded(batches, 4, None)
    plain_wall = _run_federated(secure=False)
    secure_wall = _run_federated(secure=True)
    return quantized, float32, plain_wall, secure_wall


def test_sharded_training_scaling(benchmark):
    quantized, float32, plain_wall, secure_wall = run_once(benchmark, _collect)

    rows = [
        [
            shards,
            fmt_s(r["wall_s"]),
            f"{r['steps_per_s']:.3f}",
            r["wire_bytes"],
            r["bytes_saved"],
        ]
        for shards, r in quantized.items()
    ]
    print_table(
        "Sharded PS scaling (8 steps, 2 workers, q8 gradients)",
        ["shards", "sim wall", "steps/s", "gradient bytes", "bytes saved"],
        rows,
        notes=[
            "quantization is a sharded-plane feature: the 1-shard row "
            "rides the bit-compatible single-PS plane (float32 pushes)",
            f"float32 @4 shards: {float32['wire_bytes']} gradient bytes "
            f"({fmt_s(float32['wall_s'])})",
            f"secure aggregation: {fmt_s(secure_wall)} vs plain "
            f"{fmt_s(plain_wall)} for 2 federated rounds",
        ],
    )

    # Steps/s improves monotonically 1 -> 4 shards (the acceptance bar).
    assert (
        quantized[1]["steps_per_s"]
        < quantized[2]["steps_per_s"]
        < quantized[4]["steps_per_s"]
    )
    # Quantization cuts the wire ~4x against the float32 run.
    assert quantized[4]["wire_bytes"] < float32["wire_bytes"] / 3
    assert quantized[4]["bytes_saved"] > 0
    # Masking costs something — each hospital opens one attested
    # channel per committee member instead of one total, and the
    # primary pulls every partial — but stays within a small constant
    # factor of plain averaging.
    overhead = secure_wall / plain_wall
    assert 1.0 <= overhead < 6.0

    metrics = {
        "steps": STEPS,
        "workers": 2,
        "steps_per_s": {
            str(s): round(r["steps_per_s"], 4) for s, r in quantized.items()
        },
        "wire_bytes_q8": {
            str(s): int(r["wire_bytes"]) for s, r in quantized.items()
        },
        "wire_bytes_float32_4shards": int(float32["wire_bytes"]),
        "quantization_bytes_saved_4shards": int(quantized[4]["bytes_saved"]),
        "secure_agg_wall_s": round(secure_wall, 4),
        "plain_agg_wall_s": round(plain_wall, 4),
        "secure_agg_overhead": round(overhead, 3),
    }
    record(benchmark, **metrics)
    save_bench("sharded_training", metrics)
