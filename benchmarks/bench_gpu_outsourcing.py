"""§7.4: GPU support via Slalom-style outsourcing — the trade-off.

The paper declines to ship GPU support because it requires weakening
the threat model; this benchmark quantifies what that choice costs and
buys: enclave-only HW inference vs enclave+untrusted-GPU (linear ops
offloaded, Freivalds-verified) vs fully-native CPU.
"""

import pytest

from harness import fmt_s, print_table, record, run_once

from repro.baselines import make_native_runner, make_slalom_runner
from repro.cluster import make_cluster
from repro.data import synthetic_cifar10
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.tensor.engine import LITE_PROFILE
from repro.tensor.lite import Interpreter
from repro._sim import DeterministicRng

RUNS = 6


def _collect():
    rng = DeterministicRng(120)
    provisioning = ProvisioningAuthority(rng.child("intel"))
    node = make_cluster(1, CM, provisioning, seed=120)[0]
    model = pretrained_lite_model("inception_v3", seed=0)
    _, test = synthetic_cifar10(n_train=5, n_test=8, seed=23)
    images = test.images

    native = make_native_runner(node, model, name="n")
    native.classify(images[0])
    native_latency = native.measure_latency(images, RUNS)

    runtime = SconeRuntime(
        RuntimeConfig(
            name="hw-cpu", mode=SgxMode.HW,
            binary_size=LITE_PROFILE.binary_size, fs_shield_enabled=False,
        ),
        node.vfs, CM, node.clock, cpu=node.cpu, rng=node.rng.child("hw-cpu"),
    )
    hw_cpu = Interpreter(model, runtime=runtime)
    hw_cpu.allocate_tensors()
    hw_cpu.classify(images[0][None])
    before = node.clock.now
    for index in range(RUNS):
        hw_cpu.classify(images[index % len(images)][None])
    hw_latency = (node.clock.now - before) / RUNS

    slalom = make_slalom_runner(node, model)
    slalom.classify(images[0])
    slalom_latency = slalom.measure_latency(images, RUNS)
    return native_latency, hw_latency, slalom_latency


def test_gpu_outsourcing_tradeoff(benchmark):
    native, hw, slalom = run_once(benchmark, _collect)
    print_table(
        "§7.4 — GPU outsourcing (Slalom-style), Inception-v3",
        ("deployment", "latency", "confidentiality"),
        [
            ("native CPU (no protection)", fmt_s(native), "none"),
            ("secureTF HW (enclave CPU)", fmt_s(hw), "full"),
            ("enclave + untrusted GPU", fmt_s(slalom), "weakened (linear layers exposed)"),
        ],
        notes=[
            f"GPU split is {hw / slalom:.1f}x faster than enclave-only, "
            f"{native / slalom:.1f}x vs native",
            "the paper keeps CPU-only by default: the GPU sees weights "
            "and activations of offloaded layers (§7.4)",
        ],
    )
    record(benchmark, native=native, hw=hw, slalom=slalom)

    assert slalom < hw / 3      # the win the weakened model buys
    assert slalom < native      # GPU beats even native CPU
