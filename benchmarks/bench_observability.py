"""The telemetry plane: tracing overhead and artifact export.

Runs the same HW distributed-training workload twice — telemetry off,
then on (tracer + 0.5 s metric sampler) — and checks the plane's core
bargain:

- **near-zero simulated cost**: recording never advances a clock, so
  the only simulated difference is the propagated trace context riding
  the RPC envelopes — a few wire bytes, microseconds over the run
  (tracing *disabled* is exactly byte-identical; the tier-2 perf smoke
  asserts that separately);
- **bounded wall cost**: the traced run's wall-clock stays within a
  small factor of the untraced run;
- **exact attribution**: every node's per-layer profile sums to its
  elapsed simulated time (compute is the charge remainder by
  construction, so the residual is float noise).

The traced run's Chrome trace (Perfetto-loadable), text profile, and
Prometheus snapshot land in ``bench_artifacts/`` next to ``BENCH.json``;
scalar results go to ``BENCH.json`` under ``observability``.
"""

import json
import time

from harness import print_table, record, run_once, save_artifact, save_bench

from repro.core import SecureTFPlatform
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJob, TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode
from repro.observability import validate_chrome_trace

BATCHES = 6
BATCH_SIZE = 64


def _train(tracing: bool):
    train, _ = synthetic_mnist(n_train=BATCHES * BATCH_SIZE, n_test=4, seed=5)
    batches = list(train.batches(BATCH_SIZE))
    platform = SecureTFPlatform(
        PlatformConfig(n_nodes=3, seed=5, tracing=tracing, metrics_interval=0.5)
    )
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session="bench-obs",
            n_workers=2,
            mode=SgxMode.HW,
            network_shield=True,
        ),
    )
    job.start()
    result = job.train(batches)
    job.stop()
    return platform, result


def test_bench_observability(benchmark):
    def scenario():
        metrics = {}

        started = time.perf_counter()
        _, plain = _train(tracing=False)
        metrics["untraced_wall_s"] = time.perf_counter() - started

        started = time.perf_counter()
        platform, traced = _train(tracing=True)
        metrics["traced_wall_s"] = time.perf_counter() - started
        telemetry = platform.telemetry

        trace = telemetry.chrome_trace()
        metrics["spans"] = validate_chrome_trace(trace)
        metrics["histograms"] = len(telemetry.tracer.histograms)
        metrics["series"] = len(telemetry.sampler.series)
        metrics["samples"] = telemetry.sampler.samples_taken

        residual = 0.0
        for profile in telemetry.profile().values():
            if profile.elapsed > 0:
                residual = max(
                    residual,
                    abs(sum(profile.layers.values()) - profile.elapsed)
                    / profile.elapsed,
                )
        metrics["profile_residual"] = residual
        metrics["simulated_delta_s"] = abs(traced.wall_clock - plain.wall_clock)
        metrics["overhead_ratio"] = (
            metrics["traced_wall_s"] / metrics["untraced_wall_s"]
        )

        save_artifact(
            "observability.trace.json", json.dumps(trace, indent=2) + "\n"
        )
        save_artifact("observability.profile.txt", telemetry.profile_report() + "\n")
        save_artifact("observability.prom.txt", telemetry.prometheus())
        platform.close_telemetry()
        return metrics

    metrics = run_once(benchmark, scenario)
    print_table(
        f"Telemetry plane — {BATCHES} HW training batches, 2 workers",
        ("telemetry", "wall", "spans", "series", "samples"),
        [
            ("off", f"{metrics['untraced_wall_s']:.2f}s", "-", "-", "-"),
            (
                "on",
                f"{metrics['traced_wall_s']:.2f}s",
                metrics["spans"],
                metrics["series"],
                metrics["samples"],
            ),
        ],
        notes=[
            f"wall overhead {metrics['overhead_ratio']:.2f}x, "
            f"simulated delta {metrics['simulated_delta_s']:.6f}s, "
            f"worst profile residual {metrics['profile_residual']:.2e}",
        ],
    )
    record(benchmark, **metrics)
    save_bench(
        "observability",
        {k: (round(v, 4) if isinstance(v, float) else v)
         for k, v in metrics.items()},
    )
    # Recording must be (near-)free in simulated time — the envelope's
    # trace context is the only wire-level difference — and must
    # attribute every simulated second it observed.
    assert metrics["simulated_delta_s"] < 1e-3
    assert metrics["spans"] > 0
    assert metrics["series"] > 0
    assert metrics["profile_residual"] < 0.01
