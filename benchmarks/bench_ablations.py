"""Ablations of the design choices DESIGN.md calls out.

(a) asynchronous vs synchronous syscalls (SCONE's exit-less interface),
(b) user-level vs OS threading on blocking events,
(c) file-system shield chunk size,
(d) EPC replacement policy (random vs LRU) under a slight overflow,
(e) TLS record cipher choice.
"""

import pytest

from harness import fmt_ms, fmt_s, print_table, record, run_once

from repro._sim import DeterministicRng, SimClock
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.epc import EpcCache
from repro.enclave.sgx import EnclaveImage, Segment, SgxCpu, SgxMode
from repro.runtime.fs_shield import FileSystemShield, PathRule, ShieldPolicy
from repro.runtime.syscall import SyscallInterface
from repro.runtime.threading_ul import ThreadingModel, UserLevelScheduler
from repro.runtime.vfs import VirtualFileSystem

N_SYSCALLS = 2000
N_BLOCKS = 2000


def _make_cpu(seed=0):
    rng = DeterministicRng(seed, label="ablation")
    clock = SimClock()
    pa = ProvisioningAuthority(rng.child("intel"))
    return SgxCpu("cpu-a", CM, clock, pa, rng.child("cpu")), clock


def _enclave(cpu):
    image = EnclaveImage("abl", [Segment.from_content("b", b"x", "code")])
    return cpu.create_enclave(image, SgxMode.HW)


def test_ablation_async_syscalls(benchmark):
    def scenario():
        results = {}
        for asynchronous in (False, True):
            cpu, clock = _make_cpu()
            enclave = _enclave(cpu)
            syscalls = SyscallInterface(
                VirtualFileSystem(), CM, clock, mode=SgxMode.HW,
                enclave=enclave, asynchronous=asynchronous,
            )
            before = clock.now
            for _ in range(N_SYSCALLS):
                syscalls.nop_syscall()
            results["async" if asynchronous else "sync"] = clock.now - before
        return results

    results = run_once(benchmark, scenario)
    ratio = results["sync"] / results["async"]
    print_table(
        f"Ablation (a) — {N_SYSCALLS} enclave syscalls",
        ("interface", "total time"),
        [(k, fmt_ms(v)) for k, v in results.items()],
        notes=[f"exit-less interface is {ratio:.1f}x faster"],
    )
    record(benchmark, sync_ms=results["sync"] * 1e3, async_ms=results["async"] * 1e3)
    assert ratio > 1.5


def test_ablation_userlevel_threading(benchmark):
    def scenario():
        results = {}
        for model in (ThreadingModel.OS, ThreadingModel.USER_LEVEL):
            cpu, clock = _make_cpu()
            enclave = _enclave(cpu)
            scheduler = UserLevelScheduler(
                CM, clock, mode=SgxMode.HW, threading_model=model,
                enclave=enclave,
            )
            before = clock.now
            for _ in range(N_BLOCKS):
                scheduler.block()
            results[model.value] = clock.now - before
        return results

    results = run_once(benchmark, scenario)
    ratio = results["os"] / results["user-level"]
    print_table(
        f"Ablation (b) — {N_BLOCKS} blocking events in HW mode",
        ("threading", "total time"),
        [(k, fmt_ms(v)) for k, v in results.items()],
        notes=[f"user-level threading is {ratio:.1f}x cheaper per block"],
    )
    record(benchmark, **{k.replace("-", "_"): v for k, v in results.items()})
    assert ratio > 3


def test_ablation_fs_shield_chunk_size(benchmark):
    payload = bytes(np_bytes := 2 * 1024 * 1024)

    def scenario():
        results = {}
        for chunk_size in (4 * 1024, 64 * 1024, 1024 * 1024):
            clock = SimClock()
            syscalls = SyscallInterface(VirtualFileSystem(), CM, clock)
            shield = FileSystemShield(
                syscalls,
                bytes(32),
                [PathRule("/s/", ShieldPolicy.ENCRYPT)],
                CM,
                clock,
                chunk_size=chunk_size,
            )
            before = clock.now
            shield.write_file("/s/blob", payload)
            shield.read_file("/s/blob")
            results[chunk_size] = clock.now - before
        return results

    results = run_once(benchmark, scenario)
    print_table(
        "Ablation (c) — fs-shield chunk size, 2 MiB write+read",
        ("chunk", "time"),
        [(f"{k // 1024} KiB", fmt_ms(v)) for k, v in results.items()],
        notes=["small chunks pay per-chunk overhead; huge chunks lose "
               "random-access granularity (not captured here)"],
    )
    record(benchmark, **{f"chunk_{k}": v for k, v in results.items()})
    assert results[4 * 1024] > results[64 * 1024]


def test_ablation_epc_replacement_policy(benchmark):
    """Random replacement degrades gracefully on a 10%-overflowing cyclic
    scan; LRU collapses to a 100% miss rate — the reason the default EPC
    model is random (see repro/enclave/epc.py)."""

    def scenario():
        results = {}
        granules = 440  # vs capacity 400
        for policy in ("lru", "random"):
            clock = SimClock()
            cache = EpcCache(
                CM, clock, capacity_bytes=400 * 64 * 1024, policy=policy
            )
            for _ in range(10):
                for g in range(granules):
                    cache.access(1, g)
            results[policy] = cache.stats.fault_rate
        return results

    results = run_once(benchmark, scenario)
    print_table(
        "Ablation (d) — EPC policy, cyclic scan at 110% of capacity",
        ("policy", "miss rate"),
        [(k, f"{v * 100:.1f}%") for k, v in results.items()],
    )
    record(benchmark, **results)
    assert results["lru"] > 0.95
    assert results["random"] < 0.5


def test_ablation_tls_cipher(benchmark):
    from repro.crypto.aead import get_aead

    payload = bytes(256 * 1024)

    def scenario():
        import time

        results = {}
        for cipher, key_len in (("chacha20-poly1305", 32), ("aes-256-gcm", 32)):
            aead = get_aead(cipher, bytes(key_len))
            start = time.perf_counter()
            sealed = aead.encrypt(b"\x01" * 12, payload)
            aead.decrypt(b"\x01" * 12, sealed)
            results[cipher] = time.perf_counter() - start
        return results

    results = run_once(benchmark, scenario)
    print_table(
        "Ablation (e) — record cipher, 256 KiB seal+open (real wall time)",
        ("cipher", "time"),
        [(k, fmt_s(v)) for k, v in results.items()],
        notes=["vectorized ChaCha20 is the practical bulk cipher in pure "
               "Python; AES-GCM is kept for small control messages"],
    )
    record(benchmark, **{k.replace("-", "_"): v for k, v in results.items()})
    assert results["chacha20-poly1305"] < results["aes-256-gcm"]
