"""Shared benchmark harness: table printing and paper reference values.

Every benchmark regenerates one of the paper's figures/tables as a
printed table of *simulated* latencies, and asserts its qualitative
shape (who wins, roughly by what factor, where crossovers fall).
Wall-clock timing of the simulation itself is captured by
pytest-benchmark for regression tracking, but the scientific output is
the simulated metrics recorded in ``benchmark.extra_info``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: Durable benchmark record, tracked in git so the perf trajectory of
#: the repo is visible PR over PR.
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH.json"

#: Sidecar directory for non-scalar benchmark outputs (Chrome traces,
#: profiles, Prometheus snapshots) — next to BENCH.json by design so a
#: bench run's artifacts travel with its numbers.
ARTIFACT_DIR = BENCH_JSON.parent / "bench_artifacts"

#: Reference values lifted from the paper's evaluation (§5).
PAPER = {
    "fig4_cas_total_ms": 17.0,
    "fig4_ias_total_ms": 325.0,
    "fig4_ias_verification_ms": 280.0,
    "fig4_cas_verification_ms": 1.0,
    "fig4_speedup": 19.0,
    "fig5_hw_over_sim": {"densenet": 1.39, "inception_v3": 1.14, "inception_v4": 1.12},
    "fig5_hw_vs_graphene": {"densenet": 1.03, "inception_v4": 1.4},
    "fig6_fs_shield_overhead_sim": 0.0012,
    "fig6_fs_shield_overhead_hw": 0.009,
    "fig7_hw_1node_800imgs_s": 1180.0,
    "fig7_hw_3nodes_800imgs_s": 403.0,
    "fig8_hw_over_native": 14.0,
    "fig8_speedup_2_workers": 1.96,
    "fig8_speedup_3_workers": 2.57,
    "tf_vs_lite_ratio": 71.0,
    "tf_lite_hw_inception_v3_s": 0.697,
    "tf_full_hw_inception_v3_s": 49.782,
}


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Optional[List[str]] = None,
) -> None:
    """Print an aligned results table (the figure's rows)."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    for note in notes or []:
        print(f"  note: {note}")


def fmt_s(seconds: float) -> str:
    return f"{seconds:.3f}s"


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms"


def record(benchmark, **metrics: object) -> None:
    """Attach simulated metrics to the pytest-benchmark record."""
    if benchmark is not None:
        for key, value in metrics.items():
            benchmark.extra_info[key] = value


def save_bench(section: str, metrics: Dict[str, object]) -> None:
    """Merge ``metrics`` into ``BENCH.json`` under ``section``.

    Existing sections are replaced wholesale (a rerun supersedes its old
    numbers); other sections are left untouched.
    """
    data: Dict[str, object] = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (OSError, ValueError):
            data = {}
    data[section] = metrics
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def save_artifact(name: str, text: str) -> Path:
    """Write a telemetry artifact next to ``BENCH.json``; returns its path.

    ``name`` must be a bare filename (e.g. ``training.trace.json``) —
    artifacts never escape the sidecar directory.
    """
    if "/" in name or "\\" in name or name.startswith("."):
        raise ValueError(f"artifact name must be a bare filename: {name!r}")
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / name
    path.write_text(text)
    return path


def run_once(benchmark, fn):
    """Run a simulation once under pytest-benchmark (no repetition —
    the simulation is deterministic; repeating it only wastes time)."""
    if benchmark is None:
        return fn()
    return benchmark.pedantic(fn, rounds=1, iterations=1)
