"""Benchmark fixtures: make the local harness importable.

Run with ``pytest benchmarks/ --benchmark-only -s`` — the ``-s`` lets
each benchmark's figure table print to the terminal.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
