"""Elastic scaling with per-container attestation (challenge ❹, §5.2).

The paper's motivation for CAS: elastic clouds spawn containers on
demand, and each new container must be attested + provisioned before it
can serve.  With IAS each spawn pays WAN round trips; with CAS the whole
join is local.  This benchmark scales a service 1→8 replicas under both
attestation regimes and reports the attestation cost added per spawn.
"""

import pytest

from harness import fmt_ms, fmt_s, print_table, record, run_once

from repro.cluster import ContainerSpec
from repro.core.inference import service_runtime_config
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.ias import IntelAttestationService
from repro.enclave.sgx import SgxMode

REPLICAS = 8


def _scale_with(attestation: str):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=95))
    config = service_runtime_config("elastic-svc", SgxMode.HW, fs_shield=False)
    platform.register_session("elastic", [config])
    attestation_time = []

    def hook(container):
        node = container.node
        before = node.clock.now
        if attestation == "cas":
            platform.provision_runtime(container.runtime, node, "elastic")
        else:
            quote = container.runtime.attest(b"\x01" * 32)
            # The IAS exchange is driven from (and charged to) the node
            # spawning the container.
            IntelAttestationService(
                platform.provisioning.public_key(), CM, node.clock
            ).verify_quote(quote)
            # Key transfer from the (remote) user after the IAS verdict.
            node.clock.advance(0.25 * CM.wan_rtt + CM.secret_provisioning_cost)
        attestation_time.append(node.clock.now - before)

    platform.orchestrator.on_start.append(hook)
    spec = ContainerSpec("elastic", lambda node, index: config)
    start = platform.time
    platform.orchestrator.scale_to(spec, REPLICAS)
    makespan = platform.time - start
    return makespan, attestation_time


def test_elastic_attestation(benchmark):
    def scenario():
        return _scale_with("cas"), _scale_with("ias")

    (cas_span, cas_times), (ias_span, ias_times) = run_once(benchmark, scenario)

    cas_mean = sum(cas_times) / len(cas_times)
    ias_mean = sum(ias_times) / len(ias_times)
    print_table(
        f"Elastic scale-out to {REPLICAS} replicas: attestation regimes",
        ("regime", "per-spawn attestation", "total scale-out"),
        [
            ("secureTF CAS", fmt_ms(cas_mean), fmt_s(cas_span)),
            ("traditional IAS", fmt_ms(ias_mean), fmt_s(ias_span)),
        ],
        notes=[
            f"attestation speedup {ias_mean / cas_mean:.1f}x per spawned container",
            "container start itself costs "
            f"{fmt_ms(CM.container_start_cost)} either way",
        ],
    )
    record(
        benchmark,
        cas_per_spawn_ms=cas_mean * 1e3,
        ias_per_spawn_ms=ias_mean * 1e3,
    )

    assert len(cas_times) == REPLICAS
    assert cas_mean < 0.05          # local: tens of ms
    assert ias_mean > 0.25          # WAN-bound: hundreds of ms
    assert ias_span > cas_span
