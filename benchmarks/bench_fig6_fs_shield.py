"""Figure 6: effect of the file-system shield on classification latency.

Paper (§5.3 #2): the shield encrypts/authenticates the model and input
at AES-NI rates (~4 GB/s), so it adds ~0.12 % (SIM) / ~0.9 % (HW) —
the cost lands at startup (decrypting the model once), amortized over
the run.
"""

import pytest

from harness import PAPER, fmt_s, print_table, record, run_once

from repro.core.inference import (
    InferenceService,
    deploy_encrypted_model,
    service_runtime_config,
)
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.data import synthetic_cifar10
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model
from repro.runtime.vfs import VirtualFileSystem

MODELS = ("densenet", "inception_v3", "inception_v4")
RUNS = 12


def _measure(model, image, mode, fs_shield):
    """Per-run latency as the paper measures it: every run is a fresh
    ``label_image`` process, so the model is (shield-)loaded each time.
    The model-load cost is measured separately from the container/
    attestation startup (identical in both arms) and added per run."""
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=60))
    configs = [
        service_runtime_config("svc", m, fs_shield=shield)
        for m in (SgxMode.HW, SgxMode.SIM)
        for shield in (True, False)
    ]
    platform.register_session("fig6", configs, accept_debug=True)
    node = platform.node(1)
    if fs_shield:
        path = deploy_encrypted_model(platform, "fig6", node, model)
    else:
        path = "/secure/models/plain.tflite"
        node.vfs.write(path, model.to_bytes(), declared_size=model.size_bytes)
    service = InferenceService(
        platform, "fig6", node, path, mode=mode, name="svc", fs_shield=fs_shield
    )
    service.start()

    # Model-load time alone (what the shield actually adds per process).
    before = node.clock.now
    service.runtime.read_protected(path)
    model_load = node.clock.now - before

    service.classify(image)
    before = node.clock.now
    for _ in range(RUNS):
        service.classify(image)
    steady = (node.clock.now - before) / RUNS
    return steady + model_load


def _collect():
    _, test = synthetic_cifar10(n_train=5, n_test=5, seed=8)
    image = test.images[0]
    results = {}
    for name in MODELS:
        model = pretrained_lite_model(name, seed=0)
        results[name] = {
            mode.value: {
                "off": _measure(model, image, mode, fs_shield=False),
                "on": _measure(model, image, mode, fs_shield=True),
            }
            for mode in (SgxMode.SIM, SgxMode.HW)
        }
    return results


def test_fig6_fs_shield_effect(benchmark):
    results = run_once(benchmark, _collect)

    rows = []
    overheads = {}
    for name in MODELS:
        for mode in ("sim", "hw"):
            off = results[name][mode]["off"]
            on = results[name][mode]["on"]
            overhead = on / off - 1.0
            overheads[(name, mode)] = overhead
            rows.append(
                (name, mode, fmt_s(off), fmt_s(on), f"{overhead * 100:+.2f}%")
            )
    print_table(
        "Fig. 6 — file-system shield effect on classification latency",
        ("model", "mode", "shield off", "shield on", "overhead"),
        rows,
        notes=[
            f"paper: +{PAPER['fig6_fs_shield_overhead_sim'] * 100:.2f}% (SIM), "
            f"+{PAPER['fig6_fs_shield_overhead_hw'] * 100:.1f}% (HW)",
            "shield crypto runs at 4 GB/s and lands at model load only",
        ],
    )
    record(
        benchmark,
        **{f"{n}_{m}_overhead": overheads[(n, m)] for n in MODELS for m in ("sim", "hw")},
    )

    # Shape: the shield is near-free — low single-digit percent at most,
    # same order as the paper's +0.12% (SIM) / +0.9% (HW).  (Relative
    # overhead is slightly *lower* in HW here because the HW baseline is
    # larger while the AES-NI shield cost is mode-independent.)
    for (name, mode), overhead in overheads.items():
        assert -0.005 < overhead < 0.05, (name, mode, overhead)
