"""Figure 4: attestation + key-transfer latency, CAS vs IAS.

Paper: CAS verifies quotes locally (<1 ms) and completes attestation +
provisioning in ~17 ms; the traditional IAS flow needs WAN round trips
(~280 ms verification, ~325 ms end-to-end) — a ~19× gap.
"""

import pytest

from harness import PAPER, fmt_ms, print_table, record, run_once

from repro._sim import EventTrace
from repro.cas import Policy
from repro.cas.client import RemoteCasClient, serve_cas
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.ias import IntelAttestationService
from repro.enclave.sgx import SgxMode
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.tensor.engine import LITE_PROFILE


def _make_runtime(node):
    return SconeRuntime(
        RuntimeConfig(
            name="worker",
            mode=SgxMode.HW,
            binary_size=LITE_PROFILE.binary_size,
            fs_shield_enabled=False,
        ),
        node.vfs,
        CM,
        node.clock,
        cpu=node.cpu,
        rng=node.rng.child("bench-worker"),
    )


def _measure_cas_flow():
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=40))
    node = platform.node(1)
    runtime = _make_runtime(node)
    platform.cas.register_policy(Policy("bench", [runtime.measurement]))
    trace = EventTrace(node.clock)
    cas_trace = EventTrace(platform.cas.node.clock)
    platform.cas._trace = cas_trace
    client = RemoteCasClient(platform.network, node, "cas", trace=trace)
    before = node.clock.now
    client.provision(runtime, "bench")
    total = node.clock.now - before
    breakdown = {**trace.breakdown(), **cas_trace.breakdown()}
    return total, breakdown


def _measure_ias_flow():
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=41))
    node = platform.node(1)
    runtime = _make_runtime(node)
    ias = IntelAttestationService(
        platform.provisioning.public_key(), CM, node.clock,
        trace=(trace := EventTrace(node.clock)),
    )
    before = node.clock.now
    with trace.span("quote.generation"):
        quote = runtime.attest(b"\x01" * 32)
    ias.verify_quote(quote)
    # After IAS verification the *user* transfers keys to the enclave
    # over their own connection (one WAN round trip + provisioning work).
    with trace.span("key.transfer"):
        node.clock.advance(0.25 * CM.wan_rtt + CM.secret_provisioning_cost)
    total = node.clock.now - before
    return total, trace.breakdown()


def test_fig4_attestation_latency(benchmark):
    def scenario():
        return _measure_cas_flow(), _measure_ias_flow()

    (cas_total, cas_parts), (ias_total, ias_parts) = run_once(benchmark, scenario)

    rows = []
    for phase in ("quote.generation", "cas.verification", "ias.verification", "key.transfer", "cas.provisioning"):
        rows.append(
            (
                phase,
                fmt_ms(cas_parts.get(phase, 0.0)),
                fmt_ms(ias_parts.get(phase, 0.0)),
            )
        )
    speedup = ias_total / cas_total
    rows.append(("TOTAL", fmt_ms(cas_total), fmt_ms(ias_total)))
    print_table(
        "Fig. 4 — attestation & key transfer: CAS vs IAS",
        ("phase", "secureTF CAS", "traditional IAS"),
        rows,
        notes=[
            f"speedup {speedup:.1f}x (paper: ~{PAPER['fig4_speedup']:.0f}x)",
            f"paper totals: CAS ~{PAPER['fig4_cas_total_ms']:.0f}ms, "
            f"IAS ~{PAPER['fig4_ias_total_ms']:.0f}ms",
        ],
    )
    record(
        benchmark,
        cas_total_ms=cas_total * 1e3,
        ias_total_ms=ias_total * 1e3,
        speedup=speedup,
    )

    # Shape assertions (the paper's claims).
    assert cas_parts["cas.verification"] < 1.5e-3  # <1 ms local verify
    assert ias_parts["ias.verification"] > 0.25    # WAN-bound verify
    assert 8 < speedup < 40                        # ~19x in the paper
    assert cas_total < 0.05
