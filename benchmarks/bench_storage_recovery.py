"""Price sheet of the crash-consistent storage plane.

Measures what the robustness guarantees cost and how fast the machinery
runs, in simulated time: the commit-protocol overhead of journaled
(shadow-chunk + manifest-flip) writes over inline envelopes, mount-time
recovery latency across an exhaustive crash-point sweep, self-healing
read throughput while re-replicating damaged chunks, and the
client-observed outage of a CAS failover.
"""

import pytest

from harness import fmt_ms, print_table, record, run_once, save_bench

from repro._sim import SimClock
from repro.cas.client import RemoteCasClient
from repro.cluster.retry import RetryPolicy
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import RpcTransportError, StorageCrash
from repro.runtime.fs_shield import (
    CHUNK_MARKER,
    FileSystemShield,
    LocalFreshnessTracker,
    PathRule,
    ShieldPolicy,
)
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.runtime.storage_faults import CrashPoint, StorageFaultPlan
from repro.runtime.syscall import SyscallInterface
from repro.runtime.vfs import VirtualFileSystem
from repro.tensor.engine import LITE_PROFILE

RULES = [PathRule("/s/", ShieldPolicy.ENCRYPT)]
PATH = "/s/state"
PAYLOAD = bytes(range(256)) * 4096  # 1 MiB
CHUNK_SIZE = 4096
MB = len(PAYLOAD) / 1e6


def mount(vfs, tracker, journal, replicas=2):
    clock = SimClock()
    syscalls = SyscallInterface(vfs, CM, clock, mode=SgxMode.NATIVE)
    shield = FileSystemShield(
        syscalls,
        bytes(range(32)),
        RULES,
        CM,
        clock,
        chunk_size=CHUNK_SIZE,
        freshness=tracker,
        journal=journal,
        replicas=replicas if journal else 1,
    )
    return shield, clock


def _write_mb_s(journal):
    shield, clock = mount(VirtualFileSystem(), LocalFreshnessTracker(), journal)
    start = clock.now
    shield.write_file(PATH, PAYLOAD)
    return MB / (clock.now - start)


#: Sweep payload: 8 chunks keeps the boundary count (and the wall-clock
#: of ~70 full commit+recover cycles) small while still spanning every
#: phase of the protocol.
SWEEP_PAYLOAD = bytes(range(256)) * 128  # 32 KiB -> 8 chunks


def _crash_sweep():
    """Crash one commit at every syscall boundary; return the mean
    mount-time recovery latency and the boundary count."""
    old, new = SWEEP_PAYLOAD, SWEEP_PAYLOAD[::-1]
    probe_vfs = VirtualFileSystem()
    probe_tracker = LocalFreshnessTracker()
    shield, _ = mount(probe_vfs, probe_tracker, journal=True)
    shield.write_file(PATH, old)
    plan = StorageFaultPlan(0).attach(probe_vfs)
    shield.write_file(PATH, new)
    n_ops = plan.op_index

    total = 0.0
    boundaries = 0
    for after in (False, True):
        for at_op in range(n_ops):
            vfs = VirtualFileSystem()
            tracker = LocalFreshnessTracker()
            victim, _ = mount(vfs, tracker, journal=True)
            victim.write_file(PATH, old)
            StorageFaultPlan(
                0, crash_points=[CrashPoint(at_op=at_op, after=after)]
            ).attach(vfs)
            try:
                victim.write_file(PATH, new)
            except StorageCrash:
                pass
            vfs.faults = None
            remounted, clock = mount(vfs, tracker, journal=True)
            start = clock.now
            remounted.recover()
            total += clock.now - start
            boundaries += 1
            assert remounted.read_file(PATH) in (old, new)
    return total / boundaries, boundaries


def _heal_read():
    """Damage one replica of every chunk; a cold read repairs them all."""
    vfs = VirtualFileSystem()
    tracker = LocalFreshnessTracker()
    shield, _ = mount(vfs, tracker, journal=True)
    shield.write_file(PATH, PAYLOAD)

    for path in [p for p in vfs.listdir() if CHUNK_MARKER in p and p.endswith(".1")]:
        vfs.tamper(path, b"rotted")

    reader, clock = mount(vfs, tracker, journal=True)
    start = clock.now
    assert reader.read_file(PATH) == PAYLOAD
    elapsed = clock.now - start
    return MB / elapsed, reader.stats.chunks_repaired


def _cas_failover_outage():
    """Simulated time a client loses to a CAS primary death: the failed
    call, the watchdog pass, and the successful retry on the standby."""
    retry = RetryPolicy(max_attempts=6, base_delay=0.02)
    platform = SecureTFPlatform(
        PlatformConfig(n_nodes=3, seed=5, cas_backup_node=1, cas_retry=retry)
    )
    node = platform.nodes[2]
    runtime = SconeRuntime(
        RuntimeConfig(
            name="bench-worker",
            mode=SgxMode.HW,
            binary_size=LITE_PROFILE.binary_size,
            fs_shield_enabled=False,
        ),
        node.vfs,
        CM,
        node.clock,
        cpu=node.cpu,
        rng=node.rng.child("bench-worker"),
    )
    platform.register_session("bench", [runtime.config])
    client = RemoteCasClient(platform.network, node, "cas", retry=retry)
    client.provision(runtime, "bench")  # warm path, pre-failure

    platform.cas_pair.fail_primary()
    start = node.clock.now
    try:
        RemoteCasClient(platform.network, node, "cas").provision(runtime, "bench")
    except RpcTransportError:
        pass
    platform.orchestrator.supervise_services()
    client.provision(runtime, "bench")
    return (node.clock.now - start) * 1e3


def test_storage_recovery_price_sheet(benchmark):
    def run():
        inline_mb_s = _write_mb_s(journal=False)
        journal_mb_s = _write_mb_s(journal=True)
        recovery_s, boundaries = _crash_sweep()
        heal_mb_s, repaired = _heal_read()
        outage_ms = _cas_failover_outage()
        return {
            "inline_write_mb_s": round(inline_mb_s, 2),
            "journal_write_mb_s": round(journal_mb_s, 2),
            "journal_overhead_pct": round(
                (inline_mb_s / journal_mb_s - 1.0) * 100, 1
            ),
            "crash_boundaries_swept": boundaries,
            "recovery_scan_ms_mean": round(recovery_s * 1e3, 3),
            "heal_read_mb_s": round(heal_mb_s, 2),
            "chunks_repaired": repaired,
            "cas_failover_outage_ms": round(outage_ms, 2),
        }

    metrics = run_once(benchmark, run)
    print_table(
        "storage plane: what crash consistency costs (simulated)",
        ["metric", "value"],
        [[k, v] for k, v in metrics.items()],
        notes=[
            "journal = shadow chunks x2 replicas + manifest flip; inline = single envelope",
            "recovery mean over an exhaustive crash-point sweep (both polarities)",
            "failover outage = failed call + watchdog promote + retried success",
        ],
    )
    # Qualitative shape: journaling costs something but not an order of
    # magnitude; recovery is sub-second; healing reads stay usable.
    assert metrics["journal_write_mb_s"] > 0.2 * metrics["inline_write_mb_s"]
    assert metrics["recovery_scan_ms_mean"] < 1000.0
    assert metrics["chunks_repaired"] == -(-len(PAYLOAD) // CHUNK_SIZE)
    record(benchmark, **metrics)
    save_bench("storage_recovery", metrics)
