"""Fault-recovery overhead of the hardened distributed plane.

Trains the same Fig. 8-style job three ways — fault-free, under
message-level chaos (loss + latency + duplication), and under chaos plus
container crashes (one worker, one PS) — and reports goodput, the
makespan overhead the faults cost, and how much retry/recovery machinery
it took to absorb them.  All three runs converge to the same weights;
the benchmark measures the *price* of that guarantee.
"""

import numpy as np
import pytest

from harness import fmt_s, print_table, record, run_once, save_bench

from repro.cluster.faults import CrashFault, FaultPlan, FaultSpec
from repro.cluster.retry import RetryPolicy
from repro.core.monitoring import collect_metrics
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.core.training import TrainingJob, TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode

STEPS = 16  # 8 rounds of 2 workers
CHAOS_SEED = 71


def _chaos_plan(session: str, crashes: bool) -> FaultPlan:
    return FaultPlan(
        CHAOS_SEED,
        FaultSpec(
            loss=0.05,
            delay=0.1,
            delay_seconds=0.02,
            duplication=0.05,
            targets=frozenset({f"{session}-ps"}),
        ),
        crashes=[
            CrashFault("worker-1", at_round=2),
            CrashFault("ps", at_round=5),
        ]
        if crashes
        else [],
    )


def _run(session: str, batches, chaos: bool = False, crashes: bool = False):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=70))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session=session,
            n_workers=2,
            mode=SgxMode.SIM,
            network_shield=True,
            learning_rate=0.05,
            retry_policy=RetryPolicy(max_attempts=6, base_delay=0.02),
        ),
    )
    job.start()
    plan = None
    if chaos:
        plan = _chaos_plan(session, crashes)
        job.attach_chaos(plan)
    start = platform.time
    job.train(batches, steps=STEPS)
    makespan = platform.time - start
    metrics = collect_metrics(platform)
    return {
        "makespan": makespan,
        "goodput": STEPS / makespan,
        "retries": metrics.recovery.retries,
        "reconnects": metrics.recovery.reconnects,
        "dedup_hits": metrics.recovery.dedup_hits,
        "restarts": metrics.recovery.restarts,
        "backoff_time": metrics.recovery.backoff_time,
        "weights": job.weights(),
        "updates": job.ps.updates_applied,
    }


def test_fault_recovery(benchmark):
    train, _ = synthetic_mnist(n_train=800, n_test=10, seed=70)
    batches = list(train.batches(50))

    def scenario():
        clean = _run("bench-clean", batches)
        chaos = _run("bench-chaos", batches, chaos=True)
        crash = _run("bench-crash", batches, chaos=True, crashes=True)
        return clean, chaos, crash

    clean, chaos, crash = run_once(benchmark, scenario)

    # Correctness invariants the benchmark rides on: every scenario
    # applies each gradient exactly once and lands on the same weights.
    for run in (chaos, crash):
        assert run["updates"] == STEPS
        for name, value in clean["weights"].items():
            np.testing.assert_array_equal(value, run["weights"][name])

    def row(label, run):
        return (
            label,
            fmt_s(run["makespan"]),
            f"{run['goodput']:.1f}",
            f"{run['makespan'] / clean['makespan'] - 1.0:+.1%}",
            str(run["retries"]),
            str(run["restarts"]),
        )

    print_table(
        f"Fault recovery: {STEPS} steps, 2 workers, secure channels",
        ("scenario", "makespan", "steps/s", "overhead", "retries", "restarts"),
        [
            row("fault-free", clean),
            row("chaos (loss+delay+dup)", chaos),
            row("chaos + 2 crashes", crash),
        ],
        notes=[
            f"chaos: 5% loss, 10% latency spikes, 5% duplication on PS traffic "
            f"(seed {CHAOS_SEED})",
            f"crash run: {crash['reconnects']} secure-session reconnects, "
            f"{crash['dedup_hits']} dedup hits, "
            f"{fmt_s(crash['backoff_time'])} spent in backoff",
            "identical final weights in all three scenarios",
        ],
    )
    record(
        benchmark,
        clean_goodput=clean["goodput"],
        chaos_goodput=chaos["goodput"],
        crash_goodput=crash["goodput"],
    )
    save_bench(
        "fault_recovery",
        {
            "steps": STEPS,
            "clean_makespan_s": round(clean["makespan"], 4),
            "chaos_makespan_s": round(chaos["makespan"], 4),
            "crash_makespan_s": round(crash["makespan"], 4),
            "clean_goodput_steps_per_s": round(clean["goodput"], 2),
            "chaos_goodput_steps_per_s": round(chaos["goodput"], 2),
            "crash_goodput_steps_per_s": round(crash["goodput"], 2),
            "chaos_overhead_pct": round(
                100.0 * (chaos["makespan"] / clean["makespan"] - 1.0), 1
            ),
            "crash_overhead_pct": round(
                100.0 * (crash["makespan"] / clean["makespan"] - 1.0), 1
            ),
            "crash_retries": crash["retries"],
            "crash_reconnects": crash["reconnects"],
            "crash_dedup_hits": crash["dedup_hits"],
            "crash_restarts": crash["restarts"],
            "weights_identical": True,
        },
    )
