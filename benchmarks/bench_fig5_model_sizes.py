"""Figure 5: classification latency vs model size, five systems.

Paper setup (§5.3 #1): TensorFlow Lite ``label_image``, single thread,
one CIFAR-10 image, averaged over repeated runs; models DenseNet
(42 MB), Inception-v3 (91 MB), Inception-v4 (163 MB); systems native
glibc, native musl, secureTF SIM, secureTF HW, Graphene-SGX.

Key shapes to reproduce: HW is modestly slower than SIM; SIM tracks the
natives; Graphene matches secureTF at 42 MB (everything EPC-resident)
and falls behind as the model pushes the combined working set past the
EPC (paper: 1.03× → ~1.4×).
"""

import pytest

from harness import PAPER, fmt_s, print_table, record, run_once

from repro.baselines import make_graphene_runner, make_native_runner
from repro.core.inference import (
    InferenceService,
    deploy_encrypted_model,
    service_runtime_config,
)
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.data import synthetic_cifar10
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model
from repro.runtime.libc import GLIBC, MUSL

MODELS = ("densenet", "inception_v3", "inception_v4")
WARMUP = 3
RUNS = 12  # the paper averages 1000 runs; the simulation is deterministic


def _measure_secure_tf(model, image, mode):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=50))
    platform.register_session(
        "fig5",
        [service_runtime_config("svc", m) for m in (SgxMode.HW, SgxMode.SIM)],
        accept_debug=True,
    )
    path = deploy_encrypted_model(platform, "fig5", platform.node(1), model)
    service = InferenceService(
        platform, "fig5", platform.node(1), path, mode=mode, name="svc"
    )
    service.start()
    for _ in range(WARMUP):
        service.classify(image)
    before = service.node.clock.now
    for _ in range(RUNS):
        service.classify(image)
    return (service.node.clock.now - before) / RUNS


def _measure_baseline(model, image, make_runner, **kwargs):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=51))
    runner = make_runner(platform.node(1), model, **kwargs)
    for _ in range(WARMUP):
        runner.classify(image)
    return runner.measure_latency(image[None], RUNS)


def _collect():
    _, test = synthetic_cifar10(n_train=5, n_test=5, seed=7)
    image = test.images[0]
    results = {}
    for name in MODELS:
        model = pretrained_lite_model(name, seed=0)
        results[name] = {
            "native-glibc": _measure_baseline(
                model, image, make_native_runner, libc=GLIBC
            ),
            "native-musl": _measure_baseline(
                model, image, make_native_runner, libc=MUSL
            ),
            "secureTF-SIM": _measure_secure_tf(model, image, SgxMode.SIM),
            "secureTF-HW": _measure_secure_tf(model, image, SgxMode.HW),
            "graphene": _measure_baseline(model, image, make_graphene_runner),
        }
    return results


def test_fig5_latency_vs_model_size(benchmark):
    results = run_once(benchmark, _collect)

    systems = ["native-glibc", "native-musl", "secureTF-SIM", "secureTF-HW", "graphene"]
    rows = [
        [name] + [fmt_s(results[name][s]) for s in systems] for name in MODELS
    ]
    notes = []
    for name in MODELS:
        r = results[name]
        notes.append(
            f"{name}: HW/SIM={r['secureTF-HW'] / r['secureTF-SIM']:.2f} "
            f"(paper {PAPER['fig5_hw_over_sim'][name]:.2f}), "
            f"graphene/HW={r['graphene'] / r['secureTF-HW']:.2f}"
        )
    print_table(
        "Fig. 5 — classification latency vs model size (42/91/163 MB)",
        ["model"] + systems,
        rows,
        notes=notes,
    )
    for name in MODELS:
        record(benchmark, **{f"{name}_{k}": v for k, v in results[name].items()})

    for name in MODELS:
        r = results[name]
        # SIM tracks the natives within a few percent.
        assert r["secureTF-SIM"] < r["native-glibc"] * 1.10
        # HW costs more than SIM, but never an order of magnitude (Lite).
        assert 1.0 < r["secureTF-HW"] / r["secureTF-SIM"] < 1.6
        # glibc edges out musl (paper §5.3 #1).
        assert r["native-glibc"] <= r["native-musl"]
        # Graphene never beats secureTF HW.
        assert r["graphene"] >= r["secureTF-HW"] * 0.98

    # The Graphene gap grows once the model outgrows the EPC.
    small_gap = results["densenet"]["graphene"] / results["densenet"]["secureTF-HW"]
    big_gap = max(
        results["inception_v3"]["graphene"] / results["inception_v3"]["secureTF-HW"],
        results["inception_v4"]["graphene"] / results["inception_v4"]["secureTF-HW"],
    )
    assert small_gap < 1.1  # ~1.03x in the paper
    assert big_gap > 1.1    # toward ~1.4x in the paper

    # Latency grows with model size on every system.
    for system in systems:
        sizes = [results[name][system] for name in MODELS]
        assert sizes == sorted(sizes)
