"""Figure 8: distributed MNIST training latency across modes and workers.

Paper (§5.4): batch size 100, learning rate 0.0005, up to 3 workers.
Full-featured secureTF (HW + shields) is ~14× slower than native
TensorFlow (EPC-bound training); scaling with workers is near-linear
(1.96× at 2, 2.57× at 3).  The paper's SIM-mode gap (2.3×/6×) was a
SCONE scheduler bug, fixed upstream per §5.4 — this reproduction models
the fixed behaviour, so SIM tracks native.
"""

import pytest

from harness import PAPER, fmt_s, print_table, record, run_once

from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.core.training import TrainingJob, TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode

BATCHES = 12
BATCH_SIZE = 100
LEARNING_RATE = 0.0005  # the paper's setting


def _run(mode, network_shield, workers, batches):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=80))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session="fig8",
            n_workers=workers,
            mode=mode,
            network_shield=network_shield,
            learning_rate=LEARNING_RATE,
        ),
    )
    job.start()
    result = job.train(batches)
    job.stop()
    return result.wall_clock


def _collect():
    train, _ = synthetic_mnist(n_train=BATCHES * BATCH_SIZE, n_test=10, seed=10)
    batches = list(train.batches(BATCH_SIZE))
    modes = {
        "native": lambda w: _run(SgxMode.NATIVE, False, w, batches),
        "sim": lambda w: _run(SgxMode.SIM, False, w, batches),
        "sim+netshield": lambda w: _run(SgxMode.SIM, True, w, batches),
        "hw (full secureTF)": lambda w: _run(SgxMode.HW, True, w, batches),
    }
    return {
        name: {workers: fn(workers) for workers in (1, 2, 3)}
        for name, fn in modes.items()
    }


def test_fig8_distributed_training(benchmark):
    results = run_once(benchmark, _collect)

    rows = [
        [name] + [fmt_s(results[name][w]) for w in (1, 2, 3)]
        for name in results
    ]
    hw = results["hw (full secureTF)"]
    native = results["native"]
    ratio = hw[1] / native[1]
    speedup2 = hw[1] / hw[2]
    speedup3 = hw[1] / hw[3]
    print_table(
        f"Fig. 8 — distributed MNIST training ({BATCHES} batches of "
        f"{BATCH_SIZE}, lr {LEARNING_RATE})",
        ("system", "1 worker", "2 workers", "3 workers"),
        rows,
        notes=[
            f"HW/native = {ratio:.1f}x (paper: ~{PAPER['fig8_hw_over_native']:.0f}x)",
            f"HW speedups: {speedup2:.2f}x @2 workers "
            f"(paper {PAPER['fig8_speedup_2_workers']:.2f}), "
            f"{speedup3:.2f}x @3 (paper {PAPER['fig8_speedup_3_workers']:.2f})",
            "paper's SIM slowdowns (2.3x/6x) were a since-fixed SCONE "
            "scheduler bug (§5.4); this models the fixed runtime",
        ],
    )
    record(
        benchmark,
        hw_over_native=ratio,
        speedup_2=speedup2,
        speedup_3=speedup3,
    )

    # Shapes from the paper.
    assert 8 < ratio < 25                  # ~14x
    assert 1.7 < speedup2 < 2.2            # ~1.96x
    assert 2.3 < speedup3 < 3.2            # ~2.57x
    # The network shield costs something, but far less than SGX does.
    assert (
        results["sim"][1]
        < results["sim+netshield"][1]
        < results["hw (full secureTF)"][1]
    )
    # Every mode benefits from more workers.
    for name in results:
        assert results[name][1] > results[name][2] > results[name][3]
