"""§7.1 projection: what larger (Ice-Lake-class) EPCs buy.

The paper's second mitigation for EPC-bound workloads is simply Intel's
next hardware generation with much larger EPCs.  This benchmark sweeps
the simulated EPC capacity for the two workloads the paper says are
EPC-bound — full-TensorFlow inference (§5.3 #4) and HW-mode training
(Fig. 8) — showing the overhead collapse once the working set fits.
"""

import pytest

from harness import fmt_s, print_table, record, run_once

from repro.core.inference import (
    InferenceService,
    deploy_encrypted_model,
    service_runtime_config,
)
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.core.training import TrainingJob, TrainingJobConfig
from repro.data import synthetic_cifar10, synthetic_mnist
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model
from repro.tensor.engine import FULL_TF_PROFILE

MiB = 1024 * 1024
EPC_SIZES = (int(93.5 * MiB), 256 * MiB, 512 * MiB)
LABELS = {int(93.5 * MiB): "94 MiB (SGXv1)", 256 * MiB: "256 MiB", 512 * MiB: "512 MiB (Ice Lake-class)"}


def _platform(epc_bytes, seed):
    return SecureTFPlatform(
        PlatformConfig(
            n_nodes=3,
            seed=seed,
            cost_model=CM.with_overrides(epc_capacity_bytes=epc_bytes),
        )
    )


def _inference_latency(epc_bytes):
    platform = _platform(epc_bytes, seed=100)
    model = pretrained_lite_model("inception_v3", seed=0)
    platform.register_session(
        "ice", [service_runtime_config("svc", SgxMode.HW, engine=FULL_TF_PROFILE)]
    )
    path = deploy_encrypted_model(platform, "ice", platform.node(1), model)
    _, test = synthetic_cifar10(n_train=5, n_test=5, seed=12)
    service = InferenceService(
        platform, "ice", platform.node(1), path, mode=SgxMode.HW,
        name="svc", engine=FULL_TF_PROFILE,
    )
    service.start()
    service.classify(test.images[0])
    before = service.node.clock.now
    for _ in range(4):
        service.classify(test.images[0])
    return (service.node.clock.now - before) / 4


def _training_time(epc_bytes, batches):
    platform = _platform(epc_bytes, seed=101)
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session="ice-train", mode=SgxMode.HW, network_shield=True,
            learning_rate=0.0005,
        ),
    )
    job.start()
    result = job.train(batches)
    job.stop()
    return result.wall_clock


def _collect():
    train, _ = synthetic_mnist(n_train=600, n_test=10, seed=13)
    batches = list(train.batches(100))
    return {
        epc: {
            "full_tf_inference": _inference_latency(epc),
            "hw_training": _training_time(epc, batches),
        }
        for epc in EPC_SIZES
    }


def test_icelake_epc_projection(benchmark):
    results = run_once(benchmark, _collect)

    rows = [
        (
            LABELS[epc],
            fmt_s(results[epc]["full_tf_inference"]),
            fmt_s(results[epc]["hw_training"]),
        )
        for epc in EPC_SIZES
    ]
    base = EPC_SIZES[0]
    big = EPC_SIZES[-1]
    inference_gain = (
        results[base]["full_tf_inference"] / results[big]["full_tf_inference"]
    )
    training_gain = results[base]["hw_training"] / results[big]["hw_training"]
    print_table(
        "§7.1 — EPC-size projection (Ice Lake): EPC-bound workloads",
        ("EPC", "full-TF inference (v3)", "HW training (6 batches)"),
        rows,
        notes=[
            f"94 MiB → 512 MiB: inference {inference_gain:.1f}x faster, "
            f"training {training_gain:.1f}x faster",
            "paper §7.1: larger EPCs are the hardware fix for "
            "EPC-paging-bound training",
        ],
    )
    record(benchmark, inference_gain=inference_gain, training_gain=training_gain)

    # Monotone improvement, and most of the paging tax disappears.
    for metric in ("full_tf_inference", "hw_training"):
        series = [results[epc][metric] for epc in EPC_SIZES]
        assert series == sorted(series, reverse=True)
    assert inference_gain > 3
    assert training_gain > 3
