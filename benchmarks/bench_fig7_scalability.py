"""Figure 7: scalability — scale-up (cores) and scale-out (nodes).

Paper (§5.3 #3): classifying 800 CIFAR-10 images.  Both SIM and HW
scale 1→4 cores; HW stops scaling (regresses) from 4→8 because the
extra per-thread working set pushes the enclave past the ~94 MB EPC.
Scale-out at 4 cores/node is near-linear: 1180 s on 1 node → 403 s on
3 nodes in the paper.

The simulation classifies a sample of the 800 images and scales the
makespan linearly (the simulator is deterministic; per-image latency is
constant in steady state).

Beyond the paper's 3 machines, the bench extends scale-out to fleet
sizes (64/128/256 nodes) the event-heap simulation core makes
tractable: every replica boots — container start, attestation,
provisioning, model load — as a scheduler activity via
:func:`repro.core.inference.launch_fleet`, and the extended points are
recorded to ``BENCH.json`` under ``fig7_scale_out``.
"""

import time

import pytest

from harness import PAPER, print_table, record, run_once, save_bench

from repro.core.inference import (
    InferenceService,
    deploy_encrypted_model,
    launch_fleet,
    service_runtime_config,
)
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.data import synthetic_cifar10
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model

TOTAL_IMAGES = 800
SAMPLE = 20
MODEL = "inception_v4"
#: Fleet-scale extension beyond the paper's 3 machines (PR 6).
FLEET_NODES = (64, 128, 256)
#: Steady latency is measured on this many replicas and reused for the
#: (homogeneous, identically-seeded) rest of the fleet.
LATENCY_PROBES = 3


def _service(platform, node, model, mode, threads):
    path = deploy_encrypted_model(platform, "fig7", node, model)
    service = InferenceService(
        platform, "fig7", node, path, mode=mode, name="svc", threads=threads
    )
    service.start()
    return service


def _steady_latency(service, images):
    service.classify(images[0])  # warm the EPC
    before = service.node.clock.now
    for index in range(SAMPLE):
        service.classify(images[index % len(images)])
    return (service.node.clock.now - before) / SAMPLE


def _measure_scale_up(model, images, mode, threads):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=1, seed=70))
    platform.register_session(
        "fig7",
        [service_runtime_config("svc", m) for m in (SgxMode.HW, SgxMode.SIM)],
        accept_debug=True,
    )
    service = _service(platform, platform.node(0), model, mode, threads)
    return _steady_latency(service, images) * TOTAL_IMAGES


def _measure_scale_out(model, images, n_nodes):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=71))
    platform.register_session(
        "fig7", [service_runtime_config("svc", SgxMode.HW)]
    )
    services = [
        _service(platform, platform.node(i), model, SgxMode.HW, threads=4)
        for i in range(n_nodes)
    ]
    per_image = [_steady_latency(s, images) for s in services]
    # Images are split evenly; the makespan is the slowest node's share.
    share = TOTAL_IMAGES / n_nodes
    return max(latency * share for latency in per_image)


def _measure_fleet_scale_out(model, images, n_nodes):
    """One replica per node, booted as event-heap activities.

    Every replica runs the full secure boot (attestation round-trip,
    provisioning, shielded model load); steady per-image latency is
    measured on ``LATENCY_PROBES`` replicas and the slowest probe
    stands in for the whole fleet — the replicas are near-identical
    (sub-percent spread from per-node cache microstate), which the
    spread assertion double-checks.
    """
    platform = SecureTFPlatform(PlatformConfig(n_nodes=n_nodes, seed=71))
    platform.register_session(
        "fig7", [service_runtime_config("svc", SgxMode.HW)]
    )
    services = []
    for i in range(n_nodes):
        node = platform.node(i)
        path = deploy_encrypted_model(platform, "fig7", node, model)
        services.append(
            InferenceService(
                platform,
                "fig7",
                node,
                path,
                # Every replica shares the registered "svc" runtime
                # config (the name feeds the measurement); one per node.
                mode=SgxMode.HW,
                name="svc",
                threads=4,
            )
        )
    wall_start = time.perf_counter()
    launch_fleet(platform, services, stagger=0.010)
    boot_wall = time.perf_counter() - wall_start
    boot_sim = max(s.stats.startup_latency for s in services)

    probes = [_steady_latency(s, images) for s in services[:LATENCY_PROBES]]
    assert (max(probes) - min(probes)) / min(probes) < 0.01  # near-identical
    share = TOTAL_IMAGES / n_nodes
    return {
        "makespan_s": max(probes) * share,
        "per_image_s": max(probes),
        "boot_sim_s": boot_sim,
        "boot_wall_s": boot_wall,
        "events": platform.scheduler.events_processed,
    }


def _collect():
    _, test = synthetic_cifar10(n_train=5, n_test=SAMPLE, seed=9)
    model = pretrained_lite_model(MODEL, seed=0)
    scale_up = {
        mode.value: {
            threads: _measure_scale_up(model, test.images, mode, threads)
            for threads in (1, 2, 4, 8)
        }
        for mode in (SgxMode.SIM, SgxMode.HW)
    }
    scale_out = {
        n: _measure_scale_out(model, test.images, n) for n in (1, 2, 3)
    }
    fleet = {
        n: _measure_fleet_scale_out(model, test.images, n) for n in FLEET_NODES
    }
    return scale_up, scale_out, fleet


def test_fig7_scalability(benchmark):
    scale_up, scale_out, fleet = run_once(benchmark, _collect)

    rows = [
        [mode] + [f"{scale_up[mode][t]:.0f}s" for t in (1, 2, 4, 8)]
        for mode in ("sim", "hw")
    ]
    print_table(
        f"Fig. 7a — scale-up: {TOTAL_IMAGES} images, 1 node ({MODEL})",
        ("mode", "1 core", "2 cores", "4 cores", "8 threads"),
        rows,
        notes=["paper: HW does not scale 4→8 (EPC exhausted); SIM does"],
    )
    rows = [[n, f"{scale_out[n]:.0f}s"] for n in (1, 2, 3)]
    print_table(
        f"Fig. 7b — scale-out: {TOTAL_IMAGES} images, HW, 4 cores/node",
        ("nodes", "makespan"),
        rows,
        notes=[
            f"paper: 1 node {PAPER['fig7_hw_1node_800imgs_s']:.0f}s → "
            f"3 nodes {PAPER['fig7_hw_3nodes_800imgs_s']:.0f}s"
        ],
    )
    rows = [
        [
            n,
            f"{fleet[n]['makespan_s']:.1f}s",
            f"{fleet[n]['boot_sim_s']:.2f}s",
            f"{fleet[n]['boot_wall_s']:.1f}s",
            fleet[n]["events"],
        ]
        for n in FLEET_NODES
    ]
    print_table(
        f"Fig. 7b extended — fleet scale-out: {TOTAL_IMAGES} images, HW",
        ("nodes", "makespan", "slowest boot (sim)", "boot wall", "events"),
        rows,
        notes=["every replica fully attested + provisioned via launch_fleet"],
    )
    record(
        benchmark,
        hw_4c=scale_up["hw"][4],
        hw_8c=scale_up["hw"][8],
        sim_8c=scale_up["sim"][8],
        out_1=scale_out[1],
        out_3=scale_out[3],
        out_256=fleet[256]["makespan_s"],
    )

    # Scale-up shape: both modes improve to 4 cores.
    for mode in ("sim", "hw"):
        assert scale_up[mode][1] > scale_up[mode][2] > scale_up[mode][4]
    # HW regresses (or at best stalls) from 4 to 8; SIM keeps improving.
    assert scale_up["hw"][8] >= scale_up["hw"][4] * 0.98
    assert scale_up["sim"][8] < scale_up["sim"][4]

    # Scale-out is near-linear (paper: 2.93x on 3 nodes).
    assert scale_out[1] / scale_out[3] > 2.5
    # Absolute anchor: within 2x of the paper's 1-node number.
    assert 0.5 < scale_out[1] / PAPER["fig7_hw_1node_800imgs_s"] < 2.0

    # Fleet extension: scale-out stays near-linear to 256 nodes (the
    # workload is embarrassingly parallel; per-image latency is constant).
    assert scale_out[1] / fleet[64]["makespan_s"] > 50
    assert fleet[64]["makespan_s"] / fleet[256]["makespan_s"] > 3.0
    # Staggered boots: the slowest replica's sim startup includes its
    # stagger slot but stays bounded (attestation is per-replica work).
    assert fleet[256]["boot_sim_s"] < 60.0
    save_bench(
        "fig7_scale_out",
        {
            str(n): {
                "makespan_s": round(fleet[n]["makespan_s"], 2),
                "per_image_s": round(fleet[n]["per_image_s"], 5),
                "boot_sim_s": round(fleet[n]["boot_sim_s"], 3),
                "events": fleet[n]["events"],
            }
            for n in FLEET_NODES
        },
    )
