"""Scoreboard: lifecycle transitions, deterministic least-loaded picking."""

import pytest

from repro.errors import ClusterError
from repro.serving.scoreboard import ReplicaScoreboard, ReplicaState

pytestmark = pytest.mark.serving


def board(*addresses, state=ReplicaState.HEALTHY):
    sb = ReplicaScoreboard()
    for address in addresses:
        sb.add(address, state=state)
    return sb


def test_add_tracks_transitions_and_rejects_duplicates():
    sb = ReplicaScoreboard()
    entry = sb.add("r-0", state=ReplicaState.ATTESTING)
    sb.set_state("r-0", ReplicaState.HEALTHY)
    assert entry.transitions == ["attesting", "healthy"]
    with pytest.raises(ClusterError):
        sb.add("r-0")


def test_pick_least_loaded_with_address_tiebreak():
    sb = board("r-0", "r-1", "r-2")
    sb.on_dispatch("r-0")
    # r-1 and r-2 tie on load; the address string breaks the tie.
    assert sb.pick(per_replica_limit=4).address == "r-1"
    sb.on_dispatch("r-1")
    sb.on_dispatch("r-2")
    sb.on_dispatch("r-2")
    # r-0 and r-1 now tie at one in-flight each; r-0 wins on address.
    assert sb.pick(per_replica_limit=4).address == "r-0"


def test_pick_prefers_healthy_over_degraded():
    sb = board("r-0", "r-1")
    sb.mark_degraded("r-0")
    sb.on_dispatch("r-1")
    sb.on_dispatch("r-1")
    # r-0 is lighter but degraded: the loaded healthy replica wins.
    assert sb.pick(per_replica_limit=4).address == "r-1"


def test_per_replica_limit_bounds_the_queue():
    sb = board("r-0")
    sb.on_dispatch("r-0")
    sb.on_dispatch("r-0")
    assert sb.pick(per_replica_limit=2) is None
    assert not sb.has_capacity(per_replica_limit=2)
    sb.on_complete("r-0", ok=True)
    assert sb.pick(per_replica_limit=2).address == "r-0"


def test_exclude_supports_retry_and_hedge_spreading():
    sb = board("r-0", "r-1")
    assert sb.pick(4, exclude=frozenset({"r-0"})).address == "r-1"
    assert sb.pick(4, exclude=frozenset({"r-0", "r-1"})) is None


def test_only_healthy_and_degraded_are_routable():
    sb = ReplicaScoreboard()
    for state in ReplicaState:
        sb.add(f"r-{state.value}", state=state)
    routable = {e.address for e in sb.routable(per_replica_limit=4)}
    assert routable == {"r-healthy", "r-degraded"}


def test_degraded_heals_on_success_only_from_degraded():
    sb = board("r-0")
    sb.mark_degraded("r-0")
    assert sb.get("r-0").state is ReplicaState.DEGRADED
    sb.mark_healthy("r-0")
    assert sb.get("r-0").state is ReplicaState.HEALTHY
    # DRAINING must not be "healed" back into the routable set.
    sb.set_state("r-0", ReplicaState.DRAINING)
    sb.mark_healthy("r-0")
    assert sb.get("r-0").state is ReplicaState.DRAINING
    # Nor degraded: a draining replica stays draining on failure.
    sb.mark_degraded("r-0")
    assert sb.get("r-0").state is ReplicaState.DRAINING


def test_served_failure_and_counts_accounting():
    sb = board("r-0", "r-1")
    sb.on_dispatch("r-0")
    sb.on_complete("r-0", ok=True)
    sb.on_dispatch("r-0")
    sb.on_complete("r-0", ok=False)
    entry = sb.get("r-0")
    assert (entry.served, entry.failures, entry.in_flight) == (1, 1, 0)
    sb.set_state("r-1", ReplicaState.FAILED)
    assert sb.counts() == {"healthy": 1, "failed": 1}
    assert sb.total_in_flight() == 0
