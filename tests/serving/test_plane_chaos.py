"""End-to-end chaos: the plane's promise under loss, partition, crash.

One seeded chaos plan (message loss + latency spikes + duplicate
delivery), one transient partition, and one scheduled replica crash run
against the full :class:`ServingPlane`.  The suite asserts the plane's
core promise — every admitted request terminates in exactly one reply
or one typed error — and that the entire run (router decisions, pool
lifecycle, fault injections) replays byte-for-byte from the seed.
"""

import pytest

from repro.cluster.faults import FaultPlan, FaultSpec, TransientPartition
from repro.serving.service import ServingPlane

pytestmark = pytest.mark.serving


def run_chaos_plane(seed):
    plane = ServingPlane(seed=seed, n_nodes=4, initial_replicas=2)
    plan = FaultPlan(
        seed + 1,
        FaultSpec(loss=0.02, delay=0.02, delay_seconds=0.05, duplication=0.01),
        partitions=[TransientPartition("replica-1", 1.0, 2.0)],
    )
    plane.add_faults(plan)
    plane.platform.scheduler.schedule(
        2.5, lambda: plane.pool.crash("replica-0"), label="chaos:crash"
    )
    stats = plane.run_traffic(clients=6, duration=4.0, deadline_budget=0.5)
    plane.check_invariants()
    return plane, plan, stats


@pytest.fixture(scope="module")
def runs():
    """Memoized chaos runs keyed by (seed, copy) so the replay tests do
    not pay for the simulation more often than needed."""
    cache = {}

    def get(seed, copy=0):
        key = (seed, copy)
        if key not in cache:
            cache[key] = run_chaos_plane(seed)
        return cache[key]

    return get


def test_chaos_actually_fired(runs):
    plane, plan, _ = runs(11)
    counters = plan.counters
    assert counters.losses + counters.delays + counters.duplicates > 0
    assert counters.partition_drops > 0
    # The scheduled crash hit a *running* replica and the watchdog
    # replaced it with a freshly attested container.
    assert "crash replica-0" in plane.pool.events
    assert any(e.startswith("attested replica-2") for e in plane.pool.events)


def test_every_admitted_request_terminates_exactly_once(runs):
    plane, _, stats = runs(11)
    # Client-side: every sent request landed in exactly one outcome
    # bucket (reply, overload, deadline, transport) — no silent drops.
    stats.assert_accounted()
    assert stats.sent > 0 and stats.ok > 0
    # Router-side: admitted == terminal and nothing is still pending
    # (check_invariants in the helper enforces it; re-state the ledger
    # here so a regression fails with the numbers visible).
    router = plane.router
    assert plane.router.admission.stats.admitted == router.stats.terminal
    assert router.pending_count() == 0


def test_resilience_machinery_engaged(runs):
    plane, _, stats = runs(11)
    router = plane.router
    # Chaos at these rates must exercise the recovery paths, not just
    # the happy path: lost legs retried, duplicates replayed, and the
    # clients saw typed errors only.
    assert router.stats.retries > 0
    assert router.stats.dedup_replays >= 0  # duplicates may all dedup at replicas
    assert stats.other_errors == 0


def test_same_seed_replays_byte_identically(runs):
    plane_a, plan_a, stats_a = runs(11)
    plane_b, plan_b, stats_b = runs(11, copy=1)
    assert plane_a.trace_bytes() == plane_b.trace_bytes()
    assert plan_a.trace_bytes() == plan_b.trace_bytes()
    assert stats_a.outcomes == stats_b.outcomes
    assert stats_a.sent == stats_b.sent


def test_different_seed_diverges(runs):
    plane_a, _, _ = runs(11)
    plane_c, _, _ = runs(12)
    assert plane_a.trace_bytes() != plane_c.trace_bytes()
