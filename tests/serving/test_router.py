"""Router unit tests: shed, deadline, retry, hedge, settle-exactly-once.

These drive the :class:`FrontEndRouter` on a bare :class:`Network` with
hand-built replica handlers (no platform, no attestation) so each state
transition of the request state machine is observable in isolation.
"""

import pytest

from repro.cluster import Network, make_cluster
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.errors import DeadlineExceededError, OverloadError, RpcTransportError
from repro.serving import messages
from repro.serving.admission import AdmissionController, TokenBucket
from repro.serving.router import FrontEndRouter, RouterPolicy
from repro.serving.scoreboard import ReplicaScoreboard, ReplicaState

pytestmark = pytest.mark.serving


@pytest.fixture
def cluster(provisioning):
    return make_cluster(3, CM, provisioning, seed=4)


@pytest.fixture
def network():
    return Network(CM)


def make_router(network, node, per_replica_limit=2, max_attempts=3, hedge=False,
                hedge_min_delay=0.05, rate=1000.0, burst=100.0):
    return FrontEndRouter(
        network,
        node,
        "router",
        ReplicaScoreboard(),
        AdmissionController(TokenBucket(rate, burst)),
        policy=RouterPolicy(
            per_replica_limit=per_replica_limit,
            max_attempts=max_attempts,
            hedge=hedge,
            hedge_min_delay=hedge_min_delay,
        ),
    )


def add_replica(network, router, node, address, service_time=0.01):
    """A hand-built replica endpoint; returns its execution counter."""
    executions = []

    def handler(raw):
        msg = messages.decode_request(raw)
        deadline = msg.get("deadline")
        if deadline is not None and node.clock.now > deadline:
            raise DeadlineExceededError(f"expired at {address}")
        executions.append(msg["id"])
        node.clock.advance(service_time)
        return messages.encode_ok(msg["id"], msg["payload"], address)

    network.register(address, node.clock, handler)
    router.scoreboard.add(address, state=ReplicaState.HEALTHY)
    return executions


def send(network, clock, request_id, deadline=None, payload=b"p"):
    raw = network.call(
        "client",
        clock,
        "router",
        messages.encode_request(request_id, payload, deadline=deadline),
    )
    return messages.decode_reply(raw)


def test_ok_roundtrip_stamps_replica(cluster, network):
    router = make_router(network, cluster[0])
    add_replica(network, router, cluster[1], "r-a")
    reply = send(network, cluster[2].clock, "q1")
    assert reply["payload"] == b"p"
    assert reply["replica"] == "r-a"
    assert router.stats.completed_ok == 1
    assert router.admission.stats.admitted == 1
    assert router.scoreboard.get("r-a").served == 1


def test_queue_bound_sheds_with_typed_overload(cluster, network):
    """Second concurrent request to a full single-replica queue is shed
    explicitly — a typed OverloadError, not a timeout, not a drop."""
    router = make_router(network, cluster[0], per_replica_limit=1)
    add_replica(network, router, cluster[1], "r-a", service_time=1.0)
    clock = cluster[2].clock
    first = network.call_async(
        "client", clock, "router", messages.encode_request("q1", b"p")
    )
    second = network.call_async(
        "client", clock, "router", messages.encode_request("q2", b"p")
    )
    with pytest.raises(OverloadError):
        network.scheduler.run_until(second)
    messages.decode_reply(network.scheduler.run_until(first))
    assert router.admission.stats.admitted == 1
    assert router.admission.stats.shed_capacity == 1


def test_rate_limit_sheds_with_typed_overload(cluster, network):
    router = make_router(network, cluster[0], rate=1.0, burst=1.0)
    add_replica(network, router, cluster[1], "r-a")
    clock = cluster[2].clock
    send(network, clock, "q1")
    with pytest.raises(OverloadError):
        send(network, clock, "q2")
    assert router.admission.stats.shed_rate == 1


def test_expired_on_arrival_is_shed_server_side(cluster, network):
    router = make_router(network, cluster[0])
    executions = add_replica(network, router, cluster[1], "r-a")
    clock = cluster[2].clock
    clock.advance(1.0)
    with pytest.raises(DeadlineExceededError):
        send(network, clock, "q1", deadline=0.5)
    # Never admitted, never dispatched: no replica time was burned.
    assert executions == []
    assert router.admission.stats.shed_expired == 1
    assert router.admission.stats.admitted == 0


def test_replica_side_deadline_shed_propagates(cluster, network):
    """The deadline travels in the envelope: a replica whose clock is
    already past it sheds instead of executing, and the typed error is
    authoritative (no retry on another replica)."""
    router = make_router(network, cluster[0])
    executions_a = add_replica(network, router, cluster[1], "r-a")
    executions_b = add_replica(network, router, cluster[2], "r-b")
    cluster[1].clock.advance(5.0)  # r-a is far ahead: arrival beats deadline
    clock = cluster[2].clock
    # r-a wins the pick (tie on load, address order) but sheds.
    with pytest.raises(DeadlineExceededError):
        send(network, clock, "q1", deadline=clock.now + 0.5)
    assert executions_a == [] and executions_b == []
    assert router.stats.failed_deadline == 1


def test_router_deadline_event_fires_before_slow_reply(cluster, network):
    router = make_router(network, cluster[0])
    add_replica(network, router, cluster[1], "r-a", service_time=2.0)
    clock = cluster[2].clock
    with pytest.raises(DeadlineExceededError):
        send(network, clock, "q1", deadline=clock.now + 0.3)
    # The client learned its fate at the deadline, not after 2 s.
    assert clock.now < 1.0
    assert router.stats.failed_deadline == 1
    # The slow reply still arrives later; it must be observational only.
    network.scheduler.run()
    assert router.stats.late_replies == 1
    assert router.stats.terminal == 1  # settled exactly once


def test_transport_failure_retries_on_another_replica(cluster, network):
    router = make_router(network, cluster[0])
    add_replica(network, router, cluster[1], "r-a")
    add_replica(network, router, cluster[2], "r-b")

    dropped = []

    def drop_first_to_a(src, dst, n_bytes, now):
        from repro.cluster.network import FaultAction

        if dst == "r-a" and not dropped:
            dropped.append(src)
            return FaultAction(drop=True, reason="test drop")
        return None

    network.faults.append(drop_first_to_a)
    reply = send(network, cluster[2].clock, "q1")
    assert reply["replica"] == "r-b"
    assert router.stats.retries == 1
    assert router.stats.completed_ok == 1
    # The lost attempt degraded r-a and fed its breaker.
    assert router.scoreboard.get("r-a").state is ReplicaState.DEGRADED
    assert router.recovery.breakers_closed == 2


def test_no_routable_replica_is_typed_overload(cluster, network):
    make_router(network, cluster[0])
    with pytest.raises(OverloadError):
        send(network, cluster[2].clock, "q1")


def test_hedge_second_attempt_first_reply_wins(cluster, network):
    router = make_router(network, cluster[0], hedge=True, hedge_min_delay=0.05)
    executions_a = add_replica(network, router, cluster[1], "r-a", service_time=1.0)
    executions_b = add_replica(network, router, cluster[2], "r-b", service_time=0.01)
    clock = cluster[2].clock
    reply = send(network, clock, "q1", deadline=clock.now + 5.0)
    # The hedge (to the other replica) answered long before the slow
    # primary; its reply settled the request.
    assert reply["replica"] == "r-b"
    assert router.stats.hedges_fired == 1
    assert router.stats.hedges_won == 1
    assert router.stats.completed_ok == 1
    assert executions_a == ["q1"] and executions_b == ["q1"]
    # First-reply-wins: the loser's reply is late, the request settled once.
    network.scheduler.run()
    assert router.stats.late_replies == 1
    assert router.stats.terminal == 1


def test_hedge_not_fired_when_primary_is_fast(cluster, network):
    router = make_router(network, cluster[0], hedge=True, hedge_min_delay=0.5)
    add_replica(network, router, cluster[1], "r-a", service_time=0.01)
    add_replica(network, router, cluster[2], "r-b", service_time=0.01)
    send(network, cluster[2].clock, "q1")
    network.scheduler.run()
    assert router.stats.hedges_fired == 0
    assert router.stats.completed_ok == 1


def test_duplicate_request_replays_cached_outcome(cluster, network):
    router = make_router(network, cluster[0])
    executions = add_replica(network, router, cluster[1], "r-a")
    clock = cluster[2].clock
    first = send(network, clock, "q1")
    second = send(network, clock, "q1")
    assert first["replica"] == second["replica"] == "r-a"
    assert executions == ["q1"]  # executed once, replayed once
    assert router.stats.dedup_replays == 1
    assert router.admission.stats.admitted == 1


def test_duplicate_of_failed_request_replays_the_typed_error(cluster, network):
    router = make_router(network, cluster[0])
    add_replica(network, router, cluster[1], "r-a", service_time=2.0)
    clock = cluster[2].clock
    with pytest.raises(DeadlineExceededError):
        send(network, clock, "q1", deadline=clock.now + 0.3)
    with pytest.raises(DeadlineExceededError):
        send(network, clock, "q1")
    assert router.stats.dedup_replays == 1
    assert router.stats.terminal == 1


def test_admitted_equals_terminal_over_a_mixed_run(cluster, network):
    """The core accounting invariant: every admitted request reaches
    exactly one terminal outcome."""
    router = make_router(network, cluster[0], per_replica_limit=1)
    add_replica(network, router, cluster[1], "r-a", service_time=0.05)
    clock = cluster[2].clock
    outcomes = {"ok": 0, "err": 0}
    pending = []
    for i in range(10):
        deadline = clock.now + (0.02 if i % 3 == 0 else 1.0)
        pending.append(
            network.call_async(
                "client",
                clock,
                "router",
                messages.encode_request(f"q{i}", b"p", deadline=deadline),
            )
        )
    for completion in pending:
        try:
            messages.decode_reply(network.scheduler.run_until(completion))
            outcomes["ok"] += 1
        except (OverloadError, DeadlineExceededError, RpcTransportError):
            outcomes["err"] += 1
    network.scheduler.run()
    assert outcomes["ok"] + outcomes["err"] == 10
    assert router.admission.stats.admitted == router.stats.terminal
    assert router.pending_count() == 0
