"""Router handoff under epoch fencing: the superseded front end cannot
settle work through the replica pool."""

import pytest

from repro.serving import messages
from repro.serving.service import ServingPlane

pytestmark = pytest.mark.serving


def make_plane(**kwargs):
    plane = ServingPlane(**kwargs)
    # These tests drive requests by hand and drain the heap after each
    # one; stop the recurring watchdog tick up front so draining
    # terminates (run_traffic-style flows quiesce at the end instead).
    plane.watchdog.stop()
    return plane


def submit(plane, router, request_id):
    """Feed one request through a router object's endpoint handler."""
    raw = messages.encode_request(request_id, b"payload")
    result = router._handle(raw)
    plane.platform.scheduler.run()
    return result


def test_fenced_plane_stamps_routing_epoch():
    plane = make_plane(seed=3, n_nodes=2, initial_replicas=1, fencing=True)
    assert plane.platform.epochs is not None
    assert plane.router.fence is not None
    assert plane.router.fence.role == "router"
    submit(plane, plane.router, "r1")
    assert plane.router.stats.completed_ok == 1
    plane.check_invariants()


def test_replace_router_fences_the_zombie():
    plane = make_plane(seed=5, n_nodes=2, initial_replicas=2, fencing=True)
    submit(plane, plane.router, "r1")
    zombie = plane.replace_router()

    # Bump-before-promote: the replacement holds a fresh lease, the
    # zombie still holds (and keeps stamping) the dead one.
    assert plane.router is not zombie
    assert plane.router.fence.epoch > zombie.fence.epoch
    assert zombie.fence.stale

    # The replacement serves normally at the well-known address.
    submit(plane, plane.router, "r2")
    assert plane.router.stats.completed_ok == 1

    # The zombie's dispatch reaches a replica and is rejected by its
    # guard — an authoritative error, settled immediately (no retry
    # storm), so the request terminates instead of dangling.
    submit(plane, zombie, "r3")
    assert zombie.stats.completed_ok == 1          # pre-handoff traffic
    assert zombie.stats.failed_other == 1          # the fenced dispatch
    assert zombie.pending_count() == 0
    assert plane.platform.epochs.stats.fenced_rejections >= 1

    # Plane-wide accounting still balances: the shared admission counter
    # covers both routers' admitted work, and every admit terminated.
    admitted = plane.router.admission.stats.admitted
    terminal = plane.router.stats.terminal + zombie.stats.terminal
    assert admitted == terminal


def test_unfenced_plane_has_no_epoch_machinery():
    plane = make_plane(seed=7, n_nodes=2, initial_replicas=1, fencing=False)
    assert plane.platform.epochs is None
    assert plane.router.fence is None
    submit(plane, plane.router, "r1")
    assert plane.router.stats.completed_ok == 1
    plane.check_invariants()
