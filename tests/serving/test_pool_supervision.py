"""S3: watchdog-driven recovery — restart budgets, quarantine, drains.

These tests crash *running* replicas and let the orchestrator watchdog
(not a manual ``supervise`` call) do the recovery, then assert the
scoreboard and the routing plane converge on the supervision outcome.
"""

import pytest

from repro.serving import messages
from repro.serving.scoreboard import ReplicaState
from repro.serving.service import ServingPlane

pytestmark = pytest.mark.serving


def make_plane(seed=3, initial_replicas=2, restart_budget=None, **kwargs):
    plane = ServingPlane(
        seed=seed,
        n_nodes=4,
        initial_replicas=initial_replicas,
        watchdog_interval=0.25,
        **kwargs,
    )
    if restart_budget is not None:
        plane.platform.orchestrator.restart_budget = restart_budget
    return plane


def send(plane, request_id, deadline=None):
    network = plane.platform.network
    clock = plane.platform.nodes[-1].clock
    raw = network.call(
        "client",
        clock,
        "router",
        messages.encode_request(request_id, b"p", deadline=deadline),
    )
    return messages.decode_reply(raw)


def states(plane):
    return {e.address: e.state for e in plane.scoreboard.entries()}


def test_watchdog_restarts_crashed_replica_and_reattests_it():
    plane = make_plane()
    scheduler = plane.platform.scheduler
    attested_before = len(plane.pool.cold_starts)
    plane.pool.crash("replica-0")
    assert states(plane)["replica-0"] is ReplicaState.FAILED
    scheduler.run(until=plane.time + 2.0)
    # The replacement came up under a fresh name, re-ran the full
    # attestation path (fresh enclave memory ⇒ fresh proof), and the
    # reconcile pass reaped the dead entry.
    board = states(plane)
    assert "replica-0" not in board
    assert board["replica-2"] is ReplicaState.HEALTHY
    assert len(plane.pool.cold_starts) == attested_before + 1
    assert any("restart replica-0" in e for e in plane.platform.orchestrator.events)
    reply = send(plane, "after-recovery")
    assert reply["replica"] in ("replica-1", "replica-2")
    plane.quiesce()


def test_restart_budget_exhaustion_quarantines_the_lineage():
    plane = make_plane(restart_budget=1)
    scheduler = plane.platform.scheduler
    plane.pool.crash("replica-0")
    scheduler.run(until=plane.time + 2.0)
    assert states(plane)["replica-2"] is ReplicaState.HEALTHY
    # Crash the *running* replacement: the lineage's budget (1) is now
    # spent, so the watchdog must quarantine instead of restarting.
    plane.pool.crash("replica-2")
    scheduler.run(until=plane.time + 2.0)
    board = states(plane)
    assert board["replica-2"] is ReplicaState.QUARANTINED
    quarantined = {
        c.name for c in plane.platform.orchestrator.quarantined("replica")
    }
    assert "replica-2" in quarantined
    # No further replacements appear for the quarantined lineage.
    assert "replica-3" not in board
    plane.quiesce()


def test_routing_avoids_quarantined_replicas():
    plane = make_plane(restart_budget=0)
    scheduler = plane.platform.scheduler
    plane.pool.crash("replica-0")
    scheduler.run(until=plane.time + 2.0)
    assert states(plane)["replica-0"] is ReplicaState.QUARANTINED
    # Every request lands on the one surviving replica; the quarantined
    # entry is not in the routable set.
    for i in range(4):
        assert send(plane, f"q{i}")["replica"] == "replica-1"
    routable = {e.address for e in plane.scoreboard.routable(per_replica_limit=8)}
    assert routable == {"replica-1"}
    plane.quiesce()


def test_drain_finishes_inflight_work_before_stopping():
    plane = make_plane(initial_replicas=1, service_time=0.2)
    scheduler = plane.platform.scheduler
    network = plane.platform.network
    clock = plane.platform.nodes[-1].clock
    completion = network.call_async(
        "client", clock, "router", messages.encode_request("slow", b"p")
    )
    # Let the request reach the replica, then begin the drain while it
    # is still being served.
    scheduler.run(until=plane.time + 0.01)
    assert plane.scoreboard.in_flight("replica-0") == 1
    assert plane.pool.drain_one() == "replica-0"
    reply = messages.decode_reply(scheduler.run_until(completion))
    assert reply["replica"] == "replica-0"  # admitted work completed
    scheduler.run(until=plane.time + 2.0)
    assert states(plane)["replica-0"] is ReplicaState.STOPPED
    assert "drained replica-0" in plane.pool.events
    plane.quiesce()
