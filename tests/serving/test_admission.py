"""Admission control: typed sheds, token-bucket refill, total accounting."""

import pytest

from repro.errors import ConfigurationError, OverloadError
from repro.serving.admission import AdmissionController, AdmissionStats, TokenBucket

pytestmark = pytest.mark.serving


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        assert [bucket.allow(0.0) for _ in range(3)] == [True, True, True]
        assert not bucket.allow(0.0)

    def test_refills_by_simulated_time(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)
        # 0.1 simulated seconds at 10/s refills exactly one token.
        assert bucket.allow(0.1)
        assert not bucket.allow(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        bucket.allow(0.0)
        bucket.allow(0.0)
        # A long idle period must not bank unbounded credit.
        assert [bucket.allow(100.0) for _ in range(3)] == [True, True, False]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def test_admits_and_counts(self):
        controller = AdmissionController(TokenBucket(rate=100.0, burst=10))
        controller.admit(0.0, has_capacity=True)
        assert controller.stats.admitted == 1
        assert controller.stats.arrivals == 1

    def test_rate_shed_is_typed(self):
        controller = AdmissionController(TokenBucket(rate=1.0, burst=1))
        controller.admit(0.0, has_capacity=True)
        with pytest.raises(OverloadError):
            controller.admit(0.0, has_capacity=True)
        assert controller.stats.shed_rate == 1

    def test_capacity_shed_is_typed(self):
        controller = AdmissionController(TokenBucket(rate=100.0, burst=10))
        with pytest.raises(OverloadError):
            controller.admit(0.0, has_capacity=False)
        assert controller.stats.shed_capacity == 1

    def test_rate_checked_before_capacity(self):
        """A flood beyond the rate sheds on rate even when queues are
        also full — the cheaper check runs first and its counter tells
        the autoscaler *which* resource ran out."""
        controller = AdmissionController(TokenBucket(rate=1.0, burst=1))
        controller.admit(0.0, has_capacity=True)
        with pytest.raises(OverloadError):
            controller.admit(0.0, has_capacity=False)
        assert controller.stats.shed_rate == 1
        assert controller.stats.shed_capacity == 0

    def test_every_arrival_lands_in_one_bucket(self):
        controller = AdmissionController(TokenBucket(rate=2.0, burst=2))
        outcomes = []
        for i in range(6):
            try:
                controller.admit(0.1 * i, has_capacity=(i % 2 == 0))
                outcomes.append("ok")
            except OverloadError:
                outcomes.append("shed")
        stats = controller.stats
        assert stats.arrivals == 6
        assert stats.admitted == outcomes.count("ok")
        assert stats.shed_rate + stats.shed_capacity == outcomes.count("shed")
