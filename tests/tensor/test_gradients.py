"""Autodiff correctness: analytic vs central-difference gradients.

Every differentiable op gets a numeric gradient check through a scalar
loss ``sum(op(x) * weights)`` so that non-uniform output gradients are
exercised too.
"""

import numpy as np
import pytest

import repro.tensor as tf
from repro.errors import GraphError
from repro.tensor.graph import Graph
from repro.tensor.ops.core import minimum, tile

RNG = np.random.default_rng(11)


def numeric_gradient(f, x, eps=1e-3):
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        grad[idx] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(builder, x_value, rtol=0.05, atol=5e-3):
    """Compare tf.gradients against central differences."""
    x_value = x_value.astype(np.float32)
    weights = RNG.normal(size=()).astype(np.float32)

    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", x_value.shape, name="x")
        y = builder(x)
        mixer = tf.constant(
            RNG.normal(size=tuple(d for d in y.shape)).astype(np.float32)
            if None not in y.shape
            else 1.0
        )
        loss = tf.reduce_sum(tf.mul(y, mixer))
        (grad,) = tf.gradients(loss, [x])
    sess = tf.Session(graph=g)
    analytic = np.asarray(sess.run(grad, {x: x_value}), dtype=np.float64)

    def scalar_loss(value):
        return float(sess.run(loss, {x: value.astype(np.float32)}))

    numeric = numeric_gradient(scalar_loss, x_value.astype(np.float64))
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


X = RNG.normal(size=(3, 4)).astype(np.float32)
POS = np.abs(X) + 0.5


@pytest.mark.parametrize(
    "name,builder,value",
    [
        ("neg", tf.neg, X),
        ("square", tf.square, X),
        ("sqrt", tf.sqrt, POS),
        ("exp", lambda x: tf.exp(tf.mul(x, tf.constant(0.3))), X),
        ("log", tf.log, POS),
        ("relu", tf.relu, X + 0.05),  # keep away from the kink
        ("sigmoid", tf.sigmoid, X),
        ("tanh", tf.tanh, X),
        ("identity", tf.identity, X),
        ("softmax", tf.softmax, X),
        ("reduce_sum", lambda x: tf.reduce_sum(x, axis=1), X),
        ("reduce_sum_all", tf.reduce_sum, X),
        ("reduce_mean", lambda x: tf.reduce_mean(x, axis=0, keepdims=True), X),
        ("reshape", lambda x: tf.reshape(x, (4, 3)), X),
        ("transpose", lambda x: tf.transpose(x, (1, 0)), X),
        ("pad", lambda x: tf.pad(x, [(1, 0), (0, 2)]), X),
        ("expand_dims", lambda x: tf.expand_dims(x, 1), X),
        ("tile", lambda x: tile(x, (2, 3)), X),
        ("cast_noop", lambda x: tf.cast(x, "float32"), X),
    ],
)
def test_unary_gradients(name, builder, value):
    check_gradient(builder, value)


def test_reduce_max_gradient():
    # Distinct values so the argmax mask is unambiguous.
    value = np.arange(12, dtype=np.float32).reshape(3, 4) * 0.37
    check_gradient(lambda x: tf.reduce_max(x, axis=1), value)


@pytest.mark.parametrize(
    "name,builder",
    [
        ("add", tf.add),
        ("sub", tf.sub),
        ("mul", tf.mul),
        ("div", lambda a, b: tf.div(a, tf.add(tf.square(b), tf.constant(0.5)))),
        ("matmul", None),
        ("maximum", tf.maximum),
        ("minimum", minimum),
    ],
)
def test_binary_gradients_both_inputs(name, builder):
    a_value = RNG.normal(size=(3, 4)).astype(np.float32)
    if name == "matmul":
        b_value = RNG.normal(size=(4, 2)).astype(np.float32)
        builder = tf.matmul
    else:
        b_value = RNG.normal(size=(3, 4)).astype(np.float32) + (
            0.3 if name in ("maximum", "minimum") else 0.0
        )

    for side in (0, 1):
        fixed = [a_value, b_value][1 - side]
        free = [a_value, b_value][side]

        def partial(x, side=side, fixed=fixed, builder=builder):
            const = tf.constant(fixed)
            return builder(x, const) if side == 0 else builder(const, x)

        check_gradient(partial, free)


def test_broadcast_gradient_unbroadcasts():
    bias = RNG.normal(size=(4,)).astype(np.float32)
    check_gradient(lambda b: tf.add(tf.constant(X), b), bias)
    check_gradient(lambda b: tf.mul(tf.constant(X), b), bias)


def test_concat_gradient():
    a = RNG.normal(size=(3, 2)).astype(np.float32)
    b = RNG.normal(size=(3, 5)).astype(np.float32)
    check_gradient(lambda x: tf.concat([x, tf.constant(b)], axis=1), a)
    check_gradient(lambda x: tf.concat([tf.constant(a), x], axis=1), b)


def test_fanout_accumulates():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2,), name="x")
        y = tf.add(tf.square(x), tf.mul(x, tf.constant(3.0)))  # x² + 3x
        loss = tf.reduce_sum(y)
        (grad,) = tf.gradients(loss, [x])
    value = np.array([1.0, 2.0], dtype=np.float32)
    out = tf.Session(graph=g).run(grad, {x: value})
    np.testing.assert_allclose(out, 2 * value + 3.0, rtol=1e-5)


def test_stop_gradient_blocks_flow():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2,), name="x")
        blocked = tf.square(tf.stop_gradient(x))
        passed = tf.square(x)
        loss = tf.reduce_sum(tf.add(blocked, passed))
        (grad,) = tf.gradients(loss, [x])
    value = np.array([1.0, 2.0], dtype=np.float32)
    out = tf.Session(graph=g).run(grad, {x: value})
    np.testing.assert_allclose(out, 2 * value, rtol=1e-5)  # only `passed`


def test_gradient_of_unrelated_tensor_is_none():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2,), name="x")
        z = tf.placeholder("float32", (2,), name="z")
        loss = tf.reduce_sum(tf.square(x))
        grads = tf.gradients(loss, [x, z])
    assert grads[0] is not None
    assert grads[1] is None


def test_gradients_requires_ys():
    with pytest.raises(GraphError):
        tf.gradients([], [])


def test_second_application_builds_on_same_graph():
    """gradients() twice (e.g. two optimizers) must not corrupt state."""
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2,), name="x")
        loss = tf.reduce_sum(tf.square(x))
        (g1,) = tf.gradients(loss, [x])
        (g2,) = tf.gradients(loss, [x])
    value = np.array([3.0, -1.0], dtype=np.float32)
    sess = tf.Session(graph=g)
    np.testing.assert_allclose(sess.run(g1, {x: value}), sess.run(g2, {x: value}))
