"""Execution engine: cost charging across modes and profiles."""

import numpy as np
import pytest

import repro.tensor as tf
from repro._sim import DeterministicRng, SimClock
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import ConfigurationError
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.runtime.vfs import VirtualFileSystem
from repro.tensor.engine import (
    ExecutionEngine,
    FULL_TF_PROFILE,
    LITE_PROFILE,
    RunStats,
)


def make_runtime(mode, profile, cpu=None, clock=None):
    clock = clock or (cpu.clock if cpu is not None else SimClock())
    return SconeRuntime(
        RuntimeConfig(
            name="engine-test",
            mode=mode,
            binary_size=profile.binary_size,
            fs_shield_enabled=False,
        ),
        VirtualFileSystem(),
        CM,
        clock,
        cpu=cpu,
        rng=DeterministicRng(0),
    ), clock


SMALL = RunStats(
    flops=10**9, ops=50, weight_bytes=10**6, activation_bytes=10**6,
    max_op_bytes=10**5,
)


def test_charge_advances_clock():
    runtime, clock = make_runtime(SgxMode.NATIVE, LITE_PROFILE)
    engine = ExecutionEngine(runtime, LITE_PROFILE)
    engine.charge_run(SMALL)
    assert clock.now > 10**9 / LITE_PROFILE.flops_per_second * 0.9
    assert engine.totals.runs == 1
    assert engine.totals.compute_time > 0


def test_more_threads_less_time():
    times = []
    for threads in (1, 4):
        runtime, clock = make_runtime(SgxMode.NATIVE, LITE_PROFILE)
        engine = ExecutionEngine(runtime, LITE_PROFILE, threads=threads)
        engine.charge_run(SMALL)
        times.append(clock.now)
    assert times[1] < times[0] / 2


def test_hw_slower_than_sim_for_same_work(cpu):
    runtime_sim, clock_sim = make_runtime(SgxMode.SIM, LITE_PROFILE, cpu=cpu)
    engine = ExecutionEngine(runtime_sim, LITE_PROFILE)
    before = clock_sim.now
    engine.charge_run(SMALL)
    sim_time = clock_sim.now - before

    runtime_hw, clock_hw = make_runtime(SgxMode.HW, LITE_PROFILE, cpu=cpu)
    engine = ExecutionEngine(runtime_hw, LITE_PROFILE)
    before = clock_hw.now
    engine.charge_run(SMALL)
    hw_time = clock_hw.now - before
    assert hw_time > sim_time


def test_epc_overflow_working_set_causes_faults(cpu):
    runtime, clock = make_runtime(SgxMode.HW, LITE_PROFILE, cpu=cpu)
    engine = ExecutionEngine(runtime, LITE_PROFILE)
    big = RunStats(
        flops=10**6,
        ops=10,
        weight_bytes=CM.epc_capacity_bytes + 30 * 1024 * 1024,
        activation_bytes=10**6,
        max_op_bytes=10**5,
    )
    engine.charge_run(big)  # cold
    cold_faults = engine.totals.epc_faults
    engine.charge_run(big)  # steady-state: still faulting (over capacity)
    assert engine.totals.epc_faults > cold_faults * 1.2


def test_resident_working_set_stops_faulting(cpu):
    runtime, clock = make_runtime(SgxMode.HW, LITE_PROFILE, cpu=cpu)
    engine = ExecutionEngine(runtime, LITE_PROFILE)
    engine.charge_run(SMALL)
    cold = engine.totals.epc_faults
    engine.charge_run(SMALL)
    assert engine.totals.epc_faults == cold  # everything resident


def test_binary_size_mismatch_rejected():
    runtime, _ = make_runtime(SgxMode.NATIVE, LITE_PROFILE)
    with pytest.raises(ConfigurationError):
        ExecutionEngine(runtime, FULL_TF_PROFILE)
    with pytest.raises(ConfigurationError):
        ExecutionEngine(runtime, LITE_PROFILE, threads=0)


def test_session_charges_engine_with_graph_scales():
    runtime, clock = make_runtime(SgxMode.NATIVE, LITE_PROFILE)
    engine = ExecutionEngine(runtime, LITE_PROFILE)
    g = tf.Graph()
    with g.as_default():
        x = tf.placeholder("float32", (4, 4), name="x")
        y = tf.matmul(x, x)
    g.cost_scale = 1.0
    sess = tf.Session(graph=g, engine=engine)
    sess.run(y, {x: np.zeros((4, 4), np.float32)})
    base = clock.now
    g.cost_scale = 100_000.0
    sess.run(y, {x: np.zeros((4, 4), np.float32)})
    assert (clock.now - base) > base * 10  # scaled run far costlier
