"""Session execution semantics and variable state."""

import numpy as np
import pytest

import repro.tensor as tf
from repro.errors import GraphError
from repro.tensor.graph import Graph
from repro.tensor.variables import global_variables, trainable_variables


def test_placeholder_must_be_fed():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2,), name="x")
        y = tf.square(x)
    with pytest.raises(GraphError):
        tf.Session(graph=g).run(y)


def test_feed_shape_validation():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (None, 4), name="x")
        y = tf.identity(x)
    sess = tf.Session(graph=g)
    sess.run(y, {x: np.zeros((7, 4), np.float32)})  # None batch ok
    with pytest.raises(GraphError):
        sess.run(y, {x: np.zeros((7, 5), np.float32)})
    with pytest.raises(GraphError):
        sess.run(y, {x: np.zeros((4,), np.float32)})


def test_feed_by_string_name_and_float64_coercion():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2,), name="x")
        y = tf.mul(x, tf.constant(2.0))
    out = tf.Session(graph=g).run(y, {"x": np.array([1.0, 2.0])})
    assert out.dtype == np.float32
    np.testing.assert_allclose(out, [2.0, 4.0])


def test_fetch_structures():
    g = Graph()
    with g.as_default():
        a = tf.constant(1.0, name="a")
        b = tf.constant(2.0, name="b")
    sess = tf.Session(graph=g)
    assert sess.run([a, b]) == [1.0, 2.0]
    assert sess.run((a, b)) == (1.0, 2.0)
    assert sess.run({"x": a, "y": [b]}) == {"x": 1.0, "y": [2.0]}
    assert sess.run("a") == 1.0
    with pytest.raises(GraphError):
        sess.run(3.14)


def test_feeding_intermediate_tensor_short_circuits():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2,), name="x")
        h = tf.square(x)
        y = tf.mul(h, tf.constant(10.0))
    out = tf.Session(graph=g).run(y, {h: np.array([5.0, 6.0], np.float32)})
    np.testing.assert_allclose(out, [50.0, 60.0])


def test_each_run_recomputes():
    g = Graph()
    with g.as_default():
        v = tf.variable(np.array([1.0], np.float32), name="v")
        bump = v.assign_add(tf.constant(np.array([1.0], np.float32)))
    sess = tf.Session(graph=g)
    v.initialize()
    sess.run(bump)
    sess.run(bump)
    np.testing.assert_allclose(v.value, [3.0])


def test_op_runs_once_per_run_despite_fanout():
    g = Graph()
    with g.as_default():
        v = tf.variable(np.array([0.0], np.float32), name="v")
        bump = v.assign_add(tf.constant(np.array([1.0], np.float32)))
        double_use = tf.add(bump, bump)
    v.initialize()
    out = tf.Session(graph=g).run(double_use)
    np.testing.assert_allclose(out, [2.0])
    np.testing.assert_allclose(v.value, [1.0])  # one increment only


def test_control_dependencies_order():
    g = Graph()
    with g.as_default():
        v = tf.variable(np.array([0.0], np.float32), name="v")
        bump = v.assign_add(tf.constant(np.array([5.0], np.float32)))
        read = tf.identity(v.tensor, name="read")
        read.op.add_control_input(bump.op)
    v.initialize()
    out = tf.Session(graph=g).run(read)
    np.testing.assert_allclose(out, [5.0])


def test_run_stats_accounting():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (4, 8), name="x")
        w = tf.variable(np.zeros((8, 2), np.float32), name="w")
        y = tf.matmul(x, w.tensor)
    w.initialize()
    sess = tf.Session(graph=g)
    sess.run(y, {x: np.zeros((4, 8), np.float32)})
    stats = sess.last_stats
    assert stats.flops == 2 * 4 * 8 * 2
    assert stats.weight_bytes == 8 * 2 * 4
    assert stats.activation_bytes == 4 * 2 * 4  # the matmul output


# --- variables ----------------------------------------------------------------


def test_variable_lifecycle():
    g = Graph()
    with g.as_default():
        v = tf.variable(np.ones((2, 2), np.float32), name="w")
    assert not v.initialized
    with pytest.raises(GraphError):
        _ = v.value
    v.initialize()
    np.testing.assert_allclose(v.value, np.ones((2, 2)))
    assert v.nbytes == 16


def test_variable_read_before_init_fails_in_session():
    g = Graph()
    with g.as_default():
        v = tf.variable(np.ones((2,), np.float32), name="w")
        y = tf.square(v.tensor)
    with pytest.raises(GraphError):
        tf.Session(graph=g).run(y)


def test_variable_load_shape_check():
    g = Graph()
    with g.as_default():
        v = tf.variable(np.ones((2, 2), np.float32))
    with pytest.raises(GraphError):
        v.load(np.ones((3, 3), np.float32))


def test_collections_and_trainable_flag():
    g = Graph()
    with g.as_default():
        a = tf.variable(np.ones(1, np.float32), name="a")
        b = tf.variable(np.ones(1, np.float32), name="b", trainable=False)
    assert set(v.name for v in global_variables(g)) == {"a", "b"}
    assert [v.name for v in trainable_variables(g)] == ["a"]


def test_global_variables_initializer():
    g = Graph()
    with g.as_default():
        a = tf.variable(np.ones(1, np.float32), name="a")
        b = tf.variable(np.zeros(1, np.float32), name="b")
        init = tf.global_variables_initializer(g)
    count = tf.Session(graph=g).run(init)
    assert count == 2
    assert a.initialized and b.initialized


def test_assign_ops():
    g = Graph()
    with g.as_default():
        v = tf.variable(np.array([10.0], np.float32))
        set_op = v.assign(tf.constant(np.array([1.0], np.float32)))
        sub_op = v.assign_sub(tf.constant(np.array([0.5], np.float32)))
    v.initialize()
    sess = tf.Session(graph=g)
    sess.run(set_op)
    np.testing.assert_allclose(v.value, [1.0])
    sess.run(sub_op)
    np.testing.assert_allclose(v.value, [0.5])
