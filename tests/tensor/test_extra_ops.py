"""Extra ops: forwards, gradients, and pipeline (freeze/Lite) support."""

import numpy as np
import pytest

import repro.tensor as tf
from repro.errors import ShapeError
from repro.tensor.graph import Graph
from repro.tensor.lite import Interpreter, LiteConverter
from repro.tensor.saver import export_graph, freeze_graph, import_graph

from tests.tensor.test_gradients import check_gradient

RNG = np.random.default_rng(77)
X = RNG.normal(size=(3, 4)).astype(np.float32)


def run(builder, value):
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", value.shape, name="x")
        y = builder(x)
    return tf.Session(graph=g).run(y, {x: value})


# --- forwards -----------------------------------------------------------------


def test_abs_forward():
    np.testing.assert_allclose(run(tf.abs_, X), np.abs(X))


def test_leaky_relu_forward():
    out = run(lambda x: tf.leaky_relu(x, alpha=0.1), X)
    np.testing.assert_allclose(out, np.where(X > 0, X, 0.1 * X), rtol=1e-6)


def test_softplus_forward_and_stability():
    np.testing.assert_allclose(
        run(tf.softplus, X), np.log1p(np.exp(X)), rtol=1e-5
    )
    big = np.full((2, 2), 500.0, np.float32)
    assert np.isfinite(run(tf.softplus, big)).all()


def test_clip_forward_and_validation():
    out = run(lambda x: tf.clip_by_value(x, -0.5, 0.5), X)
    np.testing.assert_allclose(out, np.clip(X, -0.5, 0.5))
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2,), name="x")
        with pytest.raises(ShapeError):
            tf.clip_by_value(x, 1.0, -1.0)


def test_squeeze_forward_and_validation():
    value = X[:, None, :]
    out = run(lambda x: tf.squeeze(x, 1), value)
    np.testing.assert_array_equal(out, X)
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (3, 4), name="x")
        with pytest.raises(ShapeError):
            tf.squeeze(x, 0)


def test_slice_forward_and_validation():
    out = run(lambda x: tf.slice_(x, (1, 0), (2, 3)), X)
    np.testing.assert_array_equal(out, X[1:3, 0:3])
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (3, 4), name="x")
        with pytest.raises(ShapeError):
            tf.slice_(x, (2, 0), (2, 4))
        with pytest.raises(ShapeError):
            tf.slice_(x, (0,), (3,))


def test_log_softmax_forward():
    out = run(tf.log_softmax, X)
    np.testing.assert_allclose(np.exp(out).sum(axis=-1), np.ones(3), rtol=1e-5)
    big = (X * 500).astype(np.float32)
    assert np.isfinite(run(tf.log_softmax, big)).all()


def test_one_hot_forward():
    g = Graph()
    with g.as_default():
        idx = tf.placeholder("int64", (4,), name="idx")
        out = tf.one_hot(idx, 3)
    result = tf.Session(graph=g).run(out, {idx: np.array([0, 2, 1, 0])})
    np.testing.assert_array_equal(result, np.eye(3, dtype=np.float32)[[0, 2, 1, 0]])
    with g.as_default():
        with pytest.raises(ShapeError):
            tf.one_hot(idx, 0)


# --- gradients -----------------------------------------------------------------


@pytest.mark.parametrize(
    "name,builder,value",
    [
        ("abs", tf.abs_, X + np.sign(X) * 0.1),  # away from the kink
        ("leaky_relu", lambda x: tf.leaky_relu(x, 0.3), X + 0.05),
        ("softplus", tf.softplus, X),
        ("clip", lambda x: tf.clip_by_value(x, -10, 10), X),  # inside range
        ("squeeze", lambda x: tf.squeeze(tf.expand_dims(x, 1), 1), X),
        ("slice", lambda x: tf.slice_(x, (0, 1), (3, 2)), X),
        ("log_softmax", tf.log_softmax, X),
    ],
)
def test_extra_op_gradients(name, builder, value):
    check_gradient(builder, value)


def test_clip_gradient_zero_outside_range():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (3,), name="x")
        loss = tf.reduce_sum(tf.clip_by_value(x, -1.0, 1.0))
        (grad,) = tf.gradients(loss, [x])
    out = tf.Session(graph=g).run(
        grad, {x: np.array([-5.0, 0.0, 5.0], np.float32)}
    )
    np.testing.assert_allclose(out, [0.0, 1.0, 0.0])


# --- pipeline ------------------------------------------------------------------


def test_extra_ops_survive_freeze_and_lite():
    g = Graph()
    rng = np.random.default_rng(3)
    with g.as_default():
        x = tf.placeholder("float32", (None, 4), name="x")
        h = tf.layers.dense(x, 6, name="fc", rng=rng)
        h = tf.leaky_relu(h, 0.1)
        h = tf.clip_by_value(h, -3.0, 3.0)
        out = tf.log_softmax(h)
    for var in g.get_collection("global_variables"):
        var.initialize()
    data = RNG.normal(size=(2, 4)).astype(np.float32)
    reference = tf.Session(graph=g).run(out, {x: data})

    frozen = freeze_graph([out], inputs=[x])
    imported = import_graph(frozen)
    np.testing.assert_array_equal(
        tf.Session(graph=imported.graph).run(
            imported.outputs[0], {imported.inputs[0]: data}
        ),
        reference,
    )
    model = LiteConverter("extra").convert(frozen)
    interp = Interpreter(model)
    interp.allocate_tensors()
    np.testing.assert_array_equal(interp.invoke(data)[0], reference)
