"""Graph core: naming, lookup, collections, operator sugar."""

import numpy as np
import pytest

import repro.tensor as tf
from repro.errors import GraphError
from repro.tensor.graph import Graph, get_default_graph, reset_default_graph


def test_unique_names():
    g = Graph()
    with g.as_default():
        a = tf.constant(1.0, name="c")
        b = tf.constant(2.0, name="c")
    assert a.op.name == "c"
    assert b.op.name == "c_1"


def test_default_graph_stack():
    outer = get_default_graph()
    g = Graph()
    with g.as_default():
        assert get_default_graph() is g
        inner = Graph()
        with inner.as_default():
            assert get_default_graph() is inner
        assert get_default_graph() is g
    assert get_default_graph() is outer


def test_get_tensor_by_name():
    g = Graph()
    with g.as_default():
        c = tf.constant([1.0, 2.0], name="vals")
    assert g.get_tensor("vals") is c
    assert g.get_tensor("vals:0") is c
    with pytest.raises(GraphError):
        g.get_tensor("vals:3")
    with pytest.raises(GraphError):
        g.get_tensor("missing")


def test_collections():
    g = Graph()
    g.add_to_collection("things", 1)
    g.add_to_collection("things", 2)
    assert g.get_collection("things") == [1, 2]
    assert g.get_collection("empty") == []


def test_operator_sugar_builds_graph():
    g = Graph()
    with g.as_default():
        x = tf.constant([2.0, 3.0])
        y = ((x + 1.0) * 2.0 - 0.5) / 2.0
        z = -y
    sess = tf.Session(graph=g)
    np.testing.assert_allclose(sess.run(y), [2.75, 3.75])
    np.testing.assert_allclose(sess.run(z), [-2.75, -3.75])


def test_matmul_operator():
    g = Graph()
    with g.as_default():
        a = tf.constant(np.eye(2, dtype=np.float32))
        b = tf.constant([[1.0, 2.0], [3.0, 4.0]])
        c = a @ b
    np.testing.assert_allclose(tf.Session(graph=g).run(c), [[1, 2], [3, 4]])


def test_reset_default_graph():
    before = get_default_graph()
    after = reset_default_graph()
    assert after is not before
    assert get_default_graph() is after
