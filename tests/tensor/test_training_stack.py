"""Layers, losses, metrics, optimizers: end-to-end learning behaviour."""

import numpy as np
import pytest

import repro.tensor as tf
from repro.errors import GraphError, ShapeError
from repro.tensor.graph import Graph

RNG = np.random.default_rng(21)


def _toy_classification(n=128):
    x = RNG.normal(size=(n, 6)).astype(np.float32)
    labels = ((x[:, 0] + x[:, 1] > 0).astype(int) + (x[:, 2] > 0.5).astype(int))
    y = np.eye(3, dtype=np.float32)[labels]
    return x, y


def _build_classifier(optimizer):
    g = Graph()
    rng = np.random.default_rng(5)
    with g.as_default():
        x = tf.placeholder("float32", (None, 6), name="x")
        y = tf.placeholder("float32", (None, 3), name="y")
        h = tf.layers.dense(x, 16, activation="relu", name="h", rng=rng)
        logits = tf.layers.dense(h, 3, name="logits", rng=rng)
        loss = tf.losses.softmax_cross_entropy(y, logits)
        acc = tf.metrics.accuracy(y, logits)
        train = optimizer.minimize(loss)
        init = tf.global_variables_initializer(g)
    return g, x, y, loss, acc, train, init


@pytest.mark.parametrize(
    "optimizer",
    [
        tf.optimizers.GradientDescent(0.5),
        tf.optimizers.Momentum(0.1, momentum=0.9),
        tf.optimizers.Adam(0.02),
    ],
    ids=["sgd", "momentum", "adam"],
)
def test_optimizers_reduce_loss_and_reach_high_accuracy(optimizer):
    data_x, data_y = _toy_classification()
    g, x, y, loss, acc, train, init = _build_classifier(optimizer)
    sess = tf.Session(graph=g)
    sess.run(init)
    initial = sess.run(loss, {x: data_x, y: data_y})
    for _ in range(150):
        sess.run(train, {x: data_x, y: data_y})
    final_loss, final_acc = sess.run([loss, acc], {x: data_x, y: data_y})
    assert final_loss < initial * 0.5
    assert final_acc > 0.9


def test_learning_rate_validation():
    with pytest.raises(GraphError):
        tf.optimizers.GradientDescent(0.0)


def test_minimize_without_variables_fails():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2,), name="x")
        loss = tf.reduce_sum(tf.square(x))
        with pytest.raises(GraphError):
            tf.optimizers.GradientDescent(0.1).minimize(loss)


def test_loss_must_depend_on_all_variables():
    g = Graph()
    with g.as_default():
        used = tf.variable(np.ones(1, np.float32), name="used")
        tf.variable(np.ones(1, np.float32), name="unused")
        loss = tf.reduce_sum(tf.square(used.tensor))
        with pytest.raises(GraphError):
            tf.optimizers.GradientDescent(0.1).minimize(loss)


def test_mse_loss():
    g = Graph()
    with g.as_default():
        a = tf.placeholder("float32", (4,), name="a")
        b = tf.placeholder("float32", (4,), name="b")
        loss = tf.losses.mean_squared_error(a, b)
    out = tf.Session(graph=g).run(
        loss, {a: np.zeros(4, np.float32), b: np.full(4, 2.0, np.float32)}
    )
    assert out == pytest.approx(4.0)


def test_l2_regularization():
    g = Graph()
    with g.as_default():
        v = tf.variable(np.array([3.0, 4.0], np.float32), name="v")
        reg = tf.losses.l2_regularization([v], scale=0.1)
    v.initialize()
    assert tf.Session(graph=g).run(reg) == pytest.approx(2.5)


def test_accuracy_metric():
    g = Graph()
    with g.as_default():
        labels = tf.placeholder("float32", (None, 3), name="l")
        logits = tf.placeholder("float32", (None, 3), name="p")
        acc = tf.metrics.accuracy(labels, logits)
    out = tf.Session(graph=g).run(
        acc,
        {
            labels: np.eye(3, dtype=np.float32),
            logits: np.array(
                [[9, 0, 0], [0, 9, 0], [9, 0, 0]], dtype=np.float32
            ),
        },
    )
    assert out == pytest.approx(2 / 3)


def test_top_k_accuracy():
    g = Graph()
    with g.as_default():
        labels = tf.placeholder("float32", (None, 4), name="l")
        logits = tf.placeholder("float32", (None, 4), name="p")
        top2 = tf.metrics.top_k_accuracy(labels, logits, k=2)
    out = tf.Session(graph=g).run(
        top2,
        {
            labels: np.eye(4, dtype=np.float32)[[0, 1]],
            logits: np.array(
                [[5, 4, 0, 0], [5, 4, 0, 0]], dtype=np.float32
            ),
        },
    )
    assert out == pytest.approx(1.0)


def test_layers_shape_validation():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (None, 3, 3, 2), name="x")
        with pytest.raises(ShapeError):
            tf.layers.dense(x, 5)
        flat = tf.layers.flatten(x)
        assert flat.shape == (None, 18)
        with pytest.raises(ShapeError):
            tf.layers.conv2d(tf.layers.flatten(x), 4)


def test_batch_norm_normalizes_with_loaded_stats():
    g = Graph()
    rng = np.random.default_rng(0)
    with g.as_default():
        x = tf.placeholder("float32", (None, 4), name="x")
        y = tf.layers.batch_norm(x, name="bn")
        init = tf.global_variables_initializer(g)
    sess = tf.Session(graph=g)
    sess.run(init)
    data = rng.normal(loc=5.0, scale=2.0, size=(256, 4)).astype(np.float32)
    # Load moving statistics as a framework user would after training.
    for var in g.get_collection("global_variables"):
        if var.name.endswith("moving_mean"):
            var.load(data.mean(axis=0))
        if var.name.endswith("moving_var"):
            var.load(data.var(axis=0))
    out = sess.run(y, {x: data})
    assert abs(out.mean()) < 0.05
    assert abs(out.std() - 1.0) < 0.05


def test_mnist_cnn_learns_on_synthetic_data():
    from repro.data import synthetic_mnist
    from repro.models import mnist_cnn

    train, test = synthetic_mnist(n_train=1500, n_test=300, seed=3)
    graph, images, logits = mnist_cnn(np.random.default_rng(1))
    with graph.as_default():
        labels = tf.placeholder("float32", (None, 10), name="labels")
        loss = tf.losses.softmax_cross_entropy(labels, logits)
        acc = tf.metrics.accuracy(labels, logits)
        train_op = tf.optimizers.Adam(0.005).minimize(loss)
        init = tf.global_variables_initializer(graph)
    sess = tf.Session(graph=graph)
    sess.run(init)
    for epoch in range(2):
        for batch_x, batch_y in train.batches(64, shuffle_seed=epoch):
            sess.run(train_op, {images: batch_x, labels: batch_y})
    test_acc = sess.run(
        acc, {images: test.images, labels: test.one_hot_labels}
    )
    assert test_acc > 0.9


def test_batch_norm_training_mode_normalizes_and_updates_moving_stats():
    g = Graph()
    rng = np.random.default_rng(4)
    with g.as_default():
        x = tf.placeholder("float32", (None, 4), name="x")
        y = tf.layers.batch_norm(x, training=True, momentum=0.5, name="bn")
        init = tf.global_variables_initializer(g)
    sess = tf.Session(graph=g)
    sess.run(init)
    data = rng.normal(loc=3.0, scale=2.0, size=(512, 4)).astype(np.float32)
    out = sess.run(y, {x: data})
    # Batch statistics normalize the output directly in training mode.
    assert abs(out.mean()) < 0.05
    assert abs(out.std() - 1.0) < 0.05
    # Running the registered update ops moves the moving statistics
    # toward the batch statistics.
    updates = g.get_collection("update_ops")
    assert len(updates) == 2
    sess.run(updates, {x: data})
    moving_mean = next(
        v for v in g.get_collection("global_variables")
        if v.name.endswith("moving_mean")
    )
    np.testing.assert_allclose(
        moving_mean.value, 0.5 * data.mean(axis=0), rtol=0.05
    )


def test_batch_norm_training_gradients_flow_through_stats():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (None, 3), name="x")
        y = tf.layers.batch_norm(x, training=True, name="bn")
        loss = tf.reduce_sum(tf.square(y))
        (grad,) = tf.gradients(loss, [x])
        init = tf.global_variables_initializer(g)
    sess = tf.Session(graph=g)
    sess.run(init)
    data = np.random.default_rng(5).normal(size=(8, 3)).astype(np.float32)
    out = sess.run(grad, {x: data})
    assert out.shape == data.shape
    assert np.isfinite(out).all()
