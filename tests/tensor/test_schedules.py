"""Learning-rate schedules and gradient clipping."""

import numpy as np
import pytest

import repro.tensor as tf
from repro.errors import GraphError
from repro.tensor.graph import Graph
from repro.tensor.schedules import (
    ExponentialDecay,
    clip_by_global_norm,
    global_norm,
)


def test_exponential_decay_halves_on_schedule():
    g = Graph()
    schedule = ExponentialDecay(0.8, 0.5, decay_steps=4, graph=g)
    sess = tf.Session(graph=g)
    schedule.step.initialize()
    assert sess.run(schedule.tensor) == pytest.approx(0.8)
    for _ in range(4):
        sess.run(schedule.step_op())
    assert sess.run(schedule.tensor) == pytest.approx(0.4)
    for _ in range(4):
        sess.run(schedule.step_op())
    assert sess.run(schedule.tensor) == pytest.approx(0.2)


def test_schedule_validation():
    g = Graph()
    with pytest.raises(GraphError):
        ExponentialDecay(0.0, 0.5, 10, graph=g)
    with pytest.raises(GraphError):
        ExponentialDecay(0.1, 0.5, 0, graph=g)


def test_global_norm_value():
    g = Graph()
    with g.as_default():
        a = tf.constant([3.0, 0.0])
        b = tf.constant([[0.0, 4.0]])
        norm = global_norm([a, b])
    assert tf.Session(graph=g).run(norm) == pytest.approx(5.0)
    with pytest.raises(GraphError):
        global_norm([])


def test_clip_by_global_norm_scales_down_only_when_needed():
    g = Graph()
    with g.as_default():
        big = tf.constant([6.0, 8.0])      # norm 10
        (clipped_big,), norm = clip_by_global_norm([big], 5.0)
        small = tf.constant([0.3, 0.4])    # norm 0.5
        (clipped_small,), _ = clip_by_global_norm([small], 5.0)
    sess = tf.Session(graph=g)
    np.testing.assert_allclose(sess.run(clipped_big), [3.0, 4.0], rtol=1e-5)
    np.testing.assert_allclose(sess.run(clipped_small), [0.3, 0.4], rtol=1e-5)
    assert sess.run(norm) == pytest.approx(10.0)
    with g.as_default():
        with pytest.raises(GraphError):
            clip_by_global_norm([big], 0.0)


def test_scheduled_sgd_trains_and_decays():
    g = Graph()
    rng = np.random.default_rng(0)
    with g.as_default():
        x = tf.placeholder("float32", (None, 4), name="x")
        y = tf.placeholder("float32", (None, 1), name="y")
        pred = tf.layers.dense(x, 1, name="lin", rng=rng)
        loss = tf.losses.mean_squared_error(y, pred)
        schedule = ExponentialDecay(0.2, 0.5, decay_steps=10, graph=g)
        opt = tf.optimizers.GradientDescent(schedule.tensor)
        pairs = opt.compute_gradients(loss)
        clipped, _ = clip_by_global_norm([p[0] for p in pairs], 1.0)
        train = opt.apply_gradients(
            list(zip(clipped, [p[1] for p in pairs]))
        )
        init = tf.global_variables_initializer(g)
    sess = tf.Session(graph=g)
    sess.run(init)
    X = rng.normal(size=(32, 4)).astype(np.float32)
    Y = (X[:, :1] * 2).astype(np.float32)
    initial_lr = sess.run(schedule.tensor)
    initial_loss = sess.run(loss, {x: X, y: Y})
    for _ in range(30):
        sess.run([train, schedule.step_op()], {x: X, y: Y})
    assert sess.run(schedule.tensor) < initial_lr / 3
    assert sess.run(loss, {x: X, y: Y}) < initial_loss / 5


def test_adam_accepts_schedule_tensor():
    g = Graph()
    rng = np.random.default_rng(1)
    with g.as_default():
        x = tf.placeholder("float32", (None, 3), name="x")
        y = tf.placeholder("float32", (None, 1), name="y")
        pred = tf.layers.dense(x, 1, name="lin", rng=rng)
        loss = tf.losses.mean_squared_error(y, pred)
        schedule = ExponentialDecay(0.05, 0.9, decay_steps=5, graph=g)
        train = tf.optimizers.Adam(schedule.tensor).minimize(loss)
        init = tf.global_variables_initializer(g)
    sess = tf.Session(graph=g)
    sess.run(init)
    X = rng.normal(size=(16, 3)).astype(np.float32)
    Y = X[:, :1].astype(np.float32)
    before = sess.run(loss, {x: X, y: Y})
    for _ in range(40):
        sess.run([train, schedule.step_op()], {x: X, y: Y})
    assert sess.run(loss, {x: X, y: Y}) < before / 2
