"""Property-based tests over randomly generated network architectures.

Hypothesis builds random MLP/conv architectures; for each we assert the
core pipeline invariants the rest of the system relies on:
freeze → import → Lite conversion preserves outputs bit-for-bit, and
autodiff matches numeric gradients on the composed graph.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.tensor as tf
from repro.tensor.graph import Graph
from repro.tensor.lite import Interpreter, LiteConverter
from repro.tensor.saver import freeze_graph, import_graph

ACTIVATIONS = st.sampled_from([None, "relu", "tanh", "sigmoid"])

mlp_architectures = st.lists(
    st.tuples(st.integers(min_value=1, max_value=12), ACTIVATIONS),
    min_size=1,
    max_size=4,
)


def build_mlp(architecture, in_width=5, seed=0):
    graph = Graph()
    rng = np.random.default_rng(seed)
    with graph.as_default():
        x = tf.placeholder("float32", (None, in_width), name="x")
        net = x
        for index, (units, activation) in enumerate(architecture):
            net = tf.layers.dense(
                net, units, activation=activation, name=f"layer{index}", rng=rng
            )
    for var in graph.get_collection("global_variables"):
        var.initialize()
    return graph, x, net


@settings(max_examples=25, deadline=None)
@given(mlp_architectures, st.integers(min_value=0, max_value=2**31 - 1))
def test_freeze_lite_pipeline_preserves_outputs(architecture, seed):
    graph, x, out = build_mlp(architecture, seed=seed % 1000)
    data = np.random.default_rng(seed).normal(size=(3, 5)).astype(np.float32)
    reference = tf.Session(graph=graph).run(out, {x: data})

    frozen = freeze_graph([out], inputs=[x])
    imported = import_graph(frozen)
    via_import = tf.Session(graph=imported.graph).run(
        imported.outputs[0], {imported.inputs[0]: data}
    )
    np.testing.assert_array_equal(via_import, reference)

    model = LiteConverter("prop").convert(frozen)
    interp = Interpreter(model)
    interp.allocate_tensors()
    np.testing.assert_array_equal(interp.invoke(data)[0], reference)


@settings(max_examples=15, deadline=None)
@given(mlp_architectures)
def test_gradients_flow_to_every_trainable_variable(architecture):
    graph, x, out = build_mlp(architecture)
    with graph.as_default():
        loss = tf.reduce_sum(tf.square(out))
        trainables = [
            v for v in graph.get_collection("trainable_variables")
        ]
        grads = tf.gradients(loss, [v.tensor for v in trainables])
    sess = tf.Session(graph=graph)
    data = np.random.default_rng(0).normal(size=(2, 5)).astype(np.float32)
    values = sess.run(grads, {x: data})
    assert len(values) == len(trainables)
    for variable, grad in zip(trainables, values):
        assert grad.shape == tuple(variable.shape)
        assert np.isfinite(grad).all()


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),   # conv layers
    st.integers(min_value=1, max_value=6),   # filters
    st.booleans(),                           # pool after each conv
)
def test_conv_pipelines_survive_freeze(conv_layers, filters, pool):
    graph = Graph()
    rng = np.random.default_rng(1)
    size = 16
    with graph.as_default():
        x = tf.placeholder("float32", (None, size, size, 2), name="x")
        net = x
        for index in range(conv_layers):
            net = tf.layers.conv2d(
                net, filters, 3, activation="relu", name=f"c{index}", rng=rng
            )
            if pool and net.shape[1] is not None and net.shape[1] >= 2:
                net = tf.layers.max_pool(net, 2, name=f"p{index}")
        net = tf.layers.flatten(net, name="flat")
        logits = tf.layers.dense(net, 4, name="out", rng=rng)
    for var in graph.get_collection("global_variables"):
        var.initialize()
    data = np.random.default_rng(2).normal(size=(2, size, size, 2)).astype(
        np.float32
    )
    reference = tf.Session(graph=graph).run(logits, {x: data})
    imported = import_graph(freeze_graph([logits], inputs=[x]))
    out = tf.Session(graph=imported.graph).run(
        imported.outputs[0], {imported.inputs[0]: data}
    )
    np.testing.assert_array_equal(out, reference)
