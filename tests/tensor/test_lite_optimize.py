"""Model optimization (§7.2): quantization and pruning."""

import numpy as np
import pytest

import repro.tensor as tf
from repro.data import synthetic_mnist
from repro.errors import LiteConversionError
from repro.models import build_model
from repro.tensor.lite import Interpreter, LiteModel, prune, quantize
from repro.tensor.lite.optimize import (
    dequantize_array,
    optimization_report,
    quantize_array,
)


@pytest.fixture(scope="module")
def trained_model():
    """A genuinely trained MNIST model (so accuracy deltas are real)."""
    train, test = synthetic_mnist(n_train=1500, n_test=400, seed=30)
    built = build_model("mnist_cnn", seed=30)
    with built.graph.as_default():
        labels = tf.placeholder("float32", (None, 10), name="labels")
        loss = tf.losses.softmax_cross_entropy(labels, built.logits)
        step = tf.optimizers.Adam(0.005).minimize(loss)
        init = tf.global_variables_initializer(built.graph)
    sess = tf.Session(graph=built.graph)
    sess.run(init)
    for epoch in range(2):
        for bx, by in train.batches(64, shuffle_seed=epoch):
            sess.run(step, {built.input: bx, labels: by})
    return built.to_lite("mnist"), test


def _accuracy(model: LiteModel, test, n=200) -> float:
    interp = Interpreter(model)
    interp.allocate_tensors()
    outputs = interp.invoke(test.images[:n])[0]
    return float((np.argmax(outputs, axis=1) == test.labels[:n]).mean())


def test_quantize_array_roundtrip_error_is_bounded():
    rng = np.random.default_rng(0)
    array = rng.normal(size=(64, 32)).astype(np.float32)
    q, scale, zero_point = quantize_array(array)
    assert q.dtype == np.int8
    restored = dequantize_array(q, scale, zero_point)
    # Max error bounded by half a quantization step.
    assert np.abs(restored - array).max() <= scale * 0.51


def test_quantize_covers_zero():
    array = np.linspace(2.0, 3.0, 128, dtype=np.float32)  # all-positive
    q, scale, zero_point = quantize_array(array)
    restored = dequantize_array(q, scale, zero_point)
    assert np.abs(restored - array).max() <= scale * 0.51


def test_quantized_model_shrinks_4x_and_keeps_accuracy(trained_model):
    model, test = trained_model
    quantized = quantize(model)
    report = optimization_report(model, quantized)
    assert 3.2 < report["shrink_factor"] < 4.2
    baseline = _accuracy(model, test)
    quantized_accuracy = _accuracy(quantized, test)
    assert baseline > 0.9
    assert quantized_accuracy > baseline - 0.05  # near-lossless


def test_quantized_weight_scale_shrinks(trained_model):
    model, _ = trained_model
    quantized = quantize(model)
    assert (
        quantized.scales["weight_scale"]
        < model.scales["weight_scale"] * 0.3
    )


def test_pruned_model_accuracy_degrades_gracefully(trained_model):
    model, test = trained_model
    baseline = _accuracy(model, test)
    light = prune(model, 0.3)
    heavy = prune(model, 0.95)
    assert _accuracy(light, test) > baseline - 0.1
    assert _accuracy(heavy, test) < _accuracy(light, test) + 0.02
    assert light.size_bytes < model.size_bytes
    assert heavy.size_bytes < light.size_bytes


def test_prune_validation(trained_model):
    model, _ = trained_model
    with pytest.raises(LiteConversionError):
        prune(model, 1.0)
    with pytest.raises(LiteConversionError):
        prune(model, -0.1)


def test_optimized_models_run_on_plain_interpreter(trained_model):
    model, test = trained_model
    for optimized in (quantize(model), prune(model, 0.5)):
        restored = LiteModel.from_bytes(optimized.to_bytes())
        interp = Interpreter(restored)
        interp.allocate_tensors()
        label = interp.classify(test.images[:1])
        assert 0 <= label < 10


def test_unquantizable_model_rejected():
    g = tf.Graph()
    with g.as_default():
        x = tf.placeholder("float32", (None, 2), name="x")
        y = tf.square(x)
    from repro.tensor.lite import LiteConverter
    from repro.tensor.saver import export_graph

    model = LiteConverter("noweights").convert(export_graph([y], inputs=[x]))
    with pytest.raises(LiteConversionError):
        quantize(model)
    with pytest.raises(LiteConversionError):
        prune(model, 0.5)
