"""Array codec property tests (checkpoints/PS/CAS all depend on it)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.errors import CheckpointError
from repro.tensor.arrays import (
    decode_array,
    decode_array_dict,
    encode_array,
    encode_array_dict,
)


@settings(max_examples=40)
@given(
    st.sampled_from([np.float32, np.int64, np.uint8]).flatmap(
        lambda dtype: arrays(
            dtype=dtype,
            shape=array_shapes(max_dims=3, max_side=6),
            elements={
                np.float32: st.floats(-1e6, 1e6, width=32),
                np.int64: st.integers(-(2**40), 2**40),
                np.uint8: st.integers(0, 255),
            }[dtype],
        )
    )
)
def test_array_roundtrip_property(array):
    restored = decode_array(encode_array(array))
    assert restored.dtype == array.dtype
    np.testing.assert_array_equal(restored, array)


def test_non_contiguous_arrays_roundtrip():
    base = np.arange(24, dtype=np.float32).reshape(4, 6)
    view = base[::2, ::3]  # non-contiguous
    np.testing.assert_array_equal(decode_array(encode_array(view)), view)


def test_array_dict_roundtrip():
    original = {
        "w": np.ones((2, 3), np.float32),
        "b": np.zeros(3, np.float32),
    }
    restored = decode_array_dict(encode_array_dict(original))
    assert set(restored) == {"w", "b"}
    for name in original:
        np.testing.assert_array_equal(restored[name], original[name])


def test_malformed_inputs_rejected():
    with pytest.raises(CheckpointError):
        decode_array({"__ndarray__": True, "dtype": "float32"})
    with pytest.raises(CheckpointError):
        decode_array(
            {"__ndarray__": True, "dtype": "float32", "shape": [4], "data": b"xx"}
        )
