"""Checkpoints, freezing, graph import, Lite conversion and interpretation."""

import numpy as np
import pytest

import repro.tensor as tf
from repro.errors import CheckpointError, GraphError, LiteConversionError
from repro.tensor.graph import Graph
from repro.tensor.lite import Interpreter, LiteConverter, LiteModel
from repro.tensor.saver import Saver, export_graph, freeze_graph, import_graph

RNG = np.random.default_rng(13)


def build_trained_net():
    g = Graph()
    rng = np.random.default_rng(2)
    with g.as_default():
        x = tf.placeholder("float32", (None, 5), name="x")
        h = tf.layers.dense(x, 7, activation="relu", name="h", rng=rng)
        logits = tf.layers.dense(h, 3, name="out", rng=rng)
        init = tf.global_variables_initializer(g)
    sess = tf.Session(graph=g)
    sess.run(init)
    return g, x, logits, sess


# --- checkpoints ---------------------------------------------------------------


def test_checkpoint_roundtrip():
    g, x, logits, sess = build_trained_net()
    data = RNG.normal(size=(4, 5)).astype(np.float32)
    reference = sess.run(logits, {x: data})
    blob = Saver(g).to_bytes()

    # Perturb, then restore.
    for var in g.get_collection("global_variables"):
        var.load(var.value + 1.0)
    assert not np.allclose(sess.run(logits, {x: data}), reference)
    restored = Saver(g).restore(blob)
    assert restored == len(g.get_collection("global_variables"))
    np.testing.assert_allclose(sess.run(logits, {x: data}), reference)


def test_checkpoint_into_fresh_graph_same_architecture():
    g1, x1, logits1, sess1 = build_trained_net()
    blob = Saver(g1).to_bytes()
    g2, x2, logits2, sess2 = build_trained_net()
    Saver(g2).restore(blob)
    data = RNG.normal(size=(3, 5)).astype(np.float32)
    np.testing.assert_allclose(
        sess1.run(logits1, {x1: data}), sess2.run(logits2, {x2: data}), rtol=1e-6
    )


def test_checkpoint_errors():
    g = Graph()
    with pytest.raises(CheckpointError):
        Saver(g).to_bytes()  # no variables
    with g.as_default():
        v = tf.variable(np.ones(1, np.float32), name="v")
    with pytest.raises(CheckpointError):
        Saver(g).to_bytes()  # uninitialized
    v.initialize()
    blob = Saver(g).to_bytes()
    with pytest.raises(CheckpointError):
        Saver(g).restore(b"garbage")
    g2 = Graph()
    with g2.as_default():
        tf.variable(np.ones(1, np.float32), name="other").initialize()
    with pytest.raises(CheckpointError):
        Saver(g2).restore(blob)  # missing variable name


# --- freeze / import -------------------------------------------------------------


def test_freeze_import_preserves_outputs():
    g, x, logits, sess = build_trained_net()
    data = RNG.normal(size=(6, 5)).astype(np.float32)
    reference = sess.run(logits, {x: data})
    frozen = freeze_graph([logits], inputs=[x])
    imported = import_graph(frozen)
    out = tf.Session(graph=imported.graph).run(
        imported.outputs[0], {imported.inputs[0]: data}
    )
    np.testing.assert_allclose(out, reference, rtol=1e-5)


def test_freeze_captures_values_not_references():
    g, x, logits, sess = build_trained_net()
    data = RNG.normal(size=(2, 5)).astype(np.float32)
    frozen = freeze_graph([logits], inputs=[x])
    reference = sess.run(logits, {x: data})
    for var in g.get_collection("global_variables"):
        var.load(var.value * 5)
    imported = import_graph(frozen)
    out = tf.Session(graph=imported.graph).run(
        imported.outputs[0], {imported.inputs[0]: data}
    )
    np.testing.assert_allclose(out, reference, rtol=1e-5)


def test_scales_survive_freeze_and_import():
    g, x, logits, _ = build_trained_net()
    g.cost_scale = 3.0
    g.weight_scale = 7.0
    g.op_scale = 2.0
    g.activation_scale = 5.0
    imported = import_graph(freeze_graph([logits], inputs=[x]))
    assert imported.graph.cost_scale == 3.0
    assert imported.graph.weight_scale == 7.0
    assert imported.graph.op_scale == 2.0
    assert imported.graph.activation_scale == 5.0


def test_export_rejects_unfrozen_variables():
    g, x, logits, _ = build_trained_net()
    with pytest.raises(GraphError):
        export_graph([logits], inputs=[x])


def test_freeze_rejects_training_ops():
    g, x, logits, sess = build_trained_net()
    with g.as_default():
        y = tf.placeholder("float32", (None, 3), name="y")
        loss = tf.losses.softmax_cross_entropy(y, logits)
        train = tf.optimizers.GradientDescent(0.1).minimize(loss)
    with pytest.raises(GraphError):
        freeze_graph([train])


def test_import_rejects_garbage():
    with pytest.raises(CheckpointError):
        import_graph(b"not-a-graph")


# --- Lite -------------------------------------------------------------------


def test_lite_conversion_and_equivalence():
    g, x, logits, sess = build_trained_net()
    data = RNG.normal(size=(4, 5)).astype(np.float32)
    reference = sess.run(logits, {x: data})
    model = LiteConverter("net").convert(freeze_graph([logits], inputs=[x]))
    interp = Interpreter(model)
    interp.allocate_tensors()
    np.testing.assert_allclose(interp.invoke(data)[0], reference, rtol=1e-5)
    assert interp.classify(data[:1]) == int(np.argmax(reference[0]))


def test_lite_model_serialization_roundtrip():
    g, x, logits, _ = build_trained_net()
    model = LiteConverter("net").convert(
        freeze_graph([logits], inputs=[x]), declared_size=42_000_000
    )
    restored = LiteModel.from_bytes(model.to_bytes())
    assert restored.size_bytes == 42_000_000
    assert restored.name == "net"
    interp = Interpreter(restored)
    interp.allocate_tensors()
    assert len(interp.input_names) == 1


def test_lite_folds_identity_ops():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (None, 2), name="x")
        y = tf.identity(tf.stop_gradient(tf.identity(tf.square(x))))
    model = LiteConverter("folded").convert(export_graph([y], inputs=[x]))
    from repro.crypto import encoding

    ops_kept = [r["op_type"] for r in encoding.decode(model.graph_blob)["ops"]]
    assert "identity" not in ops_kept
    assert "stop_gradient" not in ops_kept
    interp = Interpreter(model)
    interp.allocate_tensors()
    out = interp.invoke(np.array([[2.0, 3.0]], np.float32))[0]
    np.testing.assert_allclose(out, [[4.0, 9.0]])


def test_lite_rejects_malformed_inputs():
    with pytest.raises(LiteConversionError):
        LiteConverter().convert(b"junk")
    with pytest.raises(LiteConversionError):
        LiteModel.from_bytes(b"junk")


def test_interpreter_requires_allocation_and_validates_inputs():
    g, x, logits, _ = build_trained_net()
    model = LiteConverter().convert(freeze_graph([logits], inputs=[x]))
    interp = Interpreter(model)
    with pytest.raises(LiteConversionError):
        interp.invoke(np.zeros((1, 5), np.float32))
    interp.allocate_tensors()
    with pytest.raises(LiteConversionError):
        interp.invoke([np.zeros((1, 5), np.float32)] * 2)


def test_interpreter_dict_inputs():
    g, x, logits, sess = build_trained_net()
    model = LiteConverter().convert(freeze_graph([logits], inputs=[x]))
    interp = Interpreter(model)
    interp.allocate_tensors()
    data = RNG.normal(size=(2, 5)).astype(np.float32)
    out = interp.invoke({interp.input_names[0]: data})[0]
    np.testing.assert_allclose(out, sess.run(logits, {x: data}), rtol=1e-5)
