"""Forward semantics of every op versus plain numpy."""

import numpy as np
import pytest

import repro.tensor as tf
from repro.errors import GraphError, ShapeError
from repro.tensor.graph import Graph
from repro.tensor.ops.core import (
    broadcast_shape,
    greater,
    minimum,
    tile,
    unbroadcast_to,
)

RNG = np.random.default_rng(7)


def run(builder, *arrays):
    """Build a graph applying ``builder`` to placeholders, run it."""
    g = Graph()
    with g.as_default():
        placeholders = [
            tf.placeholder("float32", a.shape, name=f"in{i}")
            for i, a in enumerate(arrays)
        ]
        out = builder(*placeholders)
    feed = dict(zip(placeholders, arrays))
    return tf.Session(graph=g).run(out, feed)


A = RNG.normal(size=(3, 4)).astype(np.float32)
B = RNG.normal(size=(3, 4)).astype(np.float32) + 2.0
POS = np.abs(A) + 0.5


@pytest.mark.parametrize(
    "builder,reference",
    [
        (tf.neg, lambda a: -a),
        (tf.square, np.square),
        (tf.relu, lambda a: np.maximum(a, 0)),
        (tf.tanh, np.tanh),
        (tf.sigmoid, lambda a: 1 / (1 + np.exp(-a))),
        (tf.exp, np.exp),
        (tf.identity, lambda a: a),
        (tf.stop_gradient, lambda a: a),
    ],
)
def test_unary_ops(builder, reference):
    np.testing.assert_allclose(run(builder, A), reference(A), rtol=1e-5)


def test_sqrt_and_log_on_positive():
    np.testing.assert_allclose(run(tf.sqrt, POS), np.sqrt(POS), rtol=1e-5)
    np.testing.assert_allclose(run(tf.log, POS), np.log(POS), rtol=1e-5)


@pytest.mark.parametrize(
    "builder,reference",
    [
        (tf.add, np.add),
        (tf.sub, np.subtract),
        (tf.mul, np.multiply),
        (tf.div, np.divide),
        (tf.maximum, np.maximum),
        (minimum, np.minimum),
    ],
)
def test_binary_ops(builder, reference):
    np.testing.assert_allclose(run(builder, A, B), reference(A, B), rtol=1e-5)


def test_broadcasting_binary():
    bias = RNG.normal(size=(4,)).astype(np.float32)
    np.testing.assert_allclose(
        run(tf.add, A, bias), A + bias, rtol=1e-5
    )


def test_comparisons():
    assert (run(tf.equal, A, A) == np.equal(A, A)).all()
    assert (run(greater, A, B) == np.greater(A, B)).all()


def test_cast():
    out = run(lambda x: tf.cast(x, "int64"), A * 10)
    assert out.dtype == np.int64


def test_matmul_and_shape_errors():
    a = RNG.normal(size=(2, 3)).astype(np.float32)
    b = RNG.normal(size=(3, 5)).astype(np.float32)
    np.testing.assert_allclose(run(tf.matmul, a, b), a @ b, rtol=1e-5)
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2, 3))
        y = tf.placeholder("float32", (4, 5))
        with pytest.raises(ShapeError):
            tf.matmul(x, y)
        with pytest.raises(ShapeError):
            tf.matmul(x, tf.placeholder("float32", (3,)))


@pytest.mark.parametrize("axis", [None, 0, 1, -1])
@pytest.mark.parametrize("keepdims", [False, True])
def test_reductions(axis, keepdims):
    for builder, reference in [
        (tf.reduce_sum, np.sum),
        (tf.reduce_mean, np.mean),
        (tf.reduce_max, np.max),
    ]:
        out = run(lambda x: builder(x, axis=axis, keepdims=keepdims), A)
        np.testing.assert_allclose(
            out, reference(A, axis=axis, keepdims=keepdims), rtol=1e-5
        )


def test_softmax_rows_sum_to_one():
    out = run(tf.softmax, A)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(3), rtol=1e-5)
    # Stability under large logits.
    big = (A * 1000).astype(np.float32)
    assert np.isfinite(run(tf.softmax, big)).all()


def test_argmax():
    out = run(lambda x: tf.argmax(x, axis=1), A)
    np.testing.assert_array_equal(out, np.argmax(A, axis=1))


def test_reshape_with_none_batch():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (None, 4))
        y = tf.reshape(x, (None, 2, 2))
    out = tf.Session(graph=g).run(y, {x: A[:2]})
    assert out.shape == (2, 2, 2)


def test_transpose_and_validation():
    np.testing.assert_array_equal(
        run(lambda x: tf.transpose(x, (1, 0)), A), A.T
    )
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2, 3))
        with pytest.raises(ShapeError):
            tf.transpose(x, (0, 0))


def test_concat():
    out = run(lambda x, y: tf.concat([x, y], axis=1), A, B)
    np.testing.assert_array_equal(out, np.concatenate([A, B], axis=1))
    with pytest.raises(GraphError):
        tf.concat([], axis=0)


def test_pad():
    out = run(lambda x: tf.pad(x, [(1, 2), (0, 1)]), A)
    np.testing.assert_array_equal(out, np.pad(A, [(1, 2), (0, 1)]))


def test_expand_dims_and_tile():
    out = run(lambda x: tf.expand_dims(x, 0), A)
    assert out.shape == (1, 3, 4)
    out = run(lambda x: tile(x, (2, 1)), A)
    np.testing.assert_array_equal(out, np.tile(A, (2, 1)))


def test_unbroadcast_to():
    g = Graph()
    with g.as_default():
        grad = tf.placeholder("float32", (3, 4))
        ref = tf.placeholder("float32", (4,))
        out = unbroadcast_to(grad, ref)
    result = tf.Session(graph=g).run(out, {grad: A, ref: A[0]})
    np.testing.assert_allclose(result, A.sum(axis=0), rtol=1e-5)


def test_broadcast_shape_static():
    assert broadcast_shape((3, 4), (4,)) == (3, 4)
    assert broadcast_shape((None, 4), (4,)) == (None, 4)
    assert broadcast_shape((3, 1), (1, 5)) == (3, 5)
    with pytest.raises(ShapeError):
        broadcast_shape((3, 4), (5,))


def test_constant_dtype_coercion():
    c = tf.constant(1.5, graph=Graph())
    assert c.dtype == "float32"
