"""Neural-net ops: conv/pool forward vs naive references, gradients."""

import numpy as np
import pytest

import repro.tensor as tf
from repro.errors import ShapeError
from repro.tensor.graph import Graph

RNG = np.random.default_rng(3)


def naive_conv2d(x, filters, stride, padding):
    n, h, w, c = x.shape
    kh, kw, _, co = filters.shape
    if padding == "SAME":
        out_h = -(-h // stride)
        out_w = -(-w // stride)
        pad_h = max((out_h - 1) * stride + kh - h, 0)
        pad_w = max((out_w - 1) * stride + kw - w, 0)
        x = np.pad(
            x,
            (
                (0, 0),
                (pad_h // 2, pad_h - pad_h // 2),
                (pad_w // 2, pad_w - pad_w // 2),
                (0, 0),
            ),
        )
    else:
        out_h = (h - kh) // stride + 1
        out_w = (w - kw) // stride + 1
    out = np.zeros((n, out_h, out_w, co), dtype=np.float32)
    for b in range(n):
        for i in range(out_h):
            for j in range(out_w):
                patch = x[b, i * stride : i * stride + kh, j * stride : j * stride + kw, :]
                for k in range(co):
                    out[b, i, j, k] = np.sum(patch * filters[:, :, :, k])
    return out


@pytest.mark.parametrize("stride", [1, 2])
@pytest.mark.parametrize("padding", ["SAME", "VALID"])
def test_conv2d_matches_naive(stride, padding):
    x = RNG.normal(size=(2, 6, 7, 3)).astype(np.float32)
    filters = RNG.normal(size=(3, 3, 3, 4)).astype(np.float32)
    g = Graph()
    with g.as_default():
        xin = tf.placeholder("float32", x.shape)
        w = tf.constant(filters)
        y = tf.nn.conv2d(xin, w, stride=stride, padding=padding)
    out = tf.Session(graph=g).run(y, {xin: x})
    np.testing.assert_allclose(
        out, naive_conv2d(x, filters, stride, padding), rtol=1e-4, atol=1e-4
    )


def test_conv2d_gradients_numeric():
    x = RNG.normal(size=(1, 6, 6, 2)).astype(np.float32)
    filters = RNG.normal(size=(3, 3, 2, 3)).astype(np.float32) * 0.3

    g = Graph()
    with g.as_default():
        xin = tf.placeholder("float32", x.shape)
        w = tf.variable(filters, name="w")
        y = tf.nn.conv2d(xin, w.tensor, stride=2, padding="SAME")
        loss = tf.reduce_sum(tf.square(y))
        grad_x, grad_w = tf.gradients(loss, [xin, w.tensor])
    for var in g.get_collection("global_variables"):
        var.initialize()
    sess = tf.Session(graph=g)
    ax = sess.run(grad_x, {xin: x})
    aw = sess.run(grad_w, {xin: x})

    eps = 1e-2
    for idx in [(0, 1, 2, 0), (0, 5, 5, 1)]:
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        numeric = (sess.run(loss, {xin: xp}) - sess.run(loss, {xin: xm})) / (2 * eps)
        assert ax[idx] == pytest.approx(numeric, rel=0.05, abs=1e-2)
    for idx in [(0, 0, 0, 0), (2, 2, 1, 2)]:
        orig = w.value.copy()
        wp = orig.copy(); wp[idx] += eps
        w.load(wp); lp = sess.run(loss, {xin: x})
        wm = orig.copy(); wm[idx] -= eps
        w.load(wm); lm = sess.run(loss, {xin: x})
        w.load(orig)
        numeric = (lp - lm) / (2 * eps)
        assert aw[idx] == pytest.approx(numeric, rel=0.05, abs=1e-2)


def test_conv2d_shape_validation():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (1, 6, 6, 2))
        bad_filters = tf.placeholder("float32", (3, 3, 5, 4))
        with pytest.raises(ShapeError):
            tf.nn.conv2d(x, bad_filters)
        with pytest.raises(ShapeError):
            tf.nn.conv2d(x, tf.placeholder("float32", (3, 3, 2, 4)), padding="WRONG")


def test_max_pool_and_avg_pool():
    x = RNG.normal(size=(2, 4, 6, 3)).astype(np.float32)
    g = Graph()
    with g.as_default():
        xin = tf.placeholder("float32", x.shape)
        mp = tf.nn.max_pool(xin, 2)
        ap = tf.nn.avg_pool(xin, 2)
    sess = tf.Session(graph=g)
    mp_out, ap_out = sess.run([mp, ap], {xin: x})
    view = x.reshape(2, 2, 2, 3, 2, 3)
    np.testing.assert_allclose(mp_out, view.max(axis=(2, 4)), rtol=1e-5)
    np.testing.assert_allclose(ap_out, view.mean(axis=(2, 4)), rtol=1e-5)


def test_overlapping_pool_rejected():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (1, 4, 4, 1))
        with pytest.raises(ShapeError):
            tf.nn.max_pool(x, window=3, stride=1)


def test_pool_gradients_numeric():
    x = (RNG.normal(size=(1, 4, 4, 2)) * 3).astype(np.float32)
    for pool in (tf.nn.max_pool, tf.nn.avg_pool):
        g = Graph()
        with g.as_default():
            xin = tf.placeholder("float32", x.shape)
            loss = tf.reduce_sum(tf.square(pool(xin, 2)))
            (grad,) = tf.gradients(loss, [xin])
        sess = tf.Session(graph=g)
        analytic = sess.run(grad, {xin: x})
        eps = 1e-2
        idx = (0, 1, 2, 0)
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        numeric = (sess.run(loss, {xin: xp}) - sess.run(loss, {xin: xm})) / (2 * eps)
        assert analytic[idx] == pytest.approx(numeric, rel=0.05, abs=1e-2)


def test_bias_add_and_gradient():
    x = RNG.normal(size=(2, 5)).astype(np.float32)
    bias = RNG.normal(size=(5,)).astype(np.float32)
    g = Graph()
    with g.as_default():
        xin = tf.placeholder("float32", x.shape)
        b = tf.placeholder("float32", bias.shape)
        y = tf.nn.bias_add(xin, b)
        loss = tf.reduce_sum(tf.square(y))
        grad_b, = tf.gradients(loss, [b])
    sess = tf.Session(graph=g)
    np.testing.assert_allclose(sess.run(y, {xin: x, b: bias}), x + bias, rtol=1e-5)
    analytic = sess.run(grad_b, {xin: x, b: bias})
    np.testing.assert_allclose(analytic, (2 * (x + bias)).sum(axis=0), rtol=1e-4)


def test_softmax_xent_matches_manual():
    logits = RNG.normal(size=(4, 5)).astype(np.float32)
    labels = np.eye(5, dtype=np.float32)[[0, 2, 4, 1]]
    g = Graph()
    with g.as_default():
        lg = tf.placeholder("float32", logits.shape)
        lb = tf.placeholder("float32", labels.shape)
        loss_vec = tf.nn.softmax_cross_entropy_with_logits(lb, lg)
    out = tf.Session(graph=g).run(loss_vec, {lg: logits, lb: labels})
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_softmax = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    expected = -(labels * log_softmax).sum(axis=1)
    np.testing.assert_allclose(out, expected, rtol=1e-5)


def test_softmax_xent_gradient_is_probs_minus_labels():
    logits = RNG.normal(size=(3, 4)).astype(np.float32)
    labels = np.eye(4, dtype=np.float32)[[1, 0, 3]]
    g = Graph()
    with g.as_default():
        lg = tf.placeholder("float32", logits.shape)
        lb = tf.placeholder("float32", labels.shape)
        loss = tf.reduce_sum(tf.nn.softmax_cross_entropy_with_logits(lb, lg))
        (grad,) = tf.gradients(loss, [lg])
    out = tf.Session(graph=g).run(grad, {lg: logits, lb: labels})
    e = np.exp(logits - logits.max(axis=1, keepdims=True))
    probs = e / e.sum(axis=1, keepdims=True)
    np.testing.assert_allclose(out, probs - labels, rtol=1e-4, atol=1e-5)


def test_dropout_forward_and_gradient_share_mask():
    x = np.ones((4, 100), dtype=np.float32)
    g = Graph()
    with g.as_default():
        xin = tf.placeholder("float32", x.shape)
        y = tf.nn.dropout(xin, rate=0.5, seed=42)
        loss = tf.reduce_sum(y)
        (grad,) = tf.gradients(loss, [xin])
    sess = tf.Session(graph=g)
    y_val, grad_val = sess.run([y, grad], {xin: x})
    # Inverted dropout: survivors are scaled by 1/(1-rate).
    survivors = y_val != 0
    assert 0.3 < survivors.mean() < 0.7
    np.testing.assert_allclose(y_val[survivors], 2.0, rtol=1e-5)
    # Gradient mask must match the forward mask exactly.
    np.testing.assert_array_equal(grad_val != 0, survivors)


def test_dropout_rate_validation():
    g = Graph()
    with g.as_default():
        x = tf.placeholder("float32", (2, 2))
        with pytest.raises(ShapeError):
            tf.nn.dropout(x, rate=1.0)
