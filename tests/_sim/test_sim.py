"""Simulation substrate: clock, RNG, trace."""

import pytest

from repro._sim import DeterministicRng, EventTrace, SimClock
from repro._sim.units import Gbps, Mbps, bytes_to_pages


def test_clock_advances_monotonically():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == pytest.approx(2.0)


def test_clock_rejects_negative_advance():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)
    with pytest.raises(ValueError):
        SimClock(start=-1.0)


def test_advance_to_is_idempotent_backwards():
    clock = SimClock()
    clock.advance(5.0)
    clock.advance_to(3.0)  # in the past: no-op
    assert clock.now == 5.0
    clock.advance_to(7.0)
    assert clock.now == 7.0


def test_clock_observers():
    clock = SimClock()
    seen = []
    clock.subscribe(lambda old, new: seen.append((old, new)))
    clock.advance(1.0)
    clock.advance(2.0)
    assert seen == [(0.0, 1.0), (1.0, 3.0)]


def test_clock_measure_span():
    clock = SimClock()
    with clock.measure() as span:
        clock.advance(0.25)
    assert span.elapsed == pytest.approx(0.25)


def test_rng_determinism():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert a.random_bytes(64) == b.random_bytes(64)
    assert a.random_bytes(16) == b.random_bytes(16)  # stream continues


def test_rng_children_independent():
    root = DeterministicRng(1)
    assert root.child("a").random_bytes(8) != root.child("b").random_bytes(8)
    # Child derivation is stable regardless of parent consumption.
    again = DeterministicRng(1)
    again.random_bytes(100)
    assert root.child("a").seed == again.child("a").seed


def test_rng_choice_and_validation():
    rng = DeterministicRng(5)
    assert rng.choice([7]) == 7
    with pytest.raises(ValueError):
        rng.choice([])
    with pytest.raises(ValueError):
        rng.random_bytes(-1)


def test_trace_spans_and_breakdown():
    clock = SimClock()
    trace = EventTrace(clock)
    with trace.span("phase-a"):
        clock.advance(1.0)
    with trace.span("phase-b", detail="x"):
        clock.advance(2.0)
    trace.record("phase-a", 0.5)
    breakdown = trace.breakdown()
    assert breakdown["phase-a"] == pytest.approx(1.5)
    assert breakdown["phase-b"] == pytest.approx(2.0)
    assert trace.total() == pytest.approx(3.5)
    assert trace.total("phase-b") == pytest.approx(2.0)
    trace.clear()
    assert trace.events == []


def test_units():
    assert Mbps(8) == 1e6
    assert Gbps(1) == 1.25e8
    assert bytes_to_pages(1) == 1
    assert bytes_to_pages(4096) == 1
    assert bytes_to_pages(4097) == 2
    with pytest.raises(ValueError):
        bytes_to_pages(-1)
