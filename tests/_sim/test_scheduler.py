"""Unit tests for the global event-heap scheduler (PR 6 tentpole)."""

from __future__ import annotations

import pytest

from repro._sim import Completion, Scheduler, SchedulerError, SimClock
from repro.errors import ReproError


class TestHeapOrdering:
    def test_events_run_in_timestamp_order(self):
        sched = Scheduler()
        order = []
        sched.schedule(3.0, lambda: order.append("c"))
        sched.schedule(1.0, lambda: order.append("a"))
        sched.schedule(2.0, lambda: order.append("b"))
        sched.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sched = Scheduler()
        order = []
        for name in ["first", "second", "third"]:
            sched.schedule(5.0, lambda n=name: order.append(n))
        sched.run()
        assert order == ["first", "second", "third"]

    def test_events_scheduled_during_execution_interleave(self):
        sched = Scheduler()
        order = []

        def spawner():
            order.append("spawner")
            # Earlier than the pending t=2 event: must run before it.
            sched.schedule(1.5, lambda: order.append("child"))

        sched.schedule(1.0, spawner)
        sched.schedule(2.0, lambda: order.append("late"))
        sched.run()
        assert order == ["spawner", "child", "late"]

    def test_run_until_time_bound(self):
        sched = Scheduler()
        order = []
        sched.schedule(1.0, lambda: order.append(1))
        sched.schedule(2.0, lambda: order.append(2))
        sched.schedule(3.0, lambda: order.append(3))
        executed = sched.run(until=2.0)
        assert executed == 2
        assert order == [1, 2]
        assert sched.pending() == 1

    def test_cancelled_event_is_skipped_and_not_counted(self):
        sched = Scheduler()
        order = []
        victim = sched.schedule(1.0, lambda: order.append("victim"))
        sched.schedule(2.0, lambda: order.append("survivor"))
        victim.cancel()
        sched.run()
        assert order == ["survivor"]
        assert sched.events_processed == 1
        assert sched.events_scheduled == 2

    def test_negative_time_rejected(self):
        sched = Scheduler()
        with pytest.raises(SchedulerError):
            sched.schedule(-1.0, lambda: None)
        with pytest.raises(SchedulerError):
            sched.schedule_after(SimClock(), -0.5, lambda: None)

    def test_scheduler_error_is_a_repro_error(self):
        assert issubclass(SchedulerError, ReproError)


class TestCompletion:
    def test_result_before_resolution_raises(self):
        completion = Completion("pending")
        with pytest.raises(SchedulerError):
            completion.result()

    def test_double_resolution_raises(self):
        completion = Completion("x")
        completion.resolve(1)
        with pytest.raises(SchedulerError):
            completion.resolve(2)

    def test_failure_reraises_from_result(self):
        completion = Completion("boom")
        completion.fail(ValueError("nope"))
        with pytest.raises(ValueError):
            completion.result()

    def test_waiters_run_in_attach_order(self):
        completion = Completion("w")
        order = []
        completion.add_waiter(lambda c: order.append("a"))
        completion.add_waiter(lambda c: order.append("b"))
        completion.resolve("v")
        assert order == ["a", "b"]

    def test_waiter_attached_after_done_runs_immediately(self):
        completion = Completion("late")
        completion.resolve(42)
        seen = []
        completion.add_waiter(lambda c: seen.append(c.value))
        assert seen == [42]


class TestTimersAndParking:
    def test_timer_advances_clock_to_due_time(self):
        sched = Scheduler()
        clock = SimClock()
        clock.advance(1.0)
        due = sched.run_until(sched.timer(clock, 0.5))
        assert due == pytest.approx(1.5)
        assert clock.now == pytest.approx(1.5)

    def test_timer_fires_clock_observers(self):
        sched = Scheduler()
        clock = SimClock()
        seen = []
        clock.subscribe(lambda old, new: seen.append(new))
        sched.run_until(sched.timer(clock, 2.0))
        assert seen and seen[-1] == pytest.approx(2.0)

    def test_run_until_deadlock_detected(self):
        sched = Scheduler()
        orphan = Completion("never")
        with pytest.raises(SchedulerError, match="deadlock"):
            sched.run_until(orphan)

    def test_run_until_is_reentrant(self):
        # An event handler parks on a nested completion whose resolver
        # is a *later* event: the inner drain must execute it, then the
        # outer drain completes normally.
        sched = Scheduler()
        clock = SimClock()
        outer = Completion("outer")
        trace = []

        def handler():
            trace.append("outer-start")
            inner = sched.timer(clock, 1.0, label="inner")
            sched.run_until(inner)
            trace.append("outer-end")
            outer.resolve("done")

        sched.schedule(0.0, handler)
        assert sched.run_until(outer) == "done"
        assert trace == ["outer-start", "outer-end"]
        assert clock.now == pytest.approx(1.0)


class TestActivities:
    def test_activity_parks_and_resumes_with_values(self):
        sched = Scheduler()
        clock = SimClock()

        def activity():
            first = yield sched.timer(clock, 1.0)
            second = yield sched.timer(clock, 2.0)
            return (first, second)

        done = sched.spawn(activity(), name="pair")
        sched.run()
        assert done.result() == (pytest.approx(1.0), pytest.approx(3.0))
        assert sched.activities_running == 0

    def test_failure_is_thrown_into_activity(self):
        sched = Scheduler()
        failing = Completion("doomed")

        def activity():
            try:
                yield failing
            except RuntimeError as exc:
                return f"caught: {exc}"

        done = sched.spawn(activity(), name="catcher")
        sched.schedule(1.0, lambda: failing.fail(RuntimeError("boom")))
        sched.run()
        assert done.result() == "caught: boom"

    def test_uncaught_activity_error_fails_the_handle(self):
        sched = Scheduler()

        def activity():
            yield sched.timer(SimClock(), 0.1)
            raise ValueError("exploded")

        done = sched.spawn(activity(), name="bomb")
        sched.run()
        with pytest.raises(ValueError):
            done.result()

    def test_yielding_non_completion_fails(self):
        sched = Scheduler()

        def activity():
            yield 42

        done = sched.spawn(activity(), name="bad")
        sched.run()
        with pytest.raises(SchedulerError, match="may only yield"):
            done.result()

    def test_two_activities_interleave_by_time(self):
        sched = Scheduler()
        a_clock, b_clock = SimClock(), SimClock()
        order = []

        def ticker(name, clock, period, ticks):
            for _ in range(ticks):
                yield sched.timer(clock, period)
                order.append((name, clock.now))

        sched.spawn(ticker("a", a_clock, 1.0, 3), name="a")
        sched.spawn(ticker("b", b_clock, 0.4, 3), name="b")
        sched.run()
        assert [name for name, _ in order] == ["b", "b", "a", "b", "a", "a"]

    def test_determinism_same_seed_same_event_sequence(self):
        def run_once():
            sched = Scheduler()
            clocks = [SimClock() for _ in range(4)]
            log = []

            def worker(index, clock):
                for step in range(3):
                    yield sched.timer(clock, 0.1 * (index + 1))
                    log.append((index, step, round(clock.now, 9)))

            for index, clock in enumerate(clocks):
                sched.spawn(worker(index, clock), name=f"w{index}")
            sched.run()
            return log, sched.events_processed

        first = run_once()
        second = run_once()
        assert first == second


class TestClockViews:
    def test_fleet_time_is_max_over_registered_clocks(self):
        sched = Scheduler()
        fast, slow = SimClock(), SimClock()
        sched.register_clock(fast)
        sched.register_clock(slow)
        fast.advance(5.0)
        slow.advance(2.0)
        assert sched.fleet_time() == pytest.approx(5.0)

    def test_register_clock_is_idempotent(self):
        sched = Scheduler()
        clock = SimClock()
        sched.register_clock(clock)
        sched.register_clock(clock)
        assert len(sched.clocks) == 1
