"""Threat-model test suite: every §2.3 attack is mounted and detected.

The adversary controls the OS, hypervisor, storage, and network
(Dolev-Yao).  Each test below plays one attack from the paper's threat
model against the protected system and asserts detection or refusal —
never silent acceptance.
"""

import copy

import numpy as np
import pytest

from repro.core import SecureTFPlatform
from repro.core.inference import (
    InferenceService,
    deploy_encrypted_model,
    service_runtime_config,
)
from repro.core.platform import PlatformConfig
from repro.data import synthetic_cifar10
from repro.enclave.sgx import SgxMode
from repro.errors import (
    AttestationError,
    FreshnessError,
    IagoError,
    RpcError,
    SecurityError,
    ShieldError,
)
from repro.models import pretrained_lite_model


@pytest.fixture
def deployment():
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=20))
    model = pretrained_lite_model("densenet", seed=0)
    session = "prod"
    platform.register_session(
        session, [service_runtime_config("svc", SgxMode.HW)]
    )
    path = deploy_encrypted_model(platform, session, platform.node(1), model)
    return platform, model, session, path


def test_attack_model_theft_from_storage(deployment):
    """A cloud admin reads the model file: sees only ciphertext."""
    platform, model, _, path = deployment
    stolen = platform.node(1).vfs.read(path).content
    assert model.graph_blob[:256] not in stolen
    # Even the canonical prefix of the serialized model is absent.
    assert model.to_bytes()[:64] not in stolen


def test_attack_model_file_tampering(deployment):
    """The OS flips bytes in the encrypted model: startup refuses."""
    platform, _, session, path = deployment
    raw = platform.node(1).vfs.read(path).content
    corrupted = bytearray(raw)
    corrupted[len(corrupted) // 2] ^= 0x01
    platform.node(1).vfs.tamper(path, bytes(corrupted))
    service = InferenceService(
        platform, session, platform.node(1), path, mode=SgxMode.HW, name="svc"
    )
    with pytest.raises((ShieldError, FreshnessError)):
        service.start()


def test_attack_model_rollback(deployment):
    """The OS restores an older (validly encrypted) model version:
    CAS's audit service catches the rollback."""
    platform, model, session, path = deployment
    node = platform.node(1)
    snapshot = copy.deepcopy(node.vfs.read(path))
    deploy_encrypted_model(platform, session, node, model, path=path)  # v1
    node.vfs.rollback(path, snapshot)
    service = InferenceService(
        platform, session, node, path, mode=SgxMode.HW, name="svc"
    )
    with pytest.raises(FreshnessError):
        service.start()


def test_attack_wrong_binary_cannot_join_session(deployment):
    """A trojaned service binary has a different measurement: CAS
    refuses to provision it with the session keys."""
    platform, _, session, path = deployment
    trojan = InferenceService(
        platform, session, platform.node(1), path, mode=SgxMode.HW,
        name="svc-trojan",  # different binary identity -> measurement
    )
    with pytest.raises((RpcError, SecurityError)):
        trojan.start()


def test_attack_simulation_mode_downgrade(deployment):
    """Running the right binary OUTSIDE real hardware (debug quote) is
    rejected by an HW-only policy — the attacker cannot strip SGX."""
    platform, _, session, path = deployment
    platform.register_session(
        "hw-and-sim",
        [service_runtime_config("svc", SgxMode.SIM)],
        accept_debug=False,  # policy demands hardware
    )
    downgraded = InferenceService(
        platform, "hw-and-sim", platform.node(1), path, mode=SgxMode.SIM,
        name="svc",
    )
    with pytest.raises((RpcError, AttestationError)):
        downgraded.start()


def test_attack_network_tampering_detected(deployment):
    """Dolev-Yao on the LAN: bit-flips on provisioning traffic are
    detected, not silently accepted."""
    platform, _, session, path = deployment

    def tamper(src, dst, data):
        if dst == "cas" and len(data) > 600:
            corrupted = bytearray(data)
            corrupted[-3] ^= 0x10
            return bytes(corrupted)
        return data

    platform.network.adversary = tamper
    service = InferenceService(
        platform, session, platform.node(1), path, mode=SgxMode.HW, name="svc"
    )
    with pytest.raises((RpcError, SecurityError)):
        service.start()
    platform.network.adversary = None


def test_attack_network_eavesdropping_sees_no_plaintext(deployment):
    """Everything on the wire during provisioning is either protocol
    framing or ciphertext — never the session secrets."""
    platform, _, session, path = deployment
    wire = []
    platform.network.adversary = lambda s, d, data: (wire.append(data), data)[1]
    service = InferenceService(
        platform, session, platform.node(1), path, mode=SgxMode.HW, name="svc"
    )
    service.start()
    platform.network.adversary = None
    fs_key = service.identity.fs_key
    tls_key = service.identity.tls_signing_key
    assert all(fs_key not in msg for msg in wire)
    assert all(tls_key not in msg for msg in wire)


def test_attack_hostile_kernel_iago(deployment):
    """The kernel lies about syscall results: Iago checks fire."""
    platform, _, session, path = deployment
    service = InferenceService(
        platform, session, platform.node(1), path, mode=SgxMode.HW, name="svc"
    )
    service.start()
    syscalls = service.runtime.syscalls
    syscalls.hostile_hook = lambda name, res: -7 if name == "stat" else res
    with pytest.raises(IagoError):
        syscalls.stat(path)
    syscalls.hostile_hook = None


def test_attack_forged_cas(deployment):
    """A fake CAS (attacker-run, no genuine enclave) fails the user's
    attestation step because its quote has no hardware root."""
    import dataclasses

    platform, _, _, _ = deployment
    genuine = platform.cas.attest()
    forged = dataclasses.replace(
        genuine,
        report=dataclasses.replace(
            genuine.report, attributes={"name": "cas", "mode": "hw"},
            measurement=b"\x66" * 32,
        ),
    )
    from repro.enclave.attestation import AttestationVerifier

    verifier = AttestationVerifier(platform.provisioning.public_key())
    with pytest.raises(AttestationError):
        verifier.verify(forged)


def test_attack_replay_of_provisioning_bundle(deployment):
    """Replaying a captured provisioning bundle to a different enclave
    is useless: the bundle is sealed to the original quote-bound key."""
    platform, _, session, path = deployment
    service = InferenceService(
        platform, session, platform.node(1), path, mode=SgxMode.HW, name="svc"
    )
    service.start()  # legitimate provisioning happened

    # Attacker captured the bundle; tries to open it with fresh keys.
    from repro.cas.service import derive_provision_key
    from repro.crypto.x25519 import X25519PrivateKey, X25519PublicKey
    from repro.errors import IntegrityError

    # The enclave's quote binds a key whose private half the attacker
    # never sees.
    enclave_public = (
        X25519PrivateKey.generate(b"\x77" * 32).public_key().public_bytes()
    )
    quote = service.runtime.attest(report_data=enclave_public)
    bundle = platform.cas.provision(session, quote)
    attacker_key = X25519PrivateKey.generate(b"\xab" * 32)
    shared = attacker_key.exchange(X25519PublicKey(bundle.ephemeral_public))
    opener = derive_provision_key(
        shared, quote.report.measurement + enclave_public
    )
    with pytest.raises(IntegrityError):
        opener.open(bundle.sealed_identity)


def test_accuracy_is_not_traded_for_security(deployment):
    """Design goal 3: protected and unprotected outputs are identical."""
    platform, model, session, path = deployment
    _, test = synthetic_cifar10(n_train=5, n_test=8, seed=5)
    from repro.tensor.lite import Interpreter

    service = InferenceService(
        platform, session, platform.node(1), path, mode=SgxMode.HW, name="svc"
    )
    service.start()
    reference = Interpreter(model)
    reference.allocate_tensors()
    for image in test.images:
        assert service.classify(image) == reference.classify(image[None])
