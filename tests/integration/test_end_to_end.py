"""The paper's full deployment story, end to end (Fig. 1 + §6.1).

One test walks every step: the user attests CAS, registers a policy,
uploads an encrypted model, the service container attests and gets
provisioned, inference runs in the enclave, and results flow back over
TLS — with assertions at each trust boundary.
"""

import numpy as np
import pytest

from repro.core import InferenceService, SecureTFPlatform
from repro.core.inference import deploy_encrypted_model, service_runtime_config
from repro.core.platform import PlatformConfig
from repro.crypto import encoding
from repro.data import synthetic_cifar10, synthetic_mnist
from repro.enclave.sgx import SgxMode
from repro.models import build_model, pretrained_lite_model
from repro.tensor.lite import Interpreter

import repro.tensor as tf


def test_document_digitization_deployment_story():
    """§6.1: a company serves handwritten-document classification from
    enclaves; clients keep inputs confidential, the company keeps its
    model confidential."""
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=10))

    # Step 1 (user): attest CAS before trusting it with anything.
    report = platform.user_attest_cas()
    assert not report.debug

    # Step 2 (company): train a model on MNIST-like documents, freeze,
    # convert to Lite.
    train, test = synthetic_mnist(n_train=1500, n_test=200, seed=11)
    built = build_model("mnist_cnn", seed=11)
    with built.graph.as_default():
        labels = tf.placeholder("float32", (None, 10), name="labels")
        loss = tf.losses.softmax_cross_entropy(labels, built.logits)
        train_op = tf.optimizers.Adam(0.005).minimize(loss)
        init = tf.global_variables_initializer(built.graph)
    sess = tf.Session(graph=built.graph)
    sess.run(init)
    for epoch in range(2):
        for bx, by in train.batches(64, shuffle_seed=epoch):
            sess.run(train_op, {built.input: bx, labels: by})
    model = built.to_lite("digitizer")

    # Step 3 (company): register the session and upload the model,
    # encrypted under the CAS-held session key.
    session = "digitizer"
    platform.register_session(
        session, [service_runtime_config("digitizer-svc", SgxMode.HW)]
    )
    path = deploy_encrypted_model(platform, session, platform.node(1), model)
    stored = platform.node(1).vfs.read(path).content
    assert model.graph_blob[100:400] not in stored  # plaintext never lands

    # Step 4: container starts, attests to CAS, loads the model inside
    # the enclave, serves.
    service = InferenceService(
        platform, session, platform.node(1), path, mode=SgxMode.HW,
        name="digitizer-svc",
    )
    service.start()
    assert service.identity is not None
    assert service.identity.session == session

    # Step 5: classification matches the unprotected model exactly
    # (the paper's accuracy property), and is correct on real data.
    reference = Interpreter(model)
    reference.allocate_tensors()
    correct = 0
    for i in range(30):
        image = test.images[i]
        label = service.classify(image)
        assert label == reference.classify(image[None])
        correct += label == test.labels[i]
    assert correct / 30 > 0.85  # the trained model genuinely works

    # Step 6: the audit log recorded the model upload; the chain verifies.
    platform.cas.audit.verify_chain()
    # Freshness is tracked per (session, node) — the model lives on node-1.
    assert platform.cas.audit.latest(f"{session}@node-1", path) is not None
    service.stop()


def test_elastic_scale_out_with_attestation():
    """Challenge ❹: elastic scaling with per-container attestation."""
    from repro.cluster import ContainerSpec

    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=12))
    model = pretrained_lite_model("densenet", seed=0)
    session = "elastic"
    config = service_runtime_config("elastic-svc", SgxMode.HW)
    platform.register_session(session, [config])
    for node in platform.nodes:
        deploy_encrypted_model(platform, session, node, model)

    provisioned = []

    def attest_hook(container):
        identity = platform.provision_runtime(
            container.runtime, container.node, session
        )
        provisioned.append(identity)

    platform.orchestrator.on_start.append(attest_hook)
    spec = ContainerSpec(session, lambda node, index: config)

    platform.orchestrator.scale_to(spec, 3)
    assert len(provisioned) == 3
    assert len({p.tls_certificate for p in provisioned}) == 3

    # Scale down and back up: the new replica is attested afresh.
    platform.orchestrator.scale_to(spec, 1)
    platform.orchestrator.scale_to(spec, 2)
    assert len(provisioned) == 4


def test_failure_recovery_reattests():
    from repro.cluster import ContainerSpec

    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=13))
    session = "ha"
    config = service_runtime_config("ha-svc", SgxMode.HW)
    platform.register_session(session, [config])
    provisioned = []
    platform.orchestrator.on_start.append(
        lambda c: provisioned.append(
            platform.provision_runtime(c.runtime, c.node, session)
        )
    )
    spec = ContainerSpec(session, lambda node, index: config)
    containers = platform.orchestrator.scale_to(spec, 2)
    platform.orchestrator.fail_container(containers[0])
    replaced = platform.orchestrator.recover(spec)
    assert len(replaced) == 1
    assert len(provisioned) == 3
    assert len(platform.orchestrator.replicas(session)) == 2


def test_multi_node_classification_scales_out():
    """Fig. 7 scale-out shape: distributing images over nodes divides
    the makespan."""
    _, test = synthetic_cifar10(n_train=5, n_test=30, seed=3)
    model = pretrained_lite_model("densenet", seed=0)

    def run_on_nodes(n_nodes, images_total=12):
        platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=14))
        session = "scale"
        platform.register_session(
            session, [service_runtime_config("svc", SgxMode.HW)]
        )
        services = []
        for node in platform.nodes[:n_nodes]:
            path = deploy_encrypted_model(platform, session, node, model)
            service = InferenceService(
                platform, session, node, path, mode=SgxMode.HW, name="svc",
                threads=4,
            )
            service.start()
            services.append(service)
        start = platform.time
        per_node = images_total // n_nodes
        for service in services:
            for i in range(per_node):
                service.classify(test.images[i])
        return max(s.node.clock.now for s in services) - start

    one = run_on_nodes(1)
    three = run_on_nodes(3)
    assert one / three > 2.0  # near-linear scale-out (paper: 1180s -> 403s)
