"""Chaos-plane acceptance: training under injected faults is *correct*
(same weights as a fault-free run), *at-most-once* (no duplicate
gradient applications), and *replayable* (same seed, same recovery
trace, byte for byte).
"""

import numpy as np
import pytest

from repro.cluster.faults import CrashFault, FaultPlan, FaultSpec
from repro.cluster.retry import RetryPolicy
from repro.core import SecureTFPlatform, TrainingJob
from repro.core.monitoring import collect_metrics
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode

STEPS = 8  # 4 rounds of 2 workers


@pytest.fixture(scope="module")
def batches():
    train, _ = synthetic_mnist(n_train=400, n_test=10, seed=60)
    return list(train.batches(50))


def make_plan(session, seed=61):
    """Loss + latency + duplication on PS traffic, one worker crash and
    one PS crash at mid-training round boundaries."""
    return FaultPlan(
        seed,
        FaultSpec(
            loss=0.05,
            delay=0.1,
            delay_seconds=0.02,
            duplication=0.05,
            # Scope to the PS endpoint: every worker<->PS leg has the PS
            # on one side; control-plane (CAS) traffic stays clean.
            targets=frozenset({f"{session}-ps"}),
        ),
        crashes=[
            CrashFault("worker-1", at_round=1),
            CrashFault("ps", at_round=2),
        ],
    )


def run_job(batches, session, plan=None, platform_seed=62):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=platform_seed))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session=session,
            n_workers=2,
            mode=SgxMode.SIM,
            network_shield=True,
            learning_rate=0.05,
            retry_policy=RetryPolicy(max_attempts=6, base_delay=0.02),
        ),
    )
    job.start()
    if plan is not None:
        job.attach_chaos(plan)
    result = job.train(batches, steps=STEPS)
    return platform, job, result


def test_chaos_run_matches_fault_free_run(batches):
    """THE acceptance test: loss + latency + duplication + a PS crash +
    a worker crash, and training still converges to bit-identical
    weights with zero duplicate gradient applications."""
    _, clean_job, clean_result = run_job(batches, "chaos-clean")
    plan = make_plan("chaos-hit")
    platform, chaos_job, chaos_result = run_job(batches, "chaos-hit", plan=plan)

    # The chaos actually happened.
    assert plan.counters.crashes == 2
    assert plan.counters.losses + plan.counters.delays + plan.counters.duplicates > 0
    assert chaos_job.recovery_events  # recovery was exercised

    # Same steps, same data order -> byte-identical final weights.
    assert chaos_result.steps == clean_result.steps == STEPS
    clean_weights = clean_job.weights()
    chaos_weights = chaos_job.weights()
    assert set(clean_weights) == set(chaos_weights)
    for name in clean_weights:
        np.testing.assert_array_equal(clean_weights[name], chaos_weights[name])

    # At-most-once: despite retries and duplicate deliveries, exactly
    # one gradient application per step — same as the clean run.
    assert clean_job.ps.updates_applied == STEPS
    assert chaos_job.ps.updates_applied == STEPS
    assert chaos_job.ps.version == clean_job.ps.version

    # The PS came back as a *different* container at the same address.
    assert any(e.startswith("ps-restart") for e in chaos_job.recovery_events)
    assert any(e.startswith("worker-restart") for e in chaos_job.recovery_events)

    # Monitoring surfaces the whole story.
    metrics = collect_metrics(platform)
    assert metrics.recovery.restarts == 2
    assert metrics.recovery.retries > 0
    assert metrics.network_duplicated + metrics.network_delayed > 0
    assert metrics.network_dropped > 0
    assert "recovery:" in metrics.format()


def test_same_seed_reproduces_recovery_trace_byte_for_byte(batches):
    plan_a = make_plan("chaos-rep")
    _, job_a, _ = run_job(batches, "chaos-rep", plan=plan_a)
    plan_b = make_plan("chaos-rep")
    _, job_b, _ = run_job(batches, "chaos-rep", plan=plan_b)
    assert plan_a.trace_bytes() == plan_b.trace_bytes()
    assert job_a.recovery_events == job_b.recovery_events
    assert plan_a.counters == plan_b.counters


def test_partition_mid_round_heals_and_round_completes(batches):
    """Satellite: one worker is partitioned mid-round; its backoff
    carries it past the heal and the round still completes."""
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=63))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session="midround",
            n_workers=2,
            mode=SgxMode.SIM,
            network_shield=True,
            learning_rate=0.05,
            retry_policy=RetryPolicy(max_attempts=8, base_delay=0.5),
        ),
    )
    job.start()
    job.train(batches, steps=2)  # one clean round first

    # Partition the PS mid-round; heal while the first worker backs off.
    caller_clock = job.workers[0].node.clock
    heal_at = caller_clock.now + 1.0
    state = {"on": True}

    def observer(old, new):
        if state["on"] and new >= heal_at:
            platform.network.heal(job.ps.address)
            state["on"] = False

    caller_clock.subscribe(observer)
    platform.network.partition(job.ps.address)

    result = job.train(batches, steps=2)  # the partitioned round
    assert result.steps == 2
    assert not state["on"]  # the heal actually fired mid-round
    assert job.ps.updates_applied == 4
    metrics = collect_metrics(platform)
    assert metrics.recovery.retries > 0
    job.stop()
