"""Event-core determinism acceptance (PR 6 satellite).

The tentpole replaced the per-node synchronous clock walk with a global
event-heap scheduler; the hard constraint is that seeded runs stay
*byte-identical*.  This suite drives two identically-seeded chaos runs
— message loss, latency spikes, duplicate delivery, a transient
partition, container crashes, and the retry/backoff machinery riding
heap timers — through the new core and asserts everything observable
matches: fault traces byte for byte, NetworkStats and per-node
SyscallStats as equal dataclasses, scheduler event counts, and the
final model weights down to their raw bytes.
"""

import numpy as np
import pytest

from repro.cluster.faults import CrashFault, FaultPlan, FaultSpec, TransientPartition
from repro.cluster.retry import RetryPolicy
from repro.core import SecureTFPlatform, TrainingJob
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode

STEPS = 8


@pytest.fixture(scope="module")
def batches():
    train, _ = synthetic_mnist(n_train=400, n_test=10, seed=70)
    return list(train.batches(50))


def run_chaos_job(batches):
    """One fully-loaded chaos run; returns everything comparable."""
    session = "event-core"
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=71))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session=session,
            n_workers=2,
            mode=SgxMode.SIM,
            network_shield=True,
            learning_rate=0.05,
            retry_policy=RetryPolicy(max_attempts=8, base_delay=0.1),
        ),
    )
    job.start()
    # The partition window is anchored to post-startup simulated time so
    # it lands inside training; startup is seeded, so both runs compute
    # the identical window.
    t0 = max(node.clock.now for node in platform.nodes)
    plan = FaultPlan(
        72,
        FaultSpec(
            loss=0.05,
            delay=0.1,
            delay_seconds=0.02,
            duplication=0.05,
            targets=frozenset({f"{session}-ps"}),
        ),
        partitions=[TransientPartition(f"{session}-ps", t0 + 0.01, t0 + 0.5)],
        crashes=[
            CrashFault("worker-1", at_round=1),
            CrashFault("ps", at_round=2),
        ],
    )
    job.attach_chaos(plan)
    result = job.train(batches, steps=STEPS)
    return {
        "plan": plan,
        "trace": plan.trace_bytes(),
        "counters": plan.counters,
        "recovery_events": list(job.recovery_events),
        "network_stats": platform.network.stats,
        "syscall_stats": [
            node.syscall_interface().stats for node in platform.nodes
        ],
        "weights": job.weights(),
        "result": result,
        "events_processed": platform.scheduler.events_processed,
        "fleet_time": platform.scheduler.fleet_time(),
    }


@pytest.fixture(scope="module")
def two_runs(batches):
    return run_chaos_job(batches), run_chaos_job(batches)


def test_chaos_actually_happened(two_runs):
    """The run must exercise every fault class or the comparison is vacuous."""
    first, _ = two_runs
    counters = first["counters"]
    assert counters.crashes == 2
    assert counters.partition_drops > 0
    assert counters.losses + counters.delays + counters.duplicates > 0
    assert first["recovery_events"]
    assert first["result"].steps == STEPS


def test_traces_are_byte_identical(two_runs):
    first, second = two_runs
    assert first["trace"] == second["trace"]
    assert first["counters"] == second["counters"]
    assert first["recovery_events"] == second["recovery_events"]


def test_network_and_syscall_stats_are_equal(two_runs):
    first, second = two_runs
    assert first["network_stats"] == second["network_stats"]
    assert first["syscall_stats"] == second["syscall_stats"]


def test_scheduler_event_counts_and_clocks_match(two_runs):
    first, second = two_runs
    assert first["events_processed"] == second["events_processed"]
    assert first["events_processed"] > 0
    assert first["fleet_time"] == second["fleet_time"]
    assert first["result"].simulated_events == second["result"].simulated_events
    assert first["result"].simulated_events > 0
    assert first["result"].wall_clock == second["result"].wall_clock


def test_final_weights_are_byte_identical(two_runs):
    first, second = two_runs
    assert set(first["weights"]) == set(second["weights"])
    for name in first["weights"]:
        a, b = first["weights"][name], second["weights"][name]
        np.testing.assert_array_equal(a, b)
        assert np.asarray(a).tobytes() == np.asarray(b).tobytes()
