"""Fault-tolerant training: crash mid-job, recover from a secure
checkpoint on a fresh (re-attested) deployment — challenges ❹ + ❺
combined: elastic recovery with stateful security.
"""

import numpy as np
import pytest

from repro.core import SecureTFPlatform, TrainingJob
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode


@pytest.fixture(scope="module")
def batches():
    train, _ = synthetic_mnist(n_train=800, n_test=10, seed=50)
    return list(train.batches(100))


def test_crash_and_recover_from_secure_checkpoint(batches):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=51))
    config = TrainingJobConfig(
        session="resilient",
        n_workers=2,
        mode=SgxMode.SIM,  # SIM keeps the test fast; the flow is identical
        network_shield=True,
        learning_rate=0.05,
    )

    # Phase 1: train half the batches, checkpoint, then crash everything.
    job = TrainingJob(platform, config)
    job.start()
    job.train(batches, steps=4)
    version_at_checkpoint = job.ps.version
    weights_at_checkpoint = {k: v.copy() for k, v in job.weights().items()}
    path = job.save_checkpoint()
    for container in job._containers:
        container.fail()  # the adversary (or the cloud) kills the job
    job.ps.stop()

    # Phase 2: a fresh deployment re-attests and resumes from the
    # checkpoint.  The PS address is free again; CAS still holds the
    # session policy, keys, and the audit record of the checkpoint.
    job2 = TrainingJob(platform, config)  # same session, new containers
    job2.start()  # session registration is idempotent for resumed jobs
    restored_version = job2.restore_checkpoint()
    assert restored_version == version_at_checkpoint
    for name, value in job2.weights().items():
        np.testing.assert_array_equal(value, weights_at_checkpoint[name])

    # Training continues and keeps improving.
    images, labels = batches[0]
    job2.workers[0].load_weights(job2.weights())
    loss_before = job2.workers[0].evaluate_loss(images, labels)
    job2.train(batches, steps=4)
    job2.workers[0].load_weights(job2.weights())
    loss_after = job2.workers[0].evaluate_loss(images, labels)
    assert loss_after < loss_before
    job2.stop()


def test_worker_node_partition_fails_fast(batches):
    """A partitioned PS surfaces as an RPC error, not a hang or silent
    data loss."""
    from repro.errors import RpcError

    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=52))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session="partition", mode=SgxMode.SIM, network_shield=False,
            learning_rate=0.05,
        ),
    )
    job.start()
    job.train(batches, steps=1)
    platform.network.partition(job.ps.address)
    with pytest.raises(RpcError):
        job.train(batches, steps=1)
    platform.network.heal(job.ps.address)
    result = job.train(batches, steps=1)
    assert result.steps == 1
    job.stop()
