"""Sharded-PS acceptance: N-shard training is *equivalent* (weights
byte-identical to the single-PS plane at the same seed), *correct under
chaos* (crash + transient partition + duplicate storm leave the weights
byte-identical to a fault-free same-seed run), and *observable* (per-
shard counters flow into the monitoring plane).
"""

import numpy as np
import pytest

from repro.cluster.faults import CrashFault, FaultPlan, FaultSpec, TransientPartition
from repro.cluster.retry import RetryPolicy
from repro.core import SecureTFPlatform, TrainingJob
from repro.core.monitoring import collect_metrics
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode

STEPS = 8  # 4 rounds of 2 workers


@pytest.fixture(scope="module")
def batches():
    train, _ = synthetic_mnist(n_train=400, n_test=10, seed=60)
    return list(train.batches(50))


def run_job(batches, session, shards, plan=None, bits=None, fencing=False):
    platform = SecureTFPlatform(
        PlatformConfig(n_nodes=3, seed=62, fencing=fencing)
    )
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session=session,
            n_workers=2,
            mode=SgxMode.SIM,
            network_shield=True,
            learning_rate=0.05,
            ps_shards=shards,
            gradient_quantization_bits=bits,
            retry_policy=RetryPolicy(max_attempts=6, base_delay=0.02),
        ),
    )
    job.start()
    if plan is not None:
        job.attach_chaos(plan)
    result = job.train(batches, steps=STEPS)
    return platform, job, result


def test_shard_count_does_not_change_weights(batches):
    """Row-wise SGD is value-identical to whole-tensor SGD: 1, 2 and 4
    shards converge to byte-identical weights at the same seed."""
    weights = {}
    for shards in (1, 2, 4):
        _, job, result = run_job(batches, f"eq{shards}", shards)
        assert result.steps == STEPS
        weights[shards] = job.weights()
        job.stop()
    for shards in (2, 4):
        assert set(weights[1]) == set(weights[shards])
        for name in weights[1]:
            np.testing.assert_array_equal(weights[1][name], weights[shards][name])


def make_plan(session, seed=61):
    """Duplicate storm + loss + latency on all four shard endpoints, a
    worker crash, a shard crash, and a transient partition of shard 2
    across a cross-shard checkpoint barrier window."""
    targets = frozenset({f"{session}-ps{k}" for k in range(4)})
    return FaultPlan(
        seed,
        FaultSpec(
            loss=0.05,
            delay=0.1,
            delay_seconds=0.02,
            duplication=0.25,
            targets=targets,
        ),
        partitions=[TransientPartition(f"{session}-ps2", 1.30, 1.45)],
        crashes=[
            CrashFault("worker-1", at_round=1),
            CrashFault("ps-1", at_round=2),
        ],
    )


def test_four_shard_chaos_matches_fault_free_run(batches):
    """THE sharded acceptance test: a 4-shard quantized, fenced run
    under crash + partition + duplicate storm produces byte-identical
    weights to the fault-free run at the same seed."""
    _, clean_job, clean_result = run_job(
        batches, "shardchaos", 4, bits=8, fencing=True
    )
    plan = make_plan("shardchaos")
    platform, chaos_job, chaos_result = run_job(
        batches, "shardchaos", 4, plan=plan, bits=8, fencing=True
    )

    # All three fault kinds actually fired.
    assert plan.counters.crashes == 2
    assert plan.counters.duplicates > 0
    assert plan.counters.partition_drops > 0
    assert plan.counters.losses + plan.counters.delays > 0

    # Same steps, same data order -> byte-identical final weights.
    assert chaos_result.steps == clean_result.steps == STEPS
    clean_weights = clean_job.weights()
    chaos_weights = chaos_job.weights()
    assert set(clean_weights) == set(chaos_weights)
    for name in clean_weights:
        np.testing.assert_array_equal(clean_weights[name], chaos_weights[name])

    # At-most-once per shard: every shard applied exactly one update per
    # step despite retries, duplicate deliveries and the restart.
    for shard in chaos_job.ps_service.shards:
        assert shard.updates_applied == STEPS

    # The crashed shard came back as a different container, fence-first.
    assert any(
        e.startswith("ps-shard-restart shard=1")
        for e in chaos_job.recovery_events
    )
    assert any(
        e.startswith("worker-restart") for e in chaos_job.recovery_events
    )
    # Epochs: shard 1 was granted twice (launch + restart), others once.
    assert platform.epochs.current("ps-1") == 2
    assert platform.epochs.current("ps-0") == 1

    # The cross-shard barrier committed consistent vectors throughout.
    vector = chaos_job._ps_store.latest_vector()
    assert vector is not None
    assert len(set(vector.values())) == 1  # all shards at the same version

    # Monitoring surfaces the sharded training plane.
    metrics = collect_metrics(platform)
    assert metrics.training.pushes == 4 * STEPS
    assert metrics.training.quantized_pushes == 4 * STEPS
    assert metrics.training.restarts == 1
    assert metrics.training.gradient_bytes_saved > 0
    assert metrics.training.barrier_commits > 0
    assert "training:" in metrics.format()


def test_sharded_recovery_trace_replays_byte_for_byte(batches):
    plan_a = make_plan("shardrep")
    _, job_a, _ = run_job(batches, "shardrep", 4, plan=plan_a, bits=8, fencing=True)
    plan_b = make_plan("shardrep")
    _, job_b, _ = run_job(batches, "shardrep", 4, plan=plan_b, bits=8, fencing=True)
    assert plan_a.trace_bytes() == plan_b.trace_bytes()
    assert job_a.recovery_events == job_b.recovery_events
    assert plan_a.counters == plan_b.counters


# -- tier 2: heavier sweeps (run via -m sharded_training) -----------------


@pytest.mark.sharded_training
def test_eight_shard_equivalence_and_chaos(batches):
    """The full sweep at 8 shards: equivalence to the single-PS plane
    (unquantized — quantization scales are per piece, so only runs at
    the *same* shard count are byte-comparable) and byte-identity under
    the chaos plan with quantization on."""
    _, base_job, _ = run_job(batches, "wide1", 1, fencing=True)
    _, wide_job, wide_result = run_job(batches, "wide8", 8, fencing=True)
    assert wide_result.steps == STEPS
    base, wide = base_job.weights(), wide_job.weights()
    assert set(base) == set(wide)
    for name in base:
        np.testing.assert_array_equal(base[name], wide[name])

    _, clean_job, _ = run_job(batches, "wchaos", 8, bits=8, fencing=True)
    plan = make_plan("wchaos")
    _, chaos_job, _ = run_job(batches, "wchaos", 8, plan=plan, bits=8, fencing=True)
    assert plan.counters.crashes == 2
    clean_weights, chaos_weights = clean_job.weights(), chaos_job.weights()
    for name in clean_weights:
        np.testing.assert_array_equal(clean_weights[name], chaos_weights[name])


@pytest.mark.sharded_training
@pytest.mark.parametrize("bits", [4, 8, 16])
def test_quantization_width_sweep(batches, bits):
    """Every supported width trains deterministically; wider lattices
    track the float32 run tighter."""
    _, float_job, float_result = run_job(batches, "sw-f", 2)
    _, quant_job, quant_result = run_job(batches, f"sw-q{bits}", 2, bits=bits)
    assert quant_result.steps == float_result.steps == STEPS
    tolerance = {4: 0.3, 8: 0.05, 16: 0.01}[bits]
    assert abs(quant_result.final_loss - float_result.final_loss) < tolerance


def test_quantized_run_stays_close_to_float_run(batches):
    """8-bit gradient quantization shrinks the wire without derailing
    training: the final loss tracks the float32 run."""
    _, float_job, float_result = run_job(batches, "qfloat", 2)
    _, quant_job, quant_result = run_job(batches, "qint8", 2, bits=8)
    assert quant_result.steps == float_result.steps
    assert abs(quant_result.final_loss - float_result.final_loss) < 0.05
    saved = sum(
        s.shard_stats.gradient_bytes_saved for s in quant_job.ps_service.shards
    )
    assert saved > 0
