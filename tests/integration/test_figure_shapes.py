"""Fast, test-suite-resident versions of each figure's shape assertions.

The full regenerations live in benchmarks/; these scaled-down versions
run inside ``pytest tests/`` so a mechanism regression breaks the normal
test run, not just the (slower) benchmark pass.
"""

import pytest

from repro._sim import EventTrace
from repro.cas import Policy
from repro.cas.client import RemoteCasClient
from repro.core.inference import (
    InferenceService,
    deploy_encrypted_model,
    service_runtime_config,
)
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.core.training import TrainingJob, TrainingJobConfig
from repro.data import synthetic_cifar10, synthetic_mnist
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.ias import IntelAttestationService
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.tensor.engine import FULL_TF_PROFILE, LITE_PROFILE


@pytest.fixture(scope="module")
def cifar_image():
    _, test = synthetic_cifar10(n_train=5, n_test=2, seed=33)
    return test.images[0]


def _inference_latency(model, image, mode, engine=LITE_PROFILE, runs=4, threads=1):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=34))
    platform.register_session(
        "fig",
        [
            service_runtime_config("svc", m, engine=e)
            for m in (SgxMode.HW, SgxMode.SIM)
            for e in (LITE_PROFILE, FULL_TF_PROFILE)
        ],
        accept_debug=True,
    )
    path = deploy_encrypted_model(platform, "fig", platform.node(1), model)
    service = InferenceService(
        platform, "fig", platform.node(1), path, mode=mode, name="svc",
        engine=engine, threads=threads,
    )
    service.start()
    service.classify(image)
    before = service.node.clock.now
    for _ in range(runs):
        service.classify(image)
    return (service.node.clock.now - before) / runs


def test_fig4_shape_cas_beats_ias():
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=35))
    node = platform.node(1)
    runtime = SconeRuntime(
        RuntimeConfig(
            name="w", mode=SgxMode.HW, binary_size=LITE_PROFILE.binary_size,
            fs_shield_enabled=False,
        ),
        node.vfs, CM, node.clock, cpu=node.cpu, rng=node.rng.child("w"),
    )
    platform.cas.register_policy(Policy("s", [runtime.measurement]))
    before = node.clock.now
    RemoteCasClient(platform.network, node, "cas").provision(runtime, "s")
    cas_time = node.clock.now - before

    ias = IntelAttestationService(platform.provisioning.public_key(), CM, node.clock)
    before = node.clock.now
    ias.verify_quote(runtime.attest(b"\x00" * 32))
    ias_time = node.clock.now - before
    assert ias_time / cas_time > 8  # paper: ~19x


def test_fig5_shape_hw_tax_and_epc_crossover(cifar_image):
    small = pretrained_lite_model("densenet", seed=0)
    large = pretrained_lite_model("inception_v4", seed=0)
    for model in (small, large):
        sim = _inference_latency(model, cifar_image, SgxMode.SIM)
        hw = _inference_latency(model, cifar_image, SgxMode.HW)
        assert 1.0 < hw / sim < 1.6
    # Bigger model, bigger HW tax (EPC crossover).
    small_tax = _inference_latency(small, cifar_image, SgxMode.HW) / (
        _inference_latency(small, cifar_image, SgxMode.SIM)
    )
    large_tax = _inference_latency(large, cifar_image, SgxMode.HW) / (
        _inference_latency(large, cifar_image, SgxMode.SIM)
    )
    assert large_tax > small_tax


def test_fig7_shape_hw_stops_scaling_past_physical_cores(cifar_image):
    model = pretrained_lite_model("inception_v4", seed=0)
    hw4 = _inference_latency(model, cifar_image, SgxMode.HW, threads=4)
    hw8 = _inference_latency(model, cifar_image, SgxMode.HW, threads=8)
    sim4 = _inference_latency(model, cifar_image, SgxMode.SIM, threads=4)
    sim8 = _inference_latency(model, cifar_image, SgxMode.SIM, threads=8)
    assert hw8 >= hw4 * 0.98   # HW stalls or regresses
    assert sim8 < sim4         # SIM keeps gaining


def test_tf_vs_lite_shape(cifar_image):
    model = pretrained_lite_model("inception_v3", seed=0)
    lite = _inference_latency(model, cifar_image, SgxMode.HW, engine=LITE_PROFILE)
    full = _inference_latency(model, cifar_image, SgxMode.HW, engine=FULL_TF_PROFILE)
    assert full / lite > 8  # paper: 71x; mechanism check only


def test_fig8_shape_training_tax():
    train, _ = synthetic_mnist(n_train=400, n_test=10, seed=36)
    batches = list(train.batches(100))

    def run(mode, shield):
        platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=37))
        job = TrainingJob(
            platform,
            TrainingJobConfig(
                session="t", mode=mode, network_shield=shield,
                learning_rate=0.0005,
            ),
        )
        job.start()
        result = job.train(batches)
        job.stop()
        return result.wall_clock

    native = run(SgxMode.NATIVE, False)
    hw = run(SgxMode.HW, True)
    assert 8 < hw / native < 25  # paper: ~14x
