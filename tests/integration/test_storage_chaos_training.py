"""Storage-chaos acceptance: training with journaled checkpoints survives
torn checkpoint writes, bit-rotted replicas, and a CAS failover — and
still produces weights identical to a fault-free run — while a restored
old disk image is rejected as a rollback.
"""

import numpy as np
import pytest

from repro.cluster.retry import RetryPolicy
from repro.core import SecureTFPlatform, TrainingJob
from repro.core.monitoring import collect_metrics
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode
from repro.errors import FreshnessError, StorageCrash
from repro.runtime.fs_shield import CHUNK_MARKER
from repro.runtime.storage_faults import StorageFaultPlan, StorageFaultSpec

STEPS = 8
CKPT_PREFIX = "/secure/checkpoints/"


@pytest.fixture(scope="module")
def batches():
    train, _ = synthetic_mnist(n_train=400, n_test=10, seed=70)
    return list(train.batches(50))


def make_job(session, backup=False, seed=71):
    retry = RetryPolicy(max_attempts=6, base_delay=0.02)
    platform = SecureTFPlatform(
        PlatformConfig(
            n_nodes=3,
            seed=seed,
            cas_backup_node=1 if backup else None,
            cas_retry=retry if backup else None,
        )
    )
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session=session,
            n_workers=2,
            mode=SgxMode.SIM,
            learning_rate=0.05,
            retry_policy=retry,
            checkpoint_journal=True,
            checkpoint_replicas=2,
        ),
    )
    job.start()
    return platform, job


def replica_files(vfs, replica=1):
    return [
        p for p in vfs.listdir() if CHUNK_MARKER in p and p.endswith(f".{replica}")
    ]


def test_training_survives_storage_chaos_and_cas_failover(batches):
    """THE acceptance run: a torn checkpoint write mid-training, rotted
    chunk replicas, and a CAS primary loss — the job completes, the
    restored checkpoint equals the fault-free run's weights, and every
    repair/failover shows up in the metrics snapshot."""
    _, clean_job = make_job("storage-clean")
    clean_job.train(batches, steps=STEPS)
    clean_weights = clean_job.weights()

    platform, job = make_job("storage-hit", backup=True)
    job.train(batches[:4], steps=4)
    vfs = job.ps.node.vfs

    # 1. The checkpoint write tears mid-commit and the process dies.
    StorageFaultPlan(
        7, StorageFaultSpec(torn_write=1.0, prefixes=(CKPT_PREFIX,))
    ).attach(vfs)
    with pytest.raises(StorageCrash):
        job.save_checkpoint()
    vfs.faults = None

    # Mount-time recovery rolls the half-written generation back; the
    # retried save then commits cleanly.
    report = job._checkpoint_shield().recover()
    assert report.get(job.checkpoint_path()) == "rolled-back"
    job.save_checkpoint()

    # 2. The CAS primary dies mid-run; the orchestrator watchdog promotes
    # the standby and training (and checkpointing) continues against it.
    platform.cas_pair.fail_primary()
    assert platform.orchestrator.supervise_services() == {"cas": False}
    assert platform.active_cas is platform.cas_pair.backup
    job.train(batches[4:STEPS], steps=STEPS - 4)
    job.save_checkpoint()

    # 3. Bit-rot eats one replica of several chunks at rest; the restore
    # reads through it, healing each damaged copy from its twin.
    victims = replica_files(vfs, replica=1)[:3]
    assert victims, "journaled checkpoints must leave replica chunks"
    for path in victims:
        raw = vfs.read(path).content
        vfs.tamper(path, raw[: max(1, len(raw) // 2)])
    job.restore_checkpoint()

    # Same steps, same data: the chaos run's restored weights are
    # byte-identical to the fault-free run's.
    chaos_weights = job.weights()
    assert set(chaos_weights) == set(clean_weights)
    for name in clean_weights:
        np.testing.assert_array_equal(clean_weights[name], chaos_weights[name])

    # The whole story is visible to monitoring.
    metrics = collect_metrics(platform)
    assert metrics.shields.fs_chunks_repaired >= len(victims)
    assert metrics.shields.fs_torn_writes_detected >= len(victims)
    assert metrics.shields.fs_recovery_scans >= 1
    assert metrics.shields.fs_recoveries_rolled_back >= 1
    assert metrics.recovery.cas_failovers == 1
    assert metrics.recovery.cas_ops_replicated >= 1
    assert metrics.recovery.cas_records_replicated >= 1
    snapshot = metrics.format()
    assert "storage:" in snapshot and "cas ha:" in snapshot


def test_disk_image_rollback_of_checkpoints_rejected(batches):
    """Restoring the PS disk to an older (validly encrypted) checkpoint
    is detected through the CAS audit chain, not trusted storage."""
    _, job = make_job("storage-rollback")
    job.train(batches[:2], steps=2)
    job.save_checkpoint()
    snapshot = job.ps.node.vfs.capture_state()
    job.train(batches[2:4], steps=2)
    job.save_checkpoint()

    job.ps.node.vfs.restore_state(snapshot)
    with pytest.raises(FreshnessError):
        job.restore_checkpoint()
    # The recovery scan refuses to bless the stale generation either.
    report = job._checkpoint_shield().recover()
    assert report.get(job.checkpoint_path()) == "stale"


@pytest.mark.storage_chaos
@pytest.mark.parametrize("seed", range(6))
def test_randomized_storage_chaos_sweep(batches, seed):
    """Tier-2 sweep: the randomized analog of the exhaustive crash-point
    sweep — torn writes kill random checkpoint commits across repeated
    cycles, and every recovered state is exactly a committed one."""
    _, job = make_job("storage-sweep-%d" % seed, seed=80 + seed)
    job.train(batches[:2], steps=2)
    vfs = job.ps.node.vfs
    committed = None
    crashes = 0
    for cycle in range(8):
        StorageFaultPlan(
            seed * 97 + cycle,
            StorageFaultSpec(torn_write=0.3, prefixes=(CKPT_PREFIX,)),
        ).attach(vfs)
        try:
            job.save_checkpoint()
            committed = job.ps.version
        except StorageCrash:
            crashes += 1
            vfs.faults = None
            job._checkpoint_shield().recover()
        finally:
            vfs.faults = None
        if committed is not None:
            assert job.restore_checkpoint() == committed
    assert crashes > 0, "the sweep never injected a torn commit"
