"""Model zoo: specs, calibration scales, frozen/Lite artifacts."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import MODEL_ZOO, build_model, get_spec, pretrained_lite_model
from repro.tensor.lite import Interpreter


def test_zoo_contains_paper_models():
    assert {"densenet", "inception_v3", "inception_v4", "mnist_cnn"} <= set(
        MODEL_ZOO
    )
    # Paper-declared file sizes (§5.3): 42 / 91 / 163 MB.
    assert get_spec("densenet").declared_size_bytes == 42 * 1024 * 1024
    assert get_spec("inception_v3").declared_size_bytes == 91 * 1024 * 1024
    assert get_spec("inception_v4").declared_size_bytes == 163 * 1024 * 1024


def test_unknown_model_rejected():
    with pytest.raises(ConfigurationError):
        get_spec("resnet-9000")


@pytest.mark.parametrize("name", sorted(MODEL_ZOO))
def test_build_calibrates_scales(name):
    built = build_model(name, seed=0)
    spec = built.spec
    graph = built.graph
    assert built.actual_weight_bytes * graph.weight_scale == pytest.approx(
        spec.declared_size_bytes, rel=0.01
    )
    assert built.actual_flops * graph.cost_scale == pytest.approx(
        spec.declared_flops, rel=0.01
    )
    assert built.actual_ops * graph.op_scale == pytest.approx(
        spec.declared_ops, rel=0.01
    )


def test_build_is_deterministic_per_seed():
    a = build_model("densenet", seed=5)
    b = build_model("densenet", seed=5)
    va = a.graph.get_collection("global_variables")[0].value
    vb = b.graph.get_collection("global_variables")[0].value
    np.testing.assert_array_equal(va, vb)


def test_model_ordering_by_declared_size():
    sizes = [
        get_spec(n).declared_size_bytes
        for n in ("densenet", "inception_v3", "inception_v4")
    ]
    assert sizes == sorted(sizes)


def test_pretrained_lite_model_runs():
    model = pretrained_lite_model("densenet")
    assert model.size_bytes == 42 * 1024 * 1024
    assert len(model.to_bytes()) < 5_000_000  # real payload stays small
    interp = Interpreter(model)
    interp.allocate_tensors()
    out = interp.invoke(np.zeros((2, 32, 32, 3), np.float32))
    assert out[0].shape == (2, 10)


def test_lite_and_graph_outputs_agree():
    import repro.tensor as tf

    built = build_model("inception_v3", seed=1)
    data = np.random.default_rng(0).normal(size=(2, 32, 32, 3)).astype(np.float32)
    reference = tf.Session(graph=built.graph).run(
        built.logits, {built.input: data}
    )
    interp = Interpreter(built.to_lite())
    interp.allocate_tensors()
    np.testing.assert_allclose(interp.invoke(data)[0], reference, rtol=1e-4)
