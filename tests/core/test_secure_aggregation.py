"""Secure-aggregation federated mode: additive masking across an
aggregator-enclave committee.

The aggregate must be *exact* (bit-identical to the unmasked fixed-point
FedAvg computation — ring addition is associative, unlike float sums),
no single committee member may hold anything but uniformly random masks,
and hospitals must be unable to read partial sums.
"""

import numpy as np
import pytest

from repro.core import FederatedLearning, Hospital, SecureTFPlatform
from repro.core.platform import PlatformConfig
from repro.crypto.masking import combine_shares, decode_fixed, encode_fixed
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode
from repro.errors import AttestationError, ConfigurationError, RpcError


def make_federation(seed=5, n_aggregators=2, n_train=300, take=100):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=seed))
    train, test = synthetic_mnist(n_train=n_train, n_test=200, seed=6)
    hospitals = [
        Hospital(
            f"hospital-{i}",
            platform.node(i),
            train.take(take) if take else train,
            learning_rate=0.1,
            seed=3,
        )
        for i in range(3)
    ]
    fl = FederatedLearning(
        platform, "sfl", hospitals, mode=SgxMode.HW,
        secure_aggregation=True, n_aggregators=n_aggregators,
    )
    return platform, fl, hospitals, test


def test_secure_aggregate_is_bit_exact_fixed_point_fedavg():
    _, fl, hospitals, _ = make_federation()
    fl.start()
    fl.run_round(local_steps=3, round_seed=0)

    # Recompute the unmasked fixed-point FedAvg from the hospitals'
    # post-training weights: the masked committee aggregate must equal
    # it bit for bit (the masks cancel exactly over Z_2^64).
    total = sum(len(h.dataset) for h in hospitals)
    expected = {}
    for hospital in hospitals:
        n = np.float32(len(hospital.dataset))
        for name, value in hospital.weights().items():
            encoded = encode_fixed(value * n)
            expected[name] = (
                combine_shares([expected[name], encoded])
                if name in expected
                else encoded
            )
    aggregated = fl.global_weights()
    assert set(aggregated) == set(expected)
    for name in expected:
        reference = (
            decode_fixed(expected[name]) / np.float32(total)
        ).astype(np.float32)
        np.testing.assert_array_equal(aggregated[name], reference)

    # Every hospital handed one share to every committee member.
    assert fl.share_submissions == len(hospitals) * len(fl.aggregators)
    fl.stop()


def test_secure_rounds_are_deterministic():
    def one_run():
        _, fl, _, _ = make_federation()
        fl.start()
        for round_index in range(2):
            fl.run_round(local_steps=3, round_seed=round_index)
        weights = fl.global_weights()
        fl.stop()
        return {name: value.tobytes() for name, value in weights.items()}

    assert one_run() == one_run()


def test_secure_rounds_improve_accuracy():
    """The masked protocol trains as well as plain FedAvg (§6.2): the
    mirror of ``test_federated_rounds_improve_accuracy`` with the
    committee in the loop."""
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=5))
    train, test = synthetic_mnist(n_train=900, n_test=200, seed=6)
    shard = len(train) // 3
    hospitals = [
        Hospital(
            f"hospital-{i}",
            platform.node(i),
            type(train)(
                train.images[i * shard : (i + 1) * shard],
                train.labels[i * shard : (i + 1) * shard],
                train.num_classes,
            ),
            learning_rate=0.1,
            seed=3,
        )
        for i in range(3)
    ]
    fl = FederatedLearning(
        platform, "sfl", hospitals, mode=SgxMode.HW,
        secure_aggregation=True, n_aggregators=3,
    )
    fl.start()
    hospitals[0].load_weights(fl.global_weights())
    before = hospitals[0].evaluate_accuracy(test)
    for round_index in range(4):
        fl.run_round(local_steps=4, round_seed=round_index)
    hospitals[0].load_weights(fl.global_weights())
    after = hospitals[0].evaluate_accuracy(test)
    assert fl.rounds_completed == 4
    assert after > before + 0.2
    fl.stop()


def test_committee_partials_are_masked_until_combined():
    """A single member's partial sum is not the (encoded) aggregate:
    each partial is a share of it, useless alone."""
    _, fl, hospitals, _ = make_federation()
    fl.start()
    # Drive submissions by hand so the partials survive inspection
    # (run_round's combine step resets them).
    from repro.core.federated import _hospital_shield

    for hospital in hospitals:
        hospital.local_train(2, round_seed=0)
        fl._submit_shares(hospital, _hospital_shield(fl.platform, hospital), 0)

    total = sum(len(h.dataset) for h in hospitals)
    expected = {}
    for hospital in hospitals:
        n = np.float32(len(hospital.dataset))
        for name, value in hospital.weights().items():
            encoded = encode_fixed(value * n)
            expected[name] = (
                combine_shares([expected[name], encoded])
                if name in expected
                else encoded
            )
    # No single partial equals the aggregate encoding; the wrapping sum
    # of all partials does, exactly.
    name = sorted(expected)[0]
    for aggregator in fl.aggregators:
        assert not np.array_equal(aggregator.partial[name], expected[name])
    combined = combine_shares(
        [a.partial[name] for a in fl.aggregators]
    )
    np.testing.assert_array_equal(combined, expected[name])
    fl.stop()


def test_hospitals_cannot_read_partial_sums():
    from repro.cluster.rpc import SecureRpcClient
    from repro.core.federated import _hospital_shield

    _, fl, hospitals, _ = make_federation()
    fl.start()
    hospital = hospitals[0]
    client = SecureRpcClient(
        fl.platform.network,
        f"{hospital.name}@{hospital.node.node_id}-snoop",
        hospital.node,
        shield=_hospital_shield(fl.platform, hospital),
    )
    conn = client.connect(fl.aggregators[1].address, expected_server=None)
    with pytest.raises((AttestationError, RpcError)):
        conn.call("pull_partial", b"")
    fl.stop()


def test_secure_aggregation_needs_a_committee():
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=5))
    train, _ = synthetic_mnist(n_train=60, n_test=10, seed=6)
    hospitals = [
        Hospital(f"h{i}", platform.node(i), train.take(30), seed=3)
        for i in range(2)
    ]
    with pytest.raises(ConfigurationError):
        FederatedLearning(
            platform, "sfl", hospitals,
            secure_aggregation=True, n_aggregators=1,
        )
