"""Platform assembly and the secure inference service."""

import numpy as np
import pytest

from repro.core import InferenceService, SecureTFPlatform
from repro.core.inference import (
    MODEL_PATH_PREFIX,
    deploy_encrypted_model,
    service_runtime_config,
)
from repro.core.platform import PlatformConfig
from repro.crypto import encoding
from repro.data import synthetic_cifar10
from repro.enclave.sgx import SgxMode
from repro.errors import ConfigurationError, RpcError
from repro.models import build_model, pretrained_lite_model
from repro.tensor.lite import Interpreter


@pytest.fixture(scope="module")
def lite_model():
    return pretrained_lite_model("densenet", seed=0)


@pytest.fixture(scope="module")
def images():
    _, test = synthetic_cifar10(n_train=10, n_test=10, seed=2)
    return test.images


@pytest.fixture
def platform():
    return SecureTFPlatform(PlatformConfig(n_nodes=3, seed=1))


def start_service(platform, lite_model, mode=SgxMode.HW, **kwargs):
    session = "infer"
    platform.register_session(
        session,
        [service_runtime_config("svc", m) for m in (SgxMode.HW, SgxMode.SIM)],
        accept_debug=True,
    )
    path = deploy_encrypted_model(platform, session, platform.node(1), lite_model)
    service = InferenceService(
        platform, session, platform.node(1), path, mode=mode, name="svc", **kwargs
    )
    service.start()
    return service, path


def test_user_attests_cas(platform):
    report = platform.user_attest_cas()
    assert report.attributes["name"] == "cas"


def test_model_is_encrypted_at_rest(platform, lite_model):
    _, path = start_service(platform, lite_model)
    raw = platform.node(1).vfs.read(path).content
    assert lite_model.graph_blob[:200] not in raw
    assert path.startswith(MODEL_PATH_PREFIX)


def test_classification_matches_unprotected_reference(platform, lite_model, images):
    service, _ = start_service(platform, lite_model)
    reference = Interpreter(lite_model)
    reference.allocate_tensors()
    for image in images[:5]:
        assert service.classify(image) == reference.classify(image[None])


def test_all_modes_agree_on_labels(platform, lite_model, images):
    """The paper's accuracy claim: protection does not change outputs."""
    labels = {}
    for mode in (SgxMode.HW, SgxMode.SIM):
        fresh = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=1))
        service, _ = start_service(fresh, lite_model, mode=mode)
        labels[mode] = [service.classify(img) for img in images[:4]]
    assert labels[SgxMode.HW] == labels[SgxMode.SIM]


def test_hw_slower_than_sim(platform, lite_model, images):
    latencies = {}
    for mode in (SgxMode.HW, SgxMode.SIM):
        fresh = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=1))
        service, _ = start_service(fresh, lite_model, mode=mode)
        service.classify(images[0])  # warm
        before = service.node.clock.now
        for img in images[:3]:
            service.classify(img)
        latencies[mode] = service.node.clock.now - before
    assert latencies[SgxMode.HW] > latencies[SgxMode.SIM]


def test_classify_requires_start(platform, lite_model):
    platform.register_session(
        "s", [service_runtime_config("svc", SgxMode.HW)]
    )
    path = deploy_encrypted_model(platform, "s", platform.node(1), lite_model)
    service = InferenceService(
        platform, "s", platform.node(1), path, name="svc"
    )
    with pytest.raises(ConfigurationError):
        service.classify(np.zeros((32, 32, 3), np.float32))


def test_serve_over_secure_rpc(platform, lite_model, images):
    from repro.cluster.rpc import SecureRpcClient
    from repro.crypto.ed25519 import Ed25519PublicKey
    from repro.runtime.net_shield import NetworkShield
    from repro.crypto.tls import TlsIdentity
    from repro.crypto.ed25519 import Ed25519PrivateKey
    from repro.crypto.certs import Certificate
    from repro.tensor.arrays import encode_array

    service, _ = start_service(platform, lite_model)
    address = service.serve()

    # A client (the end user) gets an identity from the CAS CA.
    user_node = platform.node(2)
    key_bytes, cert_bytes = platform.cas.keys.new_tls_identity(
        "user/alice", now=user_node.clock.now
    )
    shield = NetworkShield(
        TlsIdentity(Ed25519PrivateKey(key_bytes), Certificate.from_bytes(cert_bytes)),
        [platform.cas.keys.ca.public_key()],
        platform.cost_model,
        user_node.clock,
        user_node.rng.child("user"),
    )
    client = SecureRpcClient(platform.network, "alice", user_node, shield)
    conn = client.connect(address)
    reply = conn.call(
        "classify", encoding.encode(encode_array(images[0]))
    )
    label = encoding.decode(reply)["label"]
    reference = Interpreter(lite_model)
    reference.allocate_tensors()
    assert label == reference.classify(images[0][None])
    service.stop()
    with pytest.raises(RpcError):
        conn.call("classify", encoding.encode(encode_array(images[0])))


def test_stats_track_requests(platform, lite_model, images):
    service, _ = start_service(platform, lite_model)
    for img in images[:3]:
        service.classify(img)
    assert service.stats.requests == 3
    assert service.stats.mean_latency > 0
    assert service.stats.startup_latency > 0


def test_platform_validation():
    with pytest.raises(ConfigurationError):
        SecureTFPlatform(PlatformConfig(n_nodes=0))
