"""Platform monitoring + encrypted dataset pipeline."""

import numpy as np
import pytest

from repro.cas.audit import ScopedFreshnessTracker
from repro.core import SecureTFPlatform
from repro.core.data_protection import (
    DATASET_PATH_PREFIX,
    dataset_rules,
    deploy_encrypted_dataset,
    load_encrypted_dataset,
    serialize_dataset,
    deserialize_dataset,
)
from repro.core.inference import (
    InferenceService,
    deploy_encrypted_model,
    service_runtime_config,
)
from repro.core.monitoring import collect_metrics
from repro.core.platform import PlatformConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode
from repro.errors import FreshnessError, SecurityError, ShieldError
from repro.models import pretrained_lite_model
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.tensor.engine import FULL_TF_PROFILE


# --- monitoring ------------------------------------------------------------


def test_metrics_snapshot_after_workload():
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=60))
    model = pretrained_lite_model("densenet", seed=0)
    platform.register_session(
        "m", [service_runtime_config("svc", SgxMode.HW)]
    )
    path = deploy_encrypted_model(platform, "m", platform.node(1), model)
    service = InferenceService(
        platform, "m", platform.node(1), path, mode=SgxMode.HW, name="svc"
    )
    service.start()
    service.classify(np.zeros((32, 32, 3), np.float32))

    metrics = collect_metrics(platform)
    assert len(metrics.nodes) == 2
    node1 = next(n for n in metrics.nodes if n.node_id == "node-1")
    assert node1.epc_faults > 0                # the model paged in
    assert 0 < node1.epc_utilization <= 1.0
    assert node1.simulated_time > 0
    assert metrics.network_messages > 0        # provisioning traffic
    assert metrics.cas_sessions == 1
    assert metrics.audit_records >= 1          # model upload committed
    assert metrics.audit_chain_ok
    report = metrics.format()
    assert "node-1" in report and "chain OK" in report

    # Data-plane counters: the model deploy + service start ran real
    # shield crypto on this platform's nodes.
    shields = metrics.shields
    assert shields.fs_files_written >= 1
    assert shields.fs_files_read >= 1
    assert shields.fs_crypto_bytes > 0
    assert shields.fs_real_crypto_time > 0.0
    assert shields.fs_key_cache_misses >= 1
    assert sum(shields.bytes_by_cipher.values()) > 0
    assert shields.aead_cache_hits + shields.aead_cache_misses > 0
    assert "fs shield:" in report and "net shield:" in report
    assert "aead cache:" in report


def test_metrics_scoped_to_platform():
    # Two platforms in one process: each snapshot must only aggregate
    # its own shields (the registry filters by node clock).
    p1 = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=70))
    p2 = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=71))
    model = pretrained_lite_model("densenet", seed=0)
    p1.register_session("m", [service_runtime_config("svc", SgxMode.HW)])
    deploy_encrypted_model(p1, "m", p1.node(1), model)

    assert collect_metrics(p1).shields.fs_files_written >= 1
    assert collect_metrics(p2).shields.fs_files_written == 0


def test_metrics_detect_broken_audit_chain():
    import dataclasses

    platform = SecureTFPlatform(PlatformConfig(n_nodes=1, seed=61))
    platform.cas.audit.commit("s", "/f", 0, b"\x00" * 32)
    platform.cas.audit.commit("s", "/f", 1, b"\x01" * 32)
    platform.cas.audit._log[0] = dataclasses.replace(
        platform.cas.audit._log[0], digest=b"\xff" * 32
    )
    assert collect_metrics(platform).audit_chain_ok is False


# --- encrypted datasets -------------------------------------------------------


@pytest.fixture
def shard():
    train, _ = synthetic_mnist(n_train=50, n_test=5, seed=62)
    return train


def test_dataset_serialization_roundtrip(shard):
    restored = deserialize_dataset(serialize_dataset(shard))
    np.testing.assert_array_equal(restored.images, shard.images)
    np.testing.assert_array_equal(restored.labels, shard.labels)
    assert restored.num_classes == shard.num_classes


def make_training_runtime(platform, session, node):
    config = RuntimeConfig(
        name="trainer",
        mode=SgxMode.HW,
        binary_size=FULL_TF_PROFILE.binary_size,
        fs_shield_enabled=True,
        fs_rules=dataset_rules(),
    )
    platform.register_session(session, [config])
    runtime = SconeRuntime(
        config, node.vfs, platform.cost_model, node.clock,
        cpu=node.cpu, rng=node.rng.child("trainer"),
    )
    identity = platform.provision_runtime(runtime, node, session)
    runtime.install_fs_key(
        identity.fs_key,
        freshness=ScopedFreshnessTracker(
            platform.cas.audit, f"{session}@{node.node_id}"
        ),
    )
    return runtime


def test_encrypted_dataset_roundtrip_through_enclave(shard):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=63))
    node = platform.node(1)
    runtime = make_training_runtime(platform, "train", node)
    path = deploy_encrypted_dataset(platform, "train", node, shard)

    stored = node.vfs.read(path).content
    assert shard.images.tobytes()[:256] not in stored  # ciphertext at rest

    loaded = load_encrypted_dataset(runtime, path)
    np.testing.assert_array_equal(loaded.images, shard.images)
    np.testing.assert_array_equal(loaded.labels, shard.labels)


def test_tampered_dataset_rejected(shard):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=64))
    node = platform.node(1)
    runtime = make_training_runtime(platform, "train", node)
    path = deploy_encrypted_dataset(platform, "train", node, shard)
    raw = bytearray(node.vfs.read(path).content)
    raw[len(raw) // 2] ^= 0x20  # poison one training byte
    node.vfs.tamper(path, bytes(raw))
    with pytest.raises((ShieldError, FreshnessError)):
        load_encrypted_dataset(runtime, path)


def test_dataset_rollback_rejected(shard):
    import copy

    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=65))
    node = platform.node(1)
    runtime = make_training_runtime(platform, "train", node)
    path = deploy_encrypted_dataset(platform, "train", node, shard)
    snapshot = copy.deepcopy(node.vfs.read(path))
    deploy_encrypted_dataset(platform, "train", node, shard, path=path)  # v1
    node.vfs.rollback(path, snapshot)
    with pytest.raises(FreshnessError):
        load_encrypted_dataset(runtime, path)
