"""Secure training checkpoints (stateful computing, challenge ❺)."""

import copy

import numpy as np
import pytest

from repro.core import SecureTFPlatform, TrainingJob
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode
from repro.errors import ConfigurationError, FreshnessError, ShieldError


@pytest.fixture(scope="module")
def batches():
    train, _ = synthetic_mnist(n_train=400, n_test=10, seed=15)
    return list(train.batches(100))


def make_job(session="ckpt", mode=SgxMode.SIM):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=16))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session=session, mode=mode, network_shield=False,
            learning_rate=0.05,
        ),
    )
    job.start()
    return platform, job


def test_checkpoint_roundtrip(batches):
    platform, job = make_job()
    job.train(batches, steps=2)
    trained = {k: v.copy() for k, v in job.weights().items()}
    version = job.ps.version
    path = job.save_checkpoint()

    # Wipe and restore.
    job.ps.initialize({k: np.zeros_like(v) for k, v in trained.items()})
    restored_version = job.restore_checkpoint()
    assert restored_version == version
    for name, value in job.weights().items():
        np.testing.assert_array_equal(value, trained[name])
    job.stop()


def test_checkpoint_is_encrypted_at_rest(batches):
    platform, job = make_job()
    job.train(batches, steps=1)
    path = job.save_checkpoint()
    raw = job.ps.node.vfs.read(path).content
    from repro.tensor.arrays import encode_array_dict

    assert encode_array_dict(job.weights())[:64] not in raw
    job.stop()


def test_checkpoint_tamper_detected(batches):
    platform, job = make_job()
    job.train(batches, steps=1)
    path = job.save_checkpoint()
    node = job.ps.node
    raw = bytearray(node.vfs.read(path).content)
    raw[len(raw) // 2] ^= 1
    node.vfs.tamper(path, bytes(raw))
    with pytest.raises((ShieldError, FreshnessError)):
        job.restore_checkpoint()
    job.stop()


def test_checkpoint_rollback_detected(batches):
    platform, job = make_job()
    job.train(batches, steps=1)
    path = job.save_checkpoint()
    node = job.ps.node
    snapshot = copy.deepcopy(node.vfs.read(path))
    job.train(batches, steps=1)
    job.save_checkpoint()  # newer version committed to the audit log
    node.vfs.rollback(path, snapshot)
    with pytest.raises(FreshnessError):
        job.restore_checkpoint()
    job.stop()


def test_native_mode_has_no_secure_checkpoints(batches):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=17))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session="nat", mode=SgxMode.NATIVE, network_shield=False
        ),
    )
    job.start()
    with pytest.raises(ConfigurationError):
        job.save_checkpoint()
    job.stop()
