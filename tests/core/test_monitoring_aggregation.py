"""Monitoring aggregation, serialization, and report-format tests."""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import pytest

from repro.core.monitoring import (
    NodeMetrics,
    PlatformMetrics,
    RecoveryMetrics,
    ShieldMetrics,
    SyscallMetrics,
    aggregate_into,
)


def _node(node_id: str, **overrides) -> NodeMetrics:
    base = dict(
        node_id=node_id,
        simulated_time=10.0,
        epc_capacity_granules=100,
        epc_resident_granules=40,
        epc_faults=20,
        epc_fault_time=0.5,
        epc_fault_rate=0.125,
        enclave_transitions=30,
    )
    base.update(overrides)
    return NodeMetrics(**base)


def _snapshot(**overrides) -> PlatformMetrics:
    base = dict(
        nodes=[_node("node-0"), _node("node-1", epc_faults=5)],
        network_messages=100,
        network_bytes=2_000_000,
        network_dropped=1,
        cas_sessions=2,
        cas_secrets=3,
        audit_records=8,
        audit_chain_ok=True,
    )
    base.update(overrides)
    return PlatformMetrics(**base)


# --- aggregate_into --------------------------------------------------------


def test_aggregate_sums_across_sources_with_prefix_stripping():
    shields = ShieldMetrics()
    fs_a = SimpleNamespace(files_written=2, crypto_bytes=100, crypto_time=0.1)
    fs_b = SimpleNamespace(files_written=3, crypto_bytes=50, crypto_time=0.2)
    for stats in (fs_a, fs_b):
        aggregate_into(shields, stats, prefixes=("fs_",))
    assert shields.fs_files_written == 5
    assert shields.fs_crypto_bytes == 150
    assert shields.fs_crypto_time == pytest.approx(0.3)
    assert shields.net_records_protected == 0  # untouched namespace


def test_aggregate_every_syscall_counter_is_covered():
    # The aggregation is fields()-driven: every numeric counter on the
    # source must fold in, so a newly added field cannot be silently
    # dropped.  Build a source carrying every field name.
    source = SimpleNamespace(
        **{f.name: 2 for f in dataclasses.fields(SyscallMetrics)}
    )
    target = SyscallMetrics()
    aggregate_into(target, source)
    aggregate_into(target, source)
    for f in dataclasses.fields(SyscallMetrics):
        value = getattr(target, f.name)
        if f.name in ("ring_occupancy_peak", "max_batch"):
            assert value == 2, f.name  # high-water marks combine by max
        else:
            assert value == 4, f.name  # counters sum


def test_aggregate_merges_dict_fields_per_key():
    shields = ShieldMetrics()
    aggregate_into(
        shields,
        SimpleNamespace(bytes_by_cipher={"aes-gcm": 10, "chacha": 5}),
        prefixes=("",),
    )
    aggregate_into(
        shields, SimpleNamespace(bytes_by_cipher={"aes-gcm": 7}), prefixes=("",)
    )
    assert shields.bytes_by_cipher == {"aes-gcm": 17, "chacha": 5}


def test_aggregate_ignores_booleans_and_missing_attrs():
    recovery = RecoveryMetrics()
    aggregate_into(
        recovery, SimpleNamespace(retries=1, healthy=True, unrelated="x")
    )
    assert recovery.retries == 1
    assert not hasattr(recovery, "healthy")


# --- format ---------------------------------------------------------------


def test_format_shows_fault_rate_column():
    report = _snapshot().format()
    header = next(line for line in report.splitlines() if "fault rate" in line)
    assert "fault time" in header
    node0 = next(line for line in report.splitlines() if line.startswith("node-0"))
    assert "12.5%" in node0  # epc_fault_rate=0.125 rendered per node


def test_format_shows_handshakes_expired():
    snapshot = _snapshot(recovery=RecoveryMetrics(handshakes_expired=7))
    report = snapshot.format()
    assert "7 handshakes expired" in report


def test_format_flags_broken_audit_chain():
    assert "CHAIN BROKEN" in _snapshot(audit_chain_ok=False).format()
    assert "chain OK" in _snapshot().format()


# --- to_json / from_json / diff -------------------------------------------


def test_json_round_trip():
    snapshot = _snapshot(
        shields=ShieldMetrics(fs_files_written=4, bytes_by_cipher={"aes": 9}),
        recovery=RecoveryMetrics(retries=2, handshakes_expired=1),
        syscalls=SyscallMetrics(calls=11, max_batch=3),
    )
    tree = snapshot.to_json()
    assert tree["nodes"][0]["node_id"] == "node-0"
    assert PlatformMetrics.from_json(tree) == snapshot


def test_diff_subtracts_counters_and_keeps_gauges():
    earlier = _snapshot()
    later = _snapshot(
        nodes=[
            _node("node-0", epc_faults=35, epc_resident_granules=60,
                  epc_fault_rate=0.25, simulated_time=14.0),
            _node("node-1", epc_faults=5),
        ],
        network_messages=130,
        cas_sessions=4,
    )
    delta = later.diff(earlier)
    assert delta.network_messages == 30       # cumulative counter
    assert delta.cas_sessions == 4            # gauge: keep later value
    node0 = next(n for n in delta.nodes if n.node_id == "node-0")
    assert node0.epc_faults == 15             # matched by node_id
    assert node0.simulated_time == pytest.approx(4.0)
    assert node0.epc_resident_granules == 60  # gauge
    assert node0.epc_fault_rate == 0.25       # gauge
    node1 = next(n for n in delta.nodes if n.node_id == "node-1")
    assert node1.epc_faults == 0


def test_diff_nested_dataclasses_and_dicts():
    earlier = _snapshot(
        shields=ShieldMetrics(fs_crypto_bytes=100, bytes_by_cipher={"aes": 10}),
        syscalls=SyscallMetrics(calls=5, ring_occupancy_peak=8),
    )
    later = _snapshot(
        shields=ShieldMetrics(fs_crypto_bytes=180, bytes_by_cipher={"aes": 25, "chacha": 4}),
        syscalls=SyscallMetrics(calls=9, ring_occupancy_peak=8),
    )
    delta = later.diff(earlier)
    assert delta.shields.fs_crypto_bytes == 80
    assert delta.shields.bytes_by_cipher == {"aes": 15, "chacha": 4}
    assert delta.syscalls.calls == 4
    assert delta.syscalls.ring_occupancy_peak == 8  # high-water mark


def test_diff_scale_out_node_reports_full_counters():
    earlier = _snapshot(nodes=[_node("node-0")])
    later = _snapshot(nodes=[_node("node-0"), _node("node-2", epc_faults=9)])
    delta = later.diff(earlier)
    node2 = next(n for n in delta.nodes if n.node_id == "node-2")
    assert node2.epc_faults == 9


def test_diff_type_mismatch_raises():
    from repro.core.monitoring import _diff_dataclass

    with pytest.raises(TypeError):
        _diff_dataclass(ShieldMetrics(), RecoveryMetrics())
