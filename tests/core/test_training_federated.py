"""Training jobs and federated learning through the platform API."""

import numpy as np
import pytest

from repro.core import FederatedLearning, Hospital, SecureTFPlatform, TrainingJob
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode
from repro.errors import AttestationError, ConfigurationError


@pytest.fixture(scope="module")
def mnist():
    train, test = synthetic_mnist(n_train=800, n_test=100, seed=4)
    return list(train.batches(100)), test


def run_job(mode, network_shield, workers, batches, steps=None):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=2))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session="job",
            n_workers=workers,
            mode=mode,
            network_shield=network_shield,
            learning_rate=0.05,
        ),
    )
    job.start()
    result = job.train(batches, steps=steps)
    job.stop()
    return job, result


def test_secure_training_reduces_loss(mnist):
    batches, _ = mnist
    job, result = run_job(SgxMode.HW, True, 1, batches)
    first_losses = result.final_loss
    assert result.steps == len(batches)
    assert result.wall_clock > 0
    # Weights at the PS actually moved.
    assert any(np.abs(w).sum() > 0 for w in job.weights().values())


def test_hw_much_slower_than_native(mnist):
    batches, _ = mnist
    _, native = run_job(SgxMode.NATIVE, False, 1, batches, steps=4)
    _, hw = run_job(SgxMode.HW, True, 1, batches, steps=4)
    # Paper Fig. 8: full secureTF training is roughly an order of
    # magnitude slower than native (14x) due to EPC pressure.
    ratio = hw.wall_clock / native.wall_clock
    assert 6 < ratio < 30


def test_workers_speed_up_training(mnist):
    batches, _ = mnist
    _, one = run_job(SgxMode.HW, True, 1, batches)
    _, two = run_job(SgxMode.HW, True, 2, batches)
    speedup = one.wall_clock / two.wall_clock
    assert 1.6 < speedup < 2.2  # paper: 1.96x


def test_network_shield_adds_overhead(mnist):
    batches, _ = mnist
    _, plain = run_job(SgxMode.SIM, False, 1, batches, steps=4)
    _, shielded = run_job(SgxMode.SIM, True, 1, batches, steps=4)
    assert shielded.wall_clock > plain.wall_clock


def test_native_cannot_enable_network_shield():
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2))
    with pytest.raises(ConfigurationError):
        TrainingJob(
            platform,
            TrainingJobConfig(
                session="x", mode=SgxMode.NATIVE, network_shield=True
            ),
        )
    with pytest.raises(ConfigurationError):
        TrainingJob(
            platform, TrainingJobConfig(session="x", n_workers=0)
        )


def test_train_requires_start(mnist):
    batches, _ = mnist
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2))
    job = TrainingJob(
        platform, TrainingJobConfig(session="x", mode=SgxMode.SIM, network_shield=False)
    )
    with pytest.raises(ConfigurationError):
        job.train(batches)


# --- federated learning -----------------------------------------------------------


def test_federated_rounds_improve_accuracy():
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=5))
    train, test = synthetic_mnist(n_train=900, n_test=200, seed=6)
    shard = len(train) // 3
    hospitals = [
        Hospital(
            f"hospital-{i}",
            platform.node(i),
            # Disjoint shards: each hospital holds private data.
            type(train)(
                train.images[i * shard : (i + 1) * shard],
                train.labels[i * shard : (i + 1) * shard],
                train.num_classes,
            ),
            learning_rate=0.1,
            seed=3,
        )
        for i in range(3)
    ]
    fl = FederatedLearning(platform, "fl", hospitals, mode=SgxMode.HW)
    fl.start()
    hospitals[0].load_weights(fl.global_weights())
    before = hospitals[0].evaluate_accuracy(test)
    for round_index in range(4):
        fl.run_round(local_steps=4, round_seed=round_index)
    hospitals[0].load_weights(fl.global_weights())
    after = hospitals[0].evaluate_accuracy(test)
    assert fl.rounds_completed == 4
    assert after > before + 0.2
    fl.stop()


def test_federated_needs_multiple_parties():
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2))
    train, _ = synthetic_mnist(n_train=50, n_test=10, seed=0)
    hospital = Hospital("solo", platform.node(0), train)
    with pytest.raises(ConfigurationError):
        FederatedLearning(platform, "fl", [hospital])


def test_unauthorized_party_cannot_submit():
    from repro.cluster.rpc import SecureRpcClient
    from repro.crypto.certs import Certificate
    from repro.crypto.ed25519 import Ed25519PrivateKey
    from repro.crypto.tls import TlsIdentity
    from repro.runtime.net_shield import NetworkShield

    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=5))
    train, _ = synthetic_mnist(n_train=100, n_test=10, seed=6)
    hospitals = [
        Hospital(f"h{i}", platform.node(i), train.take(30), seed=3)
        for i in range(2)
    ]
    fl = FederatedLearning(platform, "fl", hospitals, mode=SgxMode.HW)
    fl.start()

    # A CAS-certified identity that is NOT a hospital of this session.
    node = platform.node(2)
    key_bytes, cert_bytes = platform.cas.keys.new_tls_identity(
        "user/random-guy", now=node.clock.now
    )
    shield = NetworkShield(
        TlsIdentity(Ed25519PrivateKey(key_bytes), Certificate.from_bytes(cert_bytes)),
        [platform.cas.keys.ca.public_key()],
        platform.cost_model,
        node.clock,
        node.rng.child("rg"),
    )
    outsider = SecureRpcClient(platform.network, "rg", node, shield)
    conn = outsider.connect(fl.address)
    # The aggregator's authentication rejection arrives typed.
    with pytest.raises(AttestationError):
        conn.call("pull_global", b"")
    fl.stop()
