"""Profiler tests: exact per-layer attribution and the flame report."""

from __future__ import annotations

import pytest

from repro._sim import SimClock
from repro.observability import (
    LAYERS,
    Tracer,
    build_flame,
    flame_report,
    format_profile,
    profile,
)


def _charged_clock(tracer: Tracer) -> SimClock:
    """A clock with 4.0s elapsed: 1.5 charged, 2.5 uncharged compute."""
    clock = SimClock()
    tracer.register_clock(clock, "node-0")
    clock.advance(2.0)  # uncharged -> compute
    clock.advance(1.0)
    tracer.charge(clock, "crypto", 1.0)
    clock.advance(0.5)
    tracer.charge(clock, "epc_faults", 0.5)
    clock.advance(0.5)  # uncharged -> compute
    return clock


def test_layer_report_sums_exactly_to_elapsed():
    tracer = Tracer()
    _charged_clock(tracer)
    node = profile(tracer)["node-0"]
    assert node.elapsed == pytest.approx(4.0)
    assert node.layers["crypto"] == pytest.approx(1.0)
    assert node.layers["epc_faults"] == pytest.approx(0.5)
    assert node.layers["compute"] == pytest.approx(2.5)
    assert node.total == pytest.approx(node.elapsed)
    assert set(node.layers) == set(LAYERS)


def test_profile_starts_at_registration_time():
    tracer = Tracer()
    clock = SimClock()
    clock.advance(10.0)  # before registration: not this session's time
    tracer.register_clock(clock, "late")
    clock.advance(1.0)
    assert profile(tracer)["late"].elapsed == pytest.approx(1.0)


def test_compute_clamps_float_noise_at_zero():
    tracer = Tracer()
    clock = SimClock()
    tracer.register_clock(clock, "n")
    clock.advance(1.0)
    tracer.charge(clock, "crypto", 1.0 + 1e-12)  # float noise past elapsed
    node = profile(tracer)["n"]
    assert node.layers["compute"] == 0.0


def test_format_profile_has_header_and_rows():
    tracer = Tracer()
    _charged_clock(tracer)
    text = format_profile(profile(tracer))
    assert "node-0" in text
    assert "elapsed" in text
    for layer in LAYERS:
        assert layer in text


def test_flame_nests_same_node_spans_and_subtracts_self_time():
    tracer = Tracer()
    clock = SimClock()
    tracer.register_clock(clock, "node-0")
    outer = tracer.start_span(clock, "train.step")
    clock.advance(0.2)
    inner = tracer.start_span(clock, "rpc.call")
    clock.advance(0.3)
    tracer.end_span(inner)
    clock.advance(0.1)
    tracer.end_span(outer)

    root = build_flame(tracer)["node-0"]
    step = root.children["train.step"]
    assert step.count == 1
    assert step.total == pytest.approx(0.6)
    assert step.self_time == pytest.approx(0.3)
    assert step.children["rpc.call"].total == pytest.approx(0.3)


def test_flame_keeps_remote_parents_as_roots():
    tracer = Tracer()
    client, server = SimClock(), SimClock()
    tracer.register_clock(client, "client")
    tracer.register_clock(server, "server")
    call = tracer.start_span(client, "rpc.call")
    handler = tracer.start_span(
        server, "rpc.server", parent_context=call.context()
    )
    server.advance(0.4)
    tracer.end_span(handler)
    client.advance(0.5)
    tracer.end_span(call)

    trees = build_flame(tracer)
    # The handler stays under its own node's tree — it must not be
    # subtracted from the client span's self time across clocks.
    assert "rpc.server" in trees["server"].children
    assert "rpc.server" not in trees["client"].children["rpc.call"].children
    assert trees["client"].children["rpc.call"].self_time == pytest.approx(0.5)


def test_flame_report_renders_charges_inline():
    tracer = Tracer()
    clock = SimClock()
    tracer.register_clock(clock, "node-0")
    span = tracer.start_span(clock, "train.compute")
    clock.advance(0.2)
    tracer.charge(clock, "epc_faults", 0.2)
    tracer.end_span(span)
    text = flame_report(tracer)
    assert "node-0" in text
    assert "train.compute" in text
    assert "epc_faults 0.2000s" in text


def test_flame_report_empty_tracer():
    assert flame_report(Tracer()) == "(no spans recorded)"
