"""Tracer unit tests: spans, propagation contexts, charges, histograms."""

from __future__ import annotations

import pytest

from repro._sim import SimClock, probe
from repro.observability import Series, Tracer


def test_span_nesting_same_clock():
    tracer = Tracer()
    clock = SimClock()
    outer = tracer.start_span(clock, "outer")
    clock.advance(1.0)
    inner = tracer.start_span(clock, "inner")
    clock.advance(0.5)
    tracer.end_span(inner)
    tracer.end_span(outer)

    assert inner.trace_id == outer.trace_id
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert inner.duration == pytest.approx(0.5)
    assert outer.duration == pytest.approx(1.5)


def test_span_ids_are_deterministic_counters():
    tracer = Tracer()
    clock = SimClock()
    a = tracer.start_span(clock, "a")
    tracer.end_span(a)
    b = tracer.start_span(clock, "b")
    tracer.end_span(b)
    assert (a.trace_id, a.span_id) == ("T1", "S1")
    assert (b.trace_id, b.span_id) == ("T2", "S2")


def test_remote_parent_context_propagates_trace_id():
    tracer = Tracer()
    client_clock, server_clock = SimClock(), SimClock()
    call = tracer.start_span(client_clock, "rpc.call")
    context = tracer.current_context(client_clock)
    assert context == {"t": call.trace_id, "s": call.span_id}

    handler = tracer.start_span(server_clock, "rpc.server", parent_context=context)
    assert handler.trace_id == call.trace_id
    assert handler.parent_id == call.span_id
    assert handler.remote_parent
    tracer.end_span(handler)
    tracer.end_span(call)


def test_current_context_is_none_outside_spans():
    tracer = Tracer()
    clock = SimClock()
    assert tracer.current_context(clock) is None
    span = tracer.start_span(clock, "s")
    tracer.end_span(span)
    assert tracer.current_context(clock) is None


def test_end_span_pops_through_abandoned_children():
    tracer = Tracer()
    clock = SimClock()
    outer = tracer.start_span(clock, "outer")
    tracer.start_span(clock, "leaked-child")
    tracer.end_span(outer)  # exception unwound past the child's end
    assert tracer.current_context(clock) is None


def test_span_cap_counts_drops():
    tracer = Tracer(max_spans=2)
    clock = SimClock()
    for _ in range(5):
        tracer.end_span(tracer.start_span(clock, "s"))
    assert len(tracer.spans) == 2
    assert tracer.dropped_spans == 3


def test_charges_accumulate_layer_totals_and_windows():
    tracer = Tracer()
    clock = SimClock()
    clock.advance(1.0)
    tracer.charge(clock, "crypto", 1.0)
    clock.advance(2.0)
    tracer.charge(clock, "epc_faults", 2.0)
    clock.advance(0.5)
    tracer.charge(clock, "crypto", 0.5)

    record = tracer.clock_record(clock)
    assert record.layer_totals == pytest.approx({"crypto": 1.5, "epc_faults": 2.0})
    # Window queries over the recorded intervals (start-inclusive).
    assert record.charged_within(0.0, 3.5) == pytest.approx(3.5)
    assert record.charged_within(0.0, 1.0) == pytest.approx(1.0)
    assert record.charged_within(1.0, 3.0) == pytest.approx(2.0)
    assert record.charged_within(3.2, 3.5) == pytest.approx(0.0)


def test_zero_and_negative_charges_ignored():
    tracer = Tracer()
    clock = SimClock()
    tracer.charge(clock, "crypto", 0.0)
    tracer.charge(clock, "crypto", -1.0)
    assert tracer.clock_record(clock).layer_totals == {}


def test_charge_histogram_records_per_item_latency():
    tracer = Tracer()
    clock = SimClock()
    clock.advance(0.8)
    tracer.charge(clock, "crypto", 0.8, count=4, histogram="fs.chunk_crypto")
    hist = tracer.histograms["fs.chunk_crypto"]
    assert hist.count == 4
    assert hist.mean == pytest.approx(0.2)


def test_rpc_span_duration_feeds_latency_histogram():
    tracer = Tracer()
    clock = SimClock()
    span = tracer.start_span(clock, "rpc.call")
    clock.advance(0.25)
    tracer.end_span(span)
    assert tracer.histograms["rpc.latency"].mean == pytest.approx(0.25)


def test_register_clock_first_label_wins():
    tracer = Tracer()
    clock = SimClock()
    tracer.register_clock(clock, "node-0")
    tracer.register_clock(clock, "container-on-node-0")
    assert tracer.label_of(clock) == "node-0"


def test_probe_span_is_noop_without_recorder():
    assert probe.ACTIVE is None
    clock = SimClock()
    with probe.span(clock, "anything", attrs={"k": "v"}):
        pass  # must not raise, must not advance, must record nothing
    assert clock.now == 0.0


def test_probe_span_records_when_active():
    tracer = Tracer()
    probe.set_active(tracer)
    clock = SimClock()
    with probe.span(clock, "work") as span:
        clock.advance(1.0)
    assert span.duration == pytest.approx(1.0)
    assert tracer.spans == [span]


def test_series_ring_buffer_evicts_oldest():
    series = Series("s", capacity=3)
    for i in range(5):
        series.append(float(i), float(i * 10))
    assert series.total_appended == 5
    assert series.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert series.values() == [20.0, 30.0, 40.0]
    assert series.latest() == (4.0, 40.0)


def test_histogram_percentiles_are_weighted():
    from repro.observability import Histogram

    hist = Histogram("h")
    hist.observe(1.0, count=98)
    hist.observe(100.0, count=2)
    assert hist.percentile(50) == 1.0
    assert hist.percentile(99) == 100.0
    summary = hist.summary()
    assert summary["count"] == 100.0
    assert summary["p50"] == 1.0
