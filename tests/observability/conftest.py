"""Observability suite fixtures: never leak a probe between tests."""

from __future__ import annotations

import pytest

from repro._sim import probe


@pytest.fixture(autouse=True)
def _reset_probe():
    """A leaked recorder would silently instrument every later test."""
    previous = probe.ACTIVE
    previous_flight = probe.FLIGHT
    previous_incidents = probe.INCIDENTS
    yield
    probe.set_active(previous)
    probe.set_flight(previous_flight)
    probe.set_incidents(previous_incidents)
