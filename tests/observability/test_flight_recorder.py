"""Flight recorder: ring semantics, cross-node timelines, zero-cost off."""

from __future__ import annotations

import pytest

from repro._sim import probe
from repro._sim.clock import SimClock
from repro.observability.flight import CONTROL_RING, FlightEvent, FlightRecorder

pytestmark = pytest.mark.monitoring


class TestRings:
    def test_capacity_overwrites_oldest(self):
        recorder = FlightRecorder(capacity=4)
        clock = SimClock()
        recorder.register_clock(clock, "n0")
        for i in range(10):
            clock.advance(1.0)
            recorder.record(clock, "rpc", f"call-{i}")
        events = recorder.freeze()["n0"]
        assert [e.name for e in events] == [f"call-{i}" for i in range(6, 10)]
        assert recorder.events_recorded == 10

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_unregistered_clock_gets_auto_label(self):
        recorder = FlightRecorder()
        clock = SimClock()
        recorder.record(clock, "rpc", "x")
        assert recorder.label_of(clock) == "clock-0"

    def test_clockless_events_land_in_control_ring_at_fleet_time(self):
        recorder = FlightRecorder()
        clock = SimClock()
        recorder.register_clock(clock, "n0")
        clock.advance(3.0)
        recorder.record(None, "fence", "router", "stale epoch")
        frozen = recorder.freeze()
        assert [e.name for e in frozen[CONTROL_RING]] == ["router"]
        assert frozen[CONTROL_RING][0].time == 3.0
        assert frozen[CONTROL_RING][0].node == CONTROL_RING


class TestTimeline:
    def test_merge_is_time_then_seq_ordered(self):
        recorder = FlightRecorder()
        a, b = SimClock(), SimClock()
        recorder.register_clock(a, "a")
        recorder.register_clock(b, "b")
        a.advance(2.0)
        recorder.record(a, "rpc", "late")
        b.advance(1.0)
        recorder.record(b, "rpc", "early")
        recorder.record(a, "rpc", "late-2")
        names = [e.name for e in recorder.timeline()]
        assert names == ["early", "late", "late-2"]

    def test_window_restricts_to_last_n_seconds(self):
        recorder = FlightRecorder()
        clock = SimClock()
        recorder.register_clock(clock, "n0")
        for i in range(10):
            clock.advance(1.0)
            recorder.record(clock, "rpc", f"e{i}")
        windowed = recorder.timeline(until=10.0, window=3.0)
        assert [e.name for e in windowed] == ["e6", "e7", "e8", "e9"]

    def test_line_encoding_is_canonical(self):
        event = FlightEvent(1.5, 7, "n0", "fence", "router", "stale")
        assert event.line() == "7 1.500000 n0 fence router stale"
        bare = FlightEvent(0.0, 0, "n1", "span", "rpc.call", "")
        assert bare.line() == "0 0.000000 n1 span rpc.call"


class TestFreeze:
    def test_frozen_recorder_drops_events(self):
        recorder = FlightRecorder()
        clock = SimClock()
        recorder.register_clock(clock, "n0")
        recorder.record(clock, "rpc", "before")
        recorder.freeze()
        recorder.record(clock, "rpc", "during")
        recorder.unfreeze()
        recorder.record(clock, "rpc", "after")
        names = [e.name for e in recorder.timeline()]
        assert names == ["before", "after"]


class TestProbeSlot:
    def test_flight_helper_is_noop_without_recorder(self):
        assert probe.FLIGHT is None
        probe.flight(None, "rpc", "nobody-listening")  # must not raise

    def test_flight_helper_routes_to_installed_recorder(self):
        recorder = FlightRecorder()
        previous = probe.set_flight(recorder)
        try:
            clock = SimClock()
            recorder.register_clock(clock, "n0")
            probe.flight(clock, "retry", "replica-0", "attempt=2")
            assert recorder.events_recorded == 1
            assert recorder.timeline()[0].kind == "retry"
        finally:
            probe.set_flight(previous)

    def test_recording_never_advances_clocks(self):
        recorder = FlightRecorder()
        clock = SimClock()
        recorder.register_clock(clock, "n0")
        clock.advance(1.0)
        for _ in range(100):
            recorder.record(clock, "rpc", "x")
        assert clock.now == 1.0


class TestTracerForwarding:
    def test_span_end_and_charge_forward_into_rings(self):
        from repro.observability.tracer import Tracer

        recorder = FlightRecorder()
        tracer = Tracer()
        prev_flight = probe.set_flight(recorder)
        prev_active = probe.set_active(tracer)
        try:
            clock = SimClock()
            recorder.register_clock(clock, "n0")
            with probe.span(clock, "rpc.call"):
                clock.advance(0.5)
            tracer.charge(clock, "crypto", 0.25)
            kinds = [e.kind for e in recorder.timeline()]
            assert kinds == ["span", "charge"]
            span_event = recorder.timeline()[0]
            assert span_event.name == "rpc.call"
            assert "T1/S1" in span_event.detail
        finally:
            probe.set_active(prev_active)
            probe.set_flight(prev_flight)
