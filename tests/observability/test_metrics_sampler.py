"""Sampler tests: interval scraping, boundary realignment, detach."""

from __future__ import annotations

import pytest

from repro.core import SecureTFPlatform
from repro.core.platform import PlatformConfig
from repro.observability import MetricsSampler, Series


@pytest.fixture()
def platform():
    p = SecureTFPlatform(
        PlatformConfig(n_nodes=2, seed=7, tracing=True, metrics_interval=0.5)
    )
    yield p
    p.close_telemetry()


def test_platform_installs_sampler(platform):
    sampler = platform.telemetry.sampler
    assert isinstance(sampler, MetricsSampler)
    assert sampler.interval == 0.5
    assert sampler.samples_taken == 0


def test_sampler_scrapes_on_interval_boundary(platform):
    sampler = platform.telemetry.sampler
    platform.nodes[0].clock.advance(0.4)
    assert sampler.samples_taken == 0  # boundary not reached yet
    platform.nodes[0].clock.advance(0.2)
    assert sampler.samples_taken == 1
    assert sampler.series  # every numeric leaf got a series
    assert all(isinstance(s, Series) for s in sampler.series.values())


def test_sampler_series_record_interval_deltas(platform):
    sampler = platform.telemetry.sampler
    platform.network.stats.messages += 3
    platform.nodes[0].clock.advance(1.0)
    messages = sampler.series["network_messages"]
    # The series holds per-interval deltas, not absolute counters.
    assert messages.values() == [3.0]
    # Stamped at the interval boundary (one interval past platform
    # construction time), not at the observing clock's current time.
    assert 0.5 <= messages.latest()[0] < platform.nodes[0].clock.now
    platform.network.stats.messages += 2
    platform.nodes[0].clock.advance(0.6)
    assert messages.values() == [3.0, 2.0]


def test_big_jump_takes_one_sample_and_realigns(platform):
    sampler = platform.telemetry.sampler
    platform.nodes[0].clock.advance(10.3)  # crosses 20 boundaries at once
    assert sampler.samples_taken == 1
    platform.nodes[0].clock.advance(0.1)
    assert sampler.samples_taken == 1  # realigned past now, not backlogged
    platform.nodes[0].clock.advance(0.5)
    assert sampler.samples_taken == 2


def test_explicit_sample_and_close_detaches(platform):
    sampler = platform.telemetry.sampler
    sampler.sample()
    assert sampler.samples_taken == 1
    sampler.close()
    platform.nodes[0].clock.advance(5.0)
    assert sampler.samples_taken == 1  # unsubscribed: no further scrapes


def test_sampler_rejects_nonpositive_interval(platform):
    with pytest.raises(ValueError, match="interval"):
        MetricsSampler(platform, interval=0.0)


def test_series_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="capacity"):
        Series("s", capacity=0)


def test_sampling_never_advances_simulated_time(platform):
    before = [node.clock.now for node in platform.nodes]
    platform.telemetry.sampler.sample()
    assert [node.clock.now for node in platform.nodes] == before
