"""Incident pipeline: dedup, bundle determinism, root cause, integration."""

from __future__ import annotations

import json

import pytest

from repro._sim import probe
from repro._sim.clock import SimClock
from repro.observability.exporters import validate_chrome_trace
from repro.observability.flight import FlightEvent, FlightRecorder
from repro.observability.incident import (
    IncidentPipeline,
    find_root_cause,
)

pytestmark = pytest.mark.monitoring


def make_pipeline(**kwargs):
    recorder = FlightRecorder()
    clock = SimClock()
    recorder.register_clock(clock, "n0")
    return IncidentPipeline(recorder, **kwargs), recorder, clock


class TestTrigger:
    def test_exactly_one_bundle_per_trigger_key(self):
        pipeline, recorder, clock = make_pipeline()
        first = pipeline.trigger("fence", "router", clock=clock)
        second = pipeline.trigger("fence", "router", clock=clock)
        third = pipeline.trigger("fence", "checkpoint", clock=clock)
        assert first is not None and third is not None
        assert second is None
        assert len(pipeline.bundles) == 2
        assert pipeline.suppressed == 1
        assert [b.incident_id for b in pipeline.bundles] == ["I1", "I2"]

    def test_max_bundles_caps_emission(self):
        pipeline, recorder, clock = make_pipeline(max_bundles=1)
        assert pipeline.trigger("crash", "r0", clock=clock) is not None
        assert pipeline.trigger("crash", "r1", clock=clock) is None
        assert pipeline.suppressed == 1

    def test_bundle_carries_windowed_timeline(self):
        pipeline, recorder, clock = make_pipeline(window=2.0)
        for i in range(8):
            clock.advance(1.0)
            recorder.record(clock, "rpc", f"call-{i}")
        bundle = pipeline.trigger("alert", "p99", clock=clock)
        # Only the last 2 seconds before the trigger (inclusive window
        # edge) survive in the causal timeline.
        assert [line.split()[4] for line in bundle.timeline] == [
            "call-5",
            "call-6",
            "call-7",
        ]
        # The full ring rides along as the black box.
        assert len(bundle.rings["n0"]) == 8

    def test_recording_resumes_after_bundle_assembly(self):
        pipeline, recorder, clock = make_pipeline()
        pipeline.trigger("crash", "r0", clock=clock)
        recorder.record(clock, "rpc", "after")
        assert recorder.timeline()[-1].name == "after"

    def test_probe_incident_helper_routes_to_pipeline(self):
        pipeline, recorder, clock = make_pipeline()
        previous = probe.set_incidents(pipeline)
        try:
            probe.incident("watchdog.quarantine", "replica-3", clock=clock)
            assert len(pipeline.bundles) == 1
            assert pipeline.bundles[0].trigger_kind == "watchdog.quarantine"
        finally:
            probe.set_incidents(previous)


class TestRootCause:
    def _events(self):
        return [
            FlightEvent(1.0, 0, "n0", "rpc", "call", ""),
            FlightEvent(2.0, 1, "n1", "crash", "replica-0", "T7/S9"),
            FlightEvent(3.0, 2, "n0", "retry", "replica-0", "attempt=2"),
            FlightEvent(4.0, 3, "n2", "fence", "router", "stale epoch=1"),
        ]

    def test_prefers_fault_on_the_trigger_trace(self):
        cause = find_root_cause(
            self._events(), "alert", "p99", 5.0, trigger_trace="T7"
        )
        assert cause["kind"] == "crash"
        assert "replica-0" in cause["summary"]

    def test_falls_back_to_earliest_fault(self):
        cause = find_root_cause(self._events(), "alert", "p99", 5.0)
        assert cause["kind"] == "crash"
        assert cause["time"] == 2.0

    def test_no_fault_means_trigger_is_first_evidence(self):
        events = [FlightEvent(1.0, 0, "n0", "rpc", "call", "")]
        cause = find_root_cause(events, "alert", "p99", 5.0)
        assert "no prior fault" in cause["summary"]

    def test_future_faults_are_not_causes(self):
        events = [FlightEvent(9.0, 0, "n0", "crash", "later", "")]
        cause = find_root_cause(events, "alert", "p99", 5.0)
        assert "no prior fault" in cause["summary"]


class TestDeterminism:
    def _run(self):
        pipeline, recorder, clock = make_pipeline(window=3.0)
        for i in range(6):
            clock.advance(0.5)
            recorder.record(clock, "rpc", f"call-{i}", f"attempt={i}")
        recorder.record(clock, "crash", "replica-0", "killed")
        bundle = pipeline.trigger(
            "replica.crash", "replica-0", clock=clock, detail="watchdog saw it"
        )
        return bundle.dump()

    def test_two_seeded_runs_emit_byte_identical_bundles(self):
        assert self._run() == self._run()

    def test_dump_is_valid_sorted_json(self):
        payload = json.loads(self._run())
        assert payload["root_cause"]["kind"] == "crash"
        assert payload["trigger"]["detail"] == "watchdog saw it"


class TestChromeTraceWindow:
    def test_bundle_chrome_trace_validates(self):
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        recorder = FlightRecorder()
        clock = SimClock()
        recorder.register_clock(clock, "n0")
        tracer.register_clock(clock, "n0")
        prev = probe.set_active(tracer)
        try:
            for i in range(5):
                with probe.span(clock, "rpc.call", attrs={"i": i}):
                    clock.advance(1.0)
            pipeline = IncidentPipeline(recorder, tracer=tracer, window=2.0)
            bundle = pipeline.trigger("alert", "p99", clock=clock)
        finally:
            probe.set_active(prev)
        doc = bundle.chrome_trace
        assert doc is not None
        # Referentially closed and schema-valid, even though the window
        # cut away the earlier spans.
        events = validate_chrome_trace(doc)
        assert 0 < events < 5
        json.dumps(doc)

    def test_no_tracer_means_no_chrome_trace(self):
        pipeline, recorder, clock = make_pipeline()
        bundle = pipeline.trigger("alert", "p99", clock=clock)
        assert bundle.chrome_trace is None


class TestServingIntegration:
    def _run_plane(self, seed):
        from repro.serving.service import ServingPlane

        plane = ServingPlane(
            seed=seed, n_nodes=3, initial_replicas=2, monitoring=True
        )
        plane.platform.scheduler.schedule(
            1.0, lambda: plane.pool.crash("replica-0"), label="chaos:crash"
        )
        stats = plane.run_traffic(clients=4, duration=2.0, deadline_budget=0.5)
        plane.check_invariants()
        bundles = [b.dump() for b in plane.monitoring.bundles]
        session_stats = plane.monitoring.stats
        events = session_stats.flight_events
        plane.close()
        return stats, bundles, events

    def test_replica_crash_produces_one_bundle_naming_the_crash(self):
        _, bundles, flight_events = self._run_plane(21)
        crash_bundles = [
            json.loads(b)
            for b in bundles
            if json.loads(b)["trigger"]["kind"] == "replica.crash"
        ]
        assert len(crash_bundles) == 1
        payload = crash_bundles[0]
        assert payload["trigger"]["name"] == "replica-0"
        assert payload["root_cause"]["kind"] == "crash"
        assert "replica-0" in payload["root_cause"]["summary"]
        assert flight_events > 0
        # The platform-wide metric snapshot rode along.
        assert payload["metrics"] is not None

    def test_monitored_plane_is_deterministic(self):
        first = self._run_plane(21)
        second = self._run_plane(21)
        assert first[0].ok == second[0].ok
        assert first[1] == second[1]  # byte-identical bundles

    def test_monitoring_does_not_perturb_the_simulation(self):
        from repro.serving.service import ServingPlane

        def run(monitoring):
            plane = ServingPlane(
                seed=33, n_nodes=3, initial_replicas=2, monitoring=monitoring
            )
            stats = plane.run_traffic(clients=4, duration=2.0)
            plane.check_invariants()
            trace = plane.trace_bytes()
            time = plane.time
            plane.close()
            return stats.ok, trace, time

        assert run(False) == run(True)
