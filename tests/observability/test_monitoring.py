"""SLO engine: burn-rate eligibility, alert state machine, determinism."""

from __future__ import annotations

import pytest

from repro._sim.clock import SimClock
from repro._sim.scheduler import Scheduler
from repro.observability.monitoring import (
    STATE_FIRING,
    STATE_OK,
    STATE_PENDING,
    MonitoringSession,
    SloMonitor,
    SloSpec,
    fraction_probe,
    rate_probe,
)

pytestmark = pytest.mark.monitoring


def make_spec(value_fn, **overrides):
    defaults = dict(
        name="test.metric",
        value_probe=value_fn,
        objective=1.0,
        budget=0.01,
        short_window=1.0,
        long_window=4.0,
        burn_threshold=2.0,
        for_intervals=2,
        clear_intervals=2,
    )
    defaults.update(overrides)
    return SloSpec(**defaults)


def drive(monitor, times):
    for t in times:
        monitor.evaluate(t)


class TestStateMachine:
    def test_healthy_signal_never_leaves_ok(self):
        monitor = SloMonitor(Scheduler(), SimClock(), [make_spec(lambda: 0.5)])
        drive(monitor, [i * 0.25 for i in range(40)])
        alert = monitor.alert("test.metric")
        assert alert.state == STATE_OK
        assert alert.transitions == []

    def test_sustained_violation_walks_ok_pending_firing(self):
        monitor = SloMonitor(Scheduler(), SimClock(), [make_spec(lambda: 5.0)])
        monitor.evaluate(0.0)
        assert monitor.alert("test.metric").state == STATE_PENDING
        monitor.evaluate(0.25)
        assert monitor.alert("test.metric").state == STATE_FIRING
        states = [s for _, s in monitor.alert("test.metric").transitions]
        assert states == [STATE_PENDING, STATE_FIRING]

    def test_one_sample_blip_clears_from_pending(self):
        values = iter([5.0, 0.1, 0.1, 0.1])
        # Generous budget: a single violated sample burns at exactly the
        # threshold, and the next healthy sample halves the fraction.
        monitor = SloMonitor(
            Scheduler(), SimClock(), [make_spec(lambda: next(values), budget=0.5)]
        )
        monitor.evaluate(0.0)
        assert monitor.alert("test.metric").state == STATE_PENDING
        # The next healthy sample dilutes the short-window fraction below
        # the burn threshold: back to ok without ever firing.
        monitor.evaluate(0.25)
        alert = monitor.alert("test.metric")
        assert alert.state == STATE_OK
        assert alert.fired_count == 0

    def test_firing_resolves_after_clear_intervals_of_calm(self):
        values = iter([5.0] * 4 + [0.1] * 40)
        monitor = SloMonitor(
            Scheduler(),
            SimClock(),
            [make_spec(lambda: next(values), short_window=0.5)],
        )
        times = [i * 0.25 for i in range(44)]
        fired_at = resolved_at = None
        for t in times:
            monitor.evaluate(t)
            alert = monitor.alert("test.metric")
            if alert.state == STATE_FIRING and fired_at is None:
                fired_at = t
            if alert.resolved_count and resolved_at is None:
                resolved_at = t
        assert fired_at is not None
        assert resolved_at is not None and resolved_at > fired_at
        assert monitor.alert("test.metric").state == STATE_OK
        states = [s for _, s in monitor.alert("test.metric").transitions]
        assert states == [STATE_PENDING, STATE_FIRING, "resolved"]

    def test_none_probe_is_skipped_entirely(self):
        monitor = SloMonitor(Scheduler(), SimClock(), [make_spec(lambda: None)])
        drive(monitor, [i * 0.25 for i in range(20)])
        alert = monitor.alert("test.metric")
        assert alert.state == STATE_OK
        assert alert.last_value is None

    def test_gte_comparison_fires_on_low_values(self):
        spec = make_spec(lambda: 0.1, comparison=">=", objective=1.0)
        monitor = SloMonitor(Scheduler(), SimClock(), [spec])
        drive(monitor, [0.0, 0.25])
        assert monitor.alert("test.metric").state == STATE_FIRING

    def test_duplicate_slo_names_rejected(self):
        with pytest.raises(ValueError):
            SloMonitor(
                Scheduler(),
                SimClock(),
                [make_spec(lambda: 0.0), make_spec(lambda: 1.0)],
            )


class TestBurnRate:
    def test_long_window_gates_short_blips(self):
        # Violations confined to one short burst inside a long healthy
        # history: short-window burn spikes but long-window burn stays
        # below threshold, so the alert never becomes eligible.
        spec = make_spec(
            lambda: 0.0,  # unused; we call observe directly
            budget=0.1,
            short_window=1.0,
            long_window=10.0,
        )
        monitor = SloMonitor(Scheduler(), SimClock(), [spec])
        state = monitor._states[0]
        for i in range(36):
            state.observe(i * 0.25, 0.5)  # 9s of healthy history
        state.observe(9.25, 5.0)  # one violation
        alert = state.alert
        assert alert.burn_short >= spec.burn_threshold
        assert alert.burn_long < spec.burn_threshold
        assert state.eligible_streak == 0

    def test_window_trimming_drops_stale_samples(self):
        spec = make_spec(lambda: 0.0, long_window=2.0)
        monitor = SloMonitor(Scheduler(), SimClock(), [spec])
        state = monitor._states[0]
        for i in range(20):
            state.observe(i * 0.25, 0.5)
        assert all(t >= 4.75 - 2.0 for t, _ in state.samples)


class TestProbes:
    def test_rate_probe_first_call_has_no_baseline(self):
        counter = {"v": 0}
        fn = rate_probe(lambda: counter["v"], interval=0.5)
        assert fn() is None
        counter["v"] = 10
        assert fn() == pytest.approx(20.0)
        counter["v"] = 10
        assert fn() == pytest.approx(0.0)

    def test_fraction_probe_none_when_denominator_flat(self):
        num, den = {"v": 0}, {"v": 0}
        fn = fraction_probe(lambda: num["v"], lambda: den["v"])
        assert fn() is None  # denominator delta is zero
        num["v"], den["v"] = 3, 10
        assert fn() == pytest.approx(0.3)
        num["v"] = 4  # denominator unchanged -> no signal
        assert fn() is None


class TestScheduledEvaluation:
    def test_monitor_rides_the_event_heap(self):
        scheduler = Scheduler()
        clock = SimClock()
        monitor = SloMonitor(
            scheduler, clock, [make_spec(lambda: 0.0)], interval=0.25
        )
        monitor.start()
        scheduler.run(until=2.0)
        assert monitor.evaluations == 8
        # Evaluation never advances the monitor's clock.
        assert clock.now == 0.0

    def test_stop_parks_the_pending_event_as_noop(self):
        scheduler = Scheduler()
        monitor = SloMonitor(
            scheduler, SimClock(), [make_spec(lambda: 0.0)], interval=0.25
        )
        monitor.start()
        scheduler.run(until=1.0)
        monitor.stop()
        scheduler.run()  # drains without rescheduling forever
        assert monitor.evaluations == 4
        assert scheduler.heap_size == 0

    def test_two_seeded_runs_produce_identical_transition_logs(self):
        def run():
            values = iter([0.1] * 4 + [5.0] * 6 + [0.1] * 20)
            scheduler = Scheduler()
            monitor = SloMonitor(
                scheduler,
                SimClock(),
                [make_spec(lambda: next(values), short_window=0.5)],
                interval=0.25,
            )
            monitor.start()
            scheduler.run(until=7.0)
            return monitor.transition_log()

        log = run()
        assert log == run()
        assert "firing" in log and "resolved" in log


class TestSessionWiring:
    def test_alert_firing_triggers_exactly_one_bundle(self):
        scheduler = Scheduler()
        clock = SimClock()
        value = {"v": 0.1}
        spec = make_spec(lambda: value["v"])
        with MonitoringSession(
            scheduler, clock, specs=[spec], interval=0.25,
            node_clocks=[(clock, "ctl")],
        ) as session:
            scheduler.run(until=2.0)
            assert session.bundles == []
            value["v"] = 9.0
            scheduler.run(until=6.0)
            assert len(session.bundles) == 1
            bundle = session.bundles[0]
            assert bundle.trigger_kind == "alert"
            assert bundle.trigger_name == "test.metric"
            # Re-firing the same alert later must not emit a second
            # bundle for the same trigger key.
            value["v"] = 0.1
            scheduler.run(until=10.0)
            value["v"] = 9.0
            scheduler.run(until=14.0)
            assert len(session.bundles) == 1
            assert session.stats.incidents_suppressed >= 1

    def test_session_counters_reach_collect_metrics(self):
        from repro.core.monitoring import MonitoringMetrics, aggregate_into
        from repro.runtime import stats_registry

        scheduler = Scheduler()
        clock = SimClock()
        with MonitoringSession(
            scheduler, clock, specs=[make_spec(lambda: 5.0)], interval=0.25
        ) as session:
            scheduler.run(until=2.0)
            registered = stats_registry.monitoring_stats_for([clock])
            assert session.stats in registered
            target = MonitoringMetrics()
            aggregate_into(target, session.stats)
            assert target.slo_evaluations == session.stats.slo_evaluations > 0
            assert target.alerts_fired == 1
            assert target.bundles_emitted == 1

    def test_close_restores_probe_slots(self):
        from repro._sim import probe

        before_flight = probe.FLIGHT
        before_incidents = probe.INCIDENTS
        session = MonitoringSession(Scheduler(), SimClock())
        assert probe.FLIGHT is session.recorder
        assert probe.INCIDENTS is session.pipeline
        session.close()
        assert probe.FLIGHT is before_flight
        assert probe.INCIDENTS is before_incidents
