"""Acceptance tests for the telemetry plane (ISSUE 5 bar).

- A traced distributed secure-training run exports a Chrome trace where
  a client RPC span on one node parents the server handler span on a
  *different* node under the same trace ID.
- The per-layer profile sums to each node's elapsed simulated time
  within 1%.
- With tracing disabled, the run is indistinguishable from one that
  never had the subsystem active: identical simulated time, identical
  deterministic counters.
"""

from __future__ import annotations

import pytest

from repro._sim import probe
from repro.core import SecureTFPlatform
from repro.core.monitoring import collect_metrics
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJob, TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode
from repro.observability import validate_chrome_trace

BATCHES = 2
BATCH_SIZE = 32

#: Counters excluded from run-identity comparison: the AEAD cache is
#: process-global (earlier tests warm it) and *_real_crypto_time is
#: wall-clock, not simulated.
_VOLATILE = ("aead_cache", "real_crypto")


def _train(tracing: bool):
    train, _ = synthetic_mnist(n_train=BATCHES * BATCH_SIZE, n_test=4, seed=9)
    batches = list(train.batches(BATCH_SIZE))
    platform = SecureTFPlatform(
        PlatformConfig(n_nodes=3, seed=9, tracing=tracing, metrics_interval=0.5)
    )
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session="acceptance-obs",
            n_workers=2,
            mode=SgxMode.HW,
            network_shield=True,
        ),
    )
    job.start()
    result = job.train(batches)
    job.stop()
    return platform, result


def _scrub(tree):
    """Drop volatile (process-global / wall-clock) leaves recursively."""
    if isinstance(tree, dict):
        return {
            k: _scrub(v)
            for k, v in tree.items()
            if not any(tag in k for tag in _VOLATILE)
        }
    if isinstance(tree, list):
        return [_scrub(item) for item in tree]
    return tree


@pytest.fixture(scope="module")
def traced_run():
    platform, result = _train(tracing=True)
    yield platform, result
    platform.close_telemetry()


def test_cross_node_span_parenting_in_chrome_trace(traced_run):
    platform, _ = traced_run
    doc = platform.telemetry.chrome_trace()
    assert validate_chrome_trace(doc) > 0
    spans = {
        e["args"]["span_id"]: e
        for e in doc["traceEvents"]
        if e["ph"] == "X" and "span_id" in e.get("args", {})
    }
    cross_node = 0
    for event in spans.values():
        if event["name"] != "rpc.server":
            continue
        parent = spans.get(event["args"].get("parent_id"))
        if parent is None:
            continue
        assert parent["name"] == "rpc.call"
        assert parent["args"]["trace_id"] == event["args"]["trace_id"]
        if parent["pid"] != event["pid"]:
            cross_node += 1
    # Workers and the PS live on different nodes: the training RPCs
    # must produce cross-node parent links under one trace ID.
    assert cross_node > 0


def test_profile_layers_sum_to_elapsed_within_one_percent(traced_run):
    platform, _ = traced_run
    profiles = platform.telemetry.profile()
    assert profiles  # every node clock was registered
    for node in profiles.values():
        assert node.elapsed > 0
        assert node.total == pytest.approx(node.elapsed, rel=0.01)


def test_traced_run_records_expected_surfaces(traced_run):
    platform, _ = traced_run
    telemetry = platform.telemetry
    names = {span.name for span in telemetry.tracer.spans}
    assert {"rpc.call", "rpc.server", "train.compute", "train.push"} <= names
    assert "attestation.provision" in names
    assert telemetry.tracer.histograms["rpc.latency"].count > 0
    assert telemetry.sampler.samples_taken > 0
    report = telemetry.profile_report()
    assert "epc_faults" in report and "node-0" in report


def test_disabled_tracing_is_byte_identical():
    # The module-scoped traced platform may still hold the probe slot;
    # clear it so these runs are genuinely uninstrumented (_reset_probe
    # restores it afterwards).
    probe.set_active(None)
    platform_a, result_a = _train(tracing=False)
    platform_b, result_b = _train(tracing=False)
    assert platform_a.telemetry is None
    assert result_a.wall_clock == result_b.wall_clock
    assert platform_a.time == platform_b.time
    assert _scrub(collect_metrics(platform_a).to_json()) == _scrub(
        collect_metrics(platform_b).to_json()
    )


def test_disabled_tracing_matches_traced_simulated_structure(traced_run):
    """The traced run reaches the same converged state: same number of
    training steps, same simulated-step structure (the only wire-level
    delta is the propagated trace context, microseconds overall)."""
    platform, result = traced_run
    probe.set_active(None)
    _, plain = _train(tracing=False)
    assert result.steps == plain.steps
    assert abs(result.wall_clock - plain.wall_clock) < 1e-3
