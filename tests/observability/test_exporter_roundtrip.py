"""Exporter round-trips: bundles validate, Prometheus parses back,
histogram/sampler edge cases."""

from __future__ import annotations

import json
import re

import pytest

from repro._sim import probe
from repro.core import SecureTFPlatform
from repro.core.monitoring import collect_metrics
from repro.core.platform import PlatformConfig
from repro.observability.exporters import (
    to_prometheus,
    validate_chrome_trace,
)
from repro.observability.metrics import (
    Histogram,
    WindowedHistogram,
    flatten_metrics,
)
from repro.observability.monitoring import MonitoringSession

pytestmark = pytest.mark.monitoring


@pytest.fixture()
def traced_platform():
    p = SecureTFPlatform(
        PlatformConfig(n_nodes=2, seed=11, tracing=True, metrics_interval=0.5)
    )
    yield p
    p.close_telemetry()


class TestBundleChromeTrace:
    def test_platform_bundle_trace_validates_and_serializes(
        self, traced_platform
    ):
        platform = traced_platform
        clock = platform.nodes[0].clock
        with MonitoringSession(
            platform.scheduler,
            clock,
            node_clocks=[(n.clock, n.node_id) for n in platform.nodes],
        ) as session:
            for i in range(4):
                with probe.span(clock, "rpc.call", attrs={"i": i}):
                    clock.advance(0.25)
            bundle = session.pipeline.trigger(
                "fence", "router", clock=clock, detail="stale epoch"
            )
        assert bundle is not None
        doc = bundle.chrome_trace
        assert doc is not None
        assert validate_chrome_trace(doc) > 0
        # The whole bundle must survive canonical JSON encoding.
        payload = json.loads(bundle.dump())
        assert validate_chrome_trace(payload["chrome_trace"]) > 0

    def test_windowed_trace_never_dangles_parents(self, traced_platform):
        platform = traced_platform
        clock = platform.nodes[0].clock
        with MonitoringSession(
            platform.scheduler,
            clock,
            incident_window=0.5,
            node_clocks=[(n.clock, n.node_id) for n in platform.nodes],
        ) as session:
            # Nested spans far in the past, then a lone recent span: the
            # window cuts the old parent away from nothing — the recent
            # span has no exported parent and must not reference one.
            with probe.span(clock, "outer"):
                with probe.span(clock, "inner"):
                    clock.advance(2.0)
            clock.advance(2.0)
            with probe.span(clock, "recent"):
                clock.advance(0.1)
            bundle = session.pipeline.trigger("crash", "r0", clock=clock)
        events = validate_chrome_trace(bundle.chrome_trace)
        names = [
            e["name"]
            for e in bundle.chrome_trace["traceEvents"]
            if e["ph"] == "X"
        ]
        assert names == ["recent"]
        assert events == 1


_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)


def parse_prometheus(text):
    """Parse the exposition text back into {(name, labels): float}."""
    parsed = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _PROM_LINE.match(line)
        assert match is not None, f"unparseable exposition line: {line!r}"
        parsed[(match.group("name"), match.group("labels") or "")] = float(
            match.group("value")
        )
    return parsed


class TestPrometheusRoundTrip:
    def test_every_flat_leaf_survives_the_round_trip(self, traced_platform):
        platform = traced_platform
        platform.network.stats.messages += 7
        platform.nodes[0].clock.advance(1.25)
        metrics = collect_metrics(platform)
        parsed = parse_prometheus(to_prometheus(metrics))
        flat = flatten_metrics(metrics.to_json())
        for path, value in flat.items():
            if path.startswith("nodes."):
                _, node_id, field = path.split(".", 2)
                name = "securetf_node_" + re.sub(r"[^a-zA-Z0-9_]", "_", field)
                key = (name, f'node="{node_id}"')
            else:
                name = "securetf_" + re.sub(r"[^a-zA-Z0-9_]", "_", path)
                key = (name, "")
            assert key in parsed, f"{path} missing from exposition"
            assert parsed[key] == pytest.approx(value, rel=1e-5)

    def test_histogram_summary_quantiles_parse_back(self):
        hist = Histogram("rpc.latency")
        for value in (0.01, 0.02, 0.03, 0.5):
            hist.observe(value)
        metrics = collect_metrics(
            SecureTFPlatform(PlatformConfig(n_nodes=1, seed=1))
        )
        parsed = parse_prometheus(
            to_prometheus(metrics, histograms={"rpc.latency": hist})
        )
        base = "securetf_rpc_latency"
        for q in ("0.5", "0.95", "0.99"):
            assert (base, f'quantile="{q}"') in parsed
        assert parsed[(base + "_sum", "")] == pytest.approx(hist.sum)
        assert parsed[(base + "_count", "")] == hist.count
        assert parsed[(base, 'quantile="0.99"')] == pytest.approx(
            hist.percentile(99)
        )

    def test_exposition_text_is_deterministic(self, traced_platform):
        metrics = collect_metrics(traced_platform)
        assert to_prometheus(metrics) == to_prometheus(metrics)


class TestWindowedHistogramEdges:
    def test_empty_window_reports_zero(self):
        hist = WindowedHistogram("h", window=4)
        assert hist.percentile(99) == 0.0
        assert hist.mean == 0.0

    def test_single_sample_is_every_percentile(self):
        hist = WindowedHistogram("h", window=4)
        hist.observe(0.25)
        for q in (0, 50, 99, 100):
            assert hist.percentile(q) == 0.25

    def test_window_forgets_old_spike(self):
        hist = WindowedHistogram("h", window=4)
        hist.observe(100.0)  # cold-start spike
        for _ in range(4):
            hist.observe(0.1)
        # The spike fell out of the window: current p99 reflects steady
        # state, while the lifetime counters still remember it.
        assert hist.percentile(99) == 0.1
        assert hist.count == 5
        assert hist.sum == pytest.approx(100.4)

    def test_percentile_bounds_are_validated(self):
        hist = WindowedHistogram("h")
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)


class TestSamplerRealignment:
    def test_realigns_past_a_clock_jump_then_resumes(self, traced_platform):
        sampler = traced_platform.telemetry.sampler
        clock = traced_platform.nodes[0].clock
        clock.advance(7.3)  # jumps 14 interval boundaries at once
        assert sampler.samples_taken == 1
        # The next boundary is strictly after the jump landing point.
        clock.advance(0.1)
        assert sampler.samples_taken == 1
        clock.advance(0.5)
        assert sampler.samples_taken == 2

    def test_jump_sample_is_stamped_at_the_missed_boundary(
        self, traced_platform
    ):
        sampler = traced_platform.telemetry.sampler
        first_boundary = sampler._next_sample
        traced_platform.network.stats.messages += 5
        traced_platform.nodes[0].clock.advance(3.1)
        series = sampler.series["network_messages"]
        assert series.values() == [5.0]
        # Stamped at the first missed boundary, not the landing time.
        assert series.latest()[0] == pytest.approx(first_boundary)
        assert series.latest()[0] < traced_platform.nodes[0].clock.now
