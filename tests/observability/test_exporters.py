"""Exporter tests: Chrome trace_event, Prometheus text, JSON bundles."""

from __future__ import annotations

import json

import pytest

from repro._sim import SimClock
from repro.observability import (
    Histogram,
    Tracer,
    dump_json,
    flatten_metrics,
    to_chrome_trace,
    to_json,
    to_prometheus,
    validate_chrome_trace,
)


def _traced_pair() -> Tracer:
    """Two clocks, one cross-node call: rpc.call on client parents
    rpc.server on server via the propagated context."""
    tracer = Tracer()
    client, server = SimClock(), SimClock()
    tracer.register_clock(client, "client")
    tracer.register_clock(server, "server")
    call = tracer.start_span(client, "rpc.call", category="rpc", attrs={"dst": "server"})
    handler = tracer.start_span(
        server, "rpc.server", category="rpc", parent_context=call.context()
    )
    server.advance(0.25)
    tracer.end_span(handler)
    client.advance(0.4)
    tracer.end_span(call)
    return tracer


def test_chrome_trace_is_valid_and_json_serializable():
    tracer = _traced_pair()
    doc = to_chrome_trace(tracer)
    assert validate_chrome_trace(doc) == 2
    json.dumps(doc)  # must be pure JSON types
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta} == {"client", "server"}


def test_chrome_trace_cross_node_parenting():
    doc = to_chrome_trace(_traced_pair())
    spans = {e["args"]["span_id"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    server = next(e for e in spans.values() if e["name"] == "rpc.server")
    client = spans[server["args"]["parent_id"]]
    assert client["name"] == "rpc.call"
    assert client["pid"] != server["pid"]
    assert client["args"]["trace_id"] == server["args"]["trace_id"]


def test_chrome_trace_timestamps_are_microseconds():
    doc = to_chrome_trace(_traced_pair())
    call = next(
        e for e in doc["traceEvents"] if e.get("name") == "rpc.call"
    )
    assert call["ts"] == pytest.approx(0.0)
    assert call["dur"] == pytest.approx(0.4e6)


@pytest.mark.parametrize(
    "doc, message",
    [
        ({}, "traceEvents"),
        ({"traceEvents": 3}, "must be a list"),
        ({"traceEvents": [{"ph": "X", "pid": 1}]}, "missing required key"),
        (
            {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1}]},
            "unknown event phase",
        ),
        (
            {
                "traceEvents": [
                    {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -1}
                ]
            },
            "negative duration",
        ),
        (
            {
                "traceEvents": [
                    {
                        "name": "x",
                        "ph": "X",
                        "pid": 1,
                        "tid": 1,
                        "ts": 0,
                        "dur": 1,
                        "args": {"span_id": "S1", "parent_id": "S99"},
                    }
                ]
            },
            "dangling parent_id",
        ),
    ],
)
def test_validate_chrome_trace_rejects(doc, message):
    with pytest.raises(ValueError, match=message):
        validate_chrome_trace(doc)


class _Snapshot:
    """Minimal stand-in for PlatformMetrics: just the to_json surface."""

    def __init__(self, tree):
        self._tree = tree

    def to_json(self):
        return self._tree


def test_flatten_metrics_handles_bools_nesting_and_node_lists():
    flat = flatten_metrics(
        {
            "audit_chain_ok": True,
            "network_messages": 7,
            "shields": {"fs_reads": 3},
            "nodes": [
                {"node_id": "node-0", "enclave_calls": 5},
                {"node_id": "node-1", "enclave_calls": 9},
            ],
        }
    )
    assert flat == {
        "audit_chain_ok": 1.0,
        "network_messages": 7.0,
        "shields.fs_reads": 3.0,
        "nodes.node-0.enclave_calls": 5.0,
        "nodes.node-1.enclave_calls": 9.0,
    }


def test_prometheus_text_format():
    metrics = _Snapshot(
        {
            "network_messages": 12,
            "nodes": [
                {"node_id": "node-0", "enclave_calls": 5},
                {"node_id": "node-1", "enclave_calls": 9},
            ],
        }
    )
    hist = Histogram("rpc.latency")
    hist.observe(0.002, count=10)
    text = to_prometheus(metrics, histograms={"rpc.latency": hist})
    assert "# TYPE securetf_network_messages gauge" in text
    assert "securetf_network_messages 12" in text
    assert 'securetf_node_enclave_calls{node="node-0"} 5' in text
    assert 'securetf_rpc_latency{quantile="0.5"} 0.002' in text
    assert "securetf_rpc_latency_count 10" in text
    assert text.endswith("\n")


def test_to_json_bundle_and_dump():
    tracer = _traced_pair()
    payload = to_json(tracer)
    assert {s["name"] for s in payload["spans"]} == {"rpc.call", "rpc.server"}
    assert payload["profile"]["client"]["elapsed"] == pytest.approx(0.4)
    assert "rpc.latency" in payload["histograms"]
    assert payload["metrics"] is None
    text = dump_json(payload)
    assert json.loads(text)["dropped_spans"] == 0
