"""Canonical encoding: determinism, roundtrips, adversarial inputs."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import encoding
from repro.errors import IntegrityError

values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=False)
    | st.binary(max_size=50)
    | st.text(max_size=30),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


@given(values)
def test_roundtrip_property(value):
    decoded = encoding.decode(encoding.encode(value))
    if isinstance(value, tuple):
        value = list(value)
    assert decoded == value


def test_dict_key_order_is_canonical():
    a = encoding.encode({"b": 1, "a": 2})
    b = encoding.encode({"a": 2, "b": 1})
    assert a == b


def test_tuple_encodes_as_list():
    assert encoding.decode(encoding.encode((1, 2))) == [1, 2]


def test_large_integers():
    n = 2**200 + 12345
    assert encoding.decode(encoding.encode(n)) == n
    assert encoding.decode(encoding.encode(-n)) == -n


def test_rejects_non_string_dict_keys():
    with pytest.raises(TypeError):
        encoding.encode({1: "x"})


def test_rejects_unencodable_type():
    with pytest.raises(TypeError):
        encoding.encode(object())


def test_rejects_trailing_garbage():
    data = encoding.encode(42) + b"\x00"
    with pytest.raises(IntegrityError):
        encoding.decode(data)


def test_rejects_truncation():
    data = encoding.encode({"key": b"value" * 10})
    for cut in (1, len(data) // 2, len(data) - 1):
        with pytest.raises(IntegrityError):
            encoding.decode(data[:cut])


def test_rejects_unknown_tag():
    with pytest.raises(IntegrityError):
        encoding.decode(b"\xfe")


def test_rejects_unsorted_dict_keys():
    # Hand-craft a dict with keys out of canonical order.
    good = encoding.encode({"a": 1, "b": 2})
    ka = encoding.encode("a")
    kb = encoding.encode("b")
    swapped = good.replace(ka, b"\x99", 1).replace(kb, ka, 1).replace(b"\x99", kb, 1)
    with pytest.raises(IntegrityError):
        encoding.decode(swapped)


def test_rejects_invalid_utf8_string():
    raw = encoding.encode("hello")
    corrupted = raw.replace(b"hello", b"he\xfflo")
    with pytest.raises(IntegrityError):
        encoding.decode(corrupted)


def test_bytes_and_str_are_distinct():
    assert encoding.encode(b"x") != encoding.encode("x")
