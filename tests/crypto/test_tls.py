"""The TLS-1.3-shaped channel: handshakes, auth, record protection."""

import pytest

from repro._sim import DeterministicRng
from repro.crypto.certs import CertificateAuthority
from repro.crypto.ed25519 import Ed25519PrivateKey
from repro.crypto.tls import (
    TlsClient,
    TlsIdentity,
    TlsServer,
    handshake_in_memory,
)
from repro.errors import HandshakeError, IntegrityError, SecurityError


@pytest.fixture
def ca(rng):
    return CertificateAuthority("root", Ed25519PrivateKey(rng.random_bytes(32)))


def make_identity(ca, rng, subject):
    key = Ed25519PrivateKey(rng.random_bytes(32))
    cert = ca.issue(subject, key.public_key().public_bytes(), rng.random_bytes(32), now=0.0)
    return TlsIdentity(key, cert)


def make_pair(ca, rng, mutual=True, expected_server=None):
    server_identity = make_identity(ca, rng, "server")
    client_identity = make_identity(ca, rng, "client") if mutual else None
    client = TlsClient(
        [ca.public_key()],
        identity=client_identity,
        random_bytes=rng.random_bytes(64),
        expected_server=expected_server,
    )
    server = TlsServer(
        server_identity,
        random_bytes=rng.random_bytes(32),
        require_client_cert=mutual,
        trusted_roots=[ca.public_key()] if mutual else None,
    )
    return client, server


def test_handshake_and_duplex_records(ca, rng):
    client, server = make_pair(ca, rng)
    crl, srl = handshake_in_memory(client, server)
    assert srl.unprotect(crl.protect(b"c->s")) == b"c->s"
    assert crl.unprotect(srl.protect(b"s->c")) == b"s->c"
    assert client.server_certificate.subject == "server"
    assert server.client_certificate.subject == "client"


def test_server_only_auth(ca, rng):
    client, server = make_pair(ca, rng, mutual=False)
    crl, srl = handshake_in_memory(client, server)
    assert srl.unprotect(crl.protect(b"hello")) == b"hello"
    assert server.client_certificate is None


def test_expected_server_name_pinning(ca, rng):
    client, server = make_pair(ca, rng, expected_server="other-service")
    with pytest.raises(HandshakeError):
        handshake_in_memory(client, server)


def test_untrusted_server_cert_rejected(ca, rng):
    rogue_ca = CertificateAuthority("rogue", Ed25519PrivateKey(rng.random_bytes(32)))
    server_identity = make_identity(rogue_ca, rng, "server")
    client = TlsClient([ca.public_key()], random_bytes=rng.random_bytes(64))
    server = TlsServer(server_identity, random_bytes=rng.random_bytes(32))
    with pytest.raises(Exception):
        handshake_in_memory(client, server)


def test_client_without_cert_rejected_when_required(ca, rng):
    server_identity = make_identity(ca, rng, "server")
    client = TlsClient(
        [ca.public_key()], identity=None, random_bytes=rng.random_bytes(64)
    )
    server = TlsServer(
        server_identity,
        random_bytes=rng.random_bytes(32),
        require_client_cert=True,
        trusted_roots=[ca.public_key()],
    )
    with pytest.raises(HandshakeError):
        handshake_in_memory(client, server)


def test_tampered_server_flight_detected(ca, rng):
    client, server = make_pair(ca, rng)
    hello = client.client_hello()
    flight = bytearray(server.process_client_hello(hello))
    flight[len(flight) // 2] ^= 1
    # Depending on which byte the flip hits, the failure surfaces as a
    # handshake, certificate, or record-integrity error — all SecurityError.
    with pytest.raises((SecurityError, IntegrityError)):
        client.process_server_flight(bytes(flight))


def test_record_replay_detected(ca, rng):
    client, server = make_pair(ca, rng)
    crl, srl = handshake_in_memory(client, server)
    record = crl.protect(b"one-time message")
    assert srl.unprotect(record) == b"one-time message"
    with pytest.raises(IntegrityError):
        srl.unprotect(record)  # replay: receiver sequence advanced


def test_record_reorder_detected(ca, rng):
    client, server = make_pair(ca, rng)
    crl, srl = handshake_in_memory(client, server)
    first = crl.protect(b"first")
    second = crl.protect(b"second")
    with pytest.raises(IntegrityError):
        srl.unprotect(second)
    # After the failure the sequence stays consistent for the real first.
    assert srl.unprotect(first) == b"first"


def test_record_tamper_detected(ca, rng):
    client, server = make_pair(ca, rng)
    crl, srl = handshake_in_memory(client, server)
    record = bytearray(crl.protect(b"payload"))
    record[-1] ^= 1
    with pytest.raises(IntegrityError):
        srl.unprotect(bytes(record))


def test_record_header_tamper_detected(ca, rng):
    client, server = make_pair(ca, rng)
    crl, srl = handshake_in_memory(client, server)
    record = bytearray(crl.protect(b"payload"))
    record[2] ^= 1  # length field, covered by AAD
    with pytest.raises(IntegrityError):
        srl.unprotect(bytes(record))


def test_large_payload(ca, rng):
    client, server = make_pair(ca, rng)
    crl, srl = handshake_in_memory(client, server)
    blob = bytes(200_000)
    assert srl.unprotect(crl.protect(blob)) == blob


def test_sessions_have_independent_keys(ca, rng):
    client_a, server_a = make_pair(ca, rng)
    crl_a, _ = handshake_in_memory(client_a, server_a)
    client_b, server_b = make_pair(ca, rng)
    _, srl_b = handshake_in_memory(client_b, server_b)
    with pytest.raises(IntegrityError):
        srl_b.unprotect(crl_a.protect(b"cross-session"))


def test_insufficient_randomness_rejected(ca, rng):
    with pytest.raises(HandshakeError):
        TlsClient([ca.public_key()], random_bytes=b"short")
    identity = make_identity(ca, rng, "s")
    with pytest.raises(HandshakeError):
        TlsServer(identity, random_bytes=b"short")
