"""AEAD registry and the nonce-sequencing key wrapper."""

import pytest

from repro.crypto.aead import (
    AeadKey,
    aead_cache_stats,
    get_aead,
    key_size,
    reset_aead_cache,
)
from repro.errors import ConfigurationError, IntegrityError


@pytest.mark.parametrize(
    "cipher,size",
    [("chacha20-poly1305", 32), ("aes-256-gcm", 32), ("aes-128-gcm", 16)],
)
def test_registry_roundtrip(cipher, size):
    assert key_size(cipher) == size
    aead = get_aead(cipher, bytes(size))
    sealed = aead.encrypt(b"\x01" * 12, b"payload", b"aad")
    assert aead.decrypt(b"\x01" * 12, sealed, b"aad") == b"payload"


def test_unknown_cipher_rejected():
    with pytest.raises(ConfigurationError):
        get_aead("rot13", bytes(32))
    with pytest.raises(ConfigurationError):
        key_size("rot13")


def test_wrong_key_size_rejected():
    with pytest.raises(ConfigurationError):
        get_aead("aes-128-gcm", bytes(32))


def test_aeadkey_sequencing_produces_distinct_nonces():
    key = AeadKey("chacha20-poly1305", bytes(32))
    sealed_1 = key.seal(b"same plaintext")
    sealed_2 = key.seal(b"same plaintext")
    assert sealed_1 != sealed_2
    assert key.messages_sealed == 2
    assert key.open(sealed_1) == b"same plaintext"
    assert key.open(sealed_2) == b"same plaintext"


def test_aeadkey_aad_binding():
    key = AeadKey("chacha20-poly1305", bytes(32))
    sealed = key.seal(b"x", aad=b"ctx")
    with pytest.raises(IntegrityError):
        key.open(sealed, aad=b"other")


def test_aeadkey_explicit_sequence():
    key = AeadKey("aes-256-gcm", bytes(32))
    sealed = key.seal_at(7, b"chunk", aad=b"file")
    assert key.open_at(7, sealed, aad=b"file") == b"chunk"
    with pytest.raises(IntegrityError):
        key.open_at(8, sealed, aad=b"file")


def test_aeadkey_short_message_rejected():
    key = AeadKey("chacha20-poly1305", bytes(32))
    with pytest.raises(ConfigurationError):
        key.open(b"short")


def test_nonce_prefix_must_be_4_bytes():
    with pytest.raises(ConfigurationError):
        AeadKey("chacha20-poly1305", bytes(32), nonce_prefix=b"abc")


# ---------------------------------------------------------------------------
# Cipher-object cache
# ---------------------------------------------------------------------------


def test_aead_cache_returns_same_object_for_same_key():
    reset_aead_cache()
    key = bytes(range(32))
    first = get_aead("chacha20-poly1305", key)
    second = get_aead("chacha20-poly1305", key)
    assert first is second
    stats = aead_cache_stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1


def test_aead_cache_distinguishes_cipher_and_key():
    reset_aead_cache()
    a = get_aead("aes-256-gcm", bytes(32))
    b = get_aead("chacha20-poly1305", bytes(32))
    c = get_aead("aes-256-gcm", bytes([1]) + bytes(31))
    assert a is not b
    assert a is not c
    assert aead_cache_stats()["misses"] == 3


def test_aead_cache_evicts_least_recently_used():
    from repro.crypto import aead as aead_mod

    reset_aead_cache()
    capacity = aead_mod._AEAD_CACHE_CAPACITY
    keys = [i.to_bytes(1, "big") + bytes(31) for i in range(capacity + 1)]
    first = get_aead("chacha20-poly1305", keys[0])
    for key in keys[1:]:
        get_aead("chacha20-poly1305", key)
    # keys[0] was the oldest entry; it must have been evicted.
    assert get_aead("chacha20-poly1305", keys[0]) is not first
    assert aead_cache_stats()["size"] <= capacity


def test_cached_ciphers_are_nonce_stateless():
    # Two AeadKeys sharing one cached cipher must not interfere: nonce
    # counters live in the wrapper, not the cipher object.
    reset_aead_cache()
    k1 = AeadKey("chacha20-poly1305", bytes(32))
    k2 = AeadKey("chacha20-poly1305", bytes(32))
    assert k1._aead is k2._aead
    sealed = k1.seal(b"one")
    assert k2.open(sealed) == b"one"
    assert k2.messages_sealed == 0
