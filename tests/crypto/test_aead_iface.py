"""AEAD registry and the nonce-sequencing key wrapper."""

import pytest

from repro.crypto.aead import AeadKey, get_aead, key_size
from repro.errors import ConfigurationError, IntegrityError


@pytest.mark.parametrize(
    "cipher,size",
    [("chacha20-poly1305", 32), ("aes-256-gcm", 32), ("aes-128-gcm", 16)],
)
def test_registry_roundtrip(cipher, size):
    assert key_size(cipher) == size
    aead = get_aead(cipher, bytes(size))
    sealed = aead.encrypt(b"\x01" * 12, b"payload", b"aad")
    assert aead.decrypt(b"\x01" * 12, sealed, b"aad") == b"payload"


def test_unknown_cipher_rejected():
    with pytest.raises(ConfigurationError):
        get_aead("rot13", bytes(32))
    with pytest.raises(ConfigurationError):
        key_size("rot13")


def test_wrong_key_size_rejected():
    with pytest.raises(ConfigurationError):
        get_aead("aes-128-gcm", bytes(32))


def test_aeadkey_sequencing_produces_distinct_nonces():
    key = AeadKey("chacha20-poly1305", bytes(32))
    sealed_1 = key.seal(b"same plaintext")
    sealed_2 = key.seal(b"same plaintext")
    assert sealed_1 != sealed_2
    assert key.messages_sealed == 2
    assert key.open(sealed_1) == b"same plaintext"
    assert key.open(sealed_2) == b"same plaintext"


def test_aeadkey_aad_binding():
    key = AeadKey("chacha20-poly1305", bytes(32))
    sealed = key.seal(b"x", aad=b"ctx")
    with pytest.raises(IntegrityError):
        key.open(sealed, aad=b"other")


def test_aeadkey_explicit_sequence():
    key = AeadKey("aes-256-gcm", bytes(32))
    sealed = key.seal_at(7, b"chunk", aad=b"file")
    assert key.open_at(7, sealed, aad=b"file") == b"chunk"
    with pytest.raises(IntegrityError):
        key.open_at(8, sealed, aad=b"file")


def test_aeadkey_short_message_rejected():
    key = AeadKey("chacha20-poly1305", bytes(32))
    with pytest.raises(ConfigurationError):
        key.open(b"short")


def test_nonce_prefix_must_be_4_bytes():
    with pytest.raises(ConfigurationError):
        AeadKey("chacha20-poly1305", bytes(32), nonce_prefix=b"abc")
