"""AES block cipher against FIPS 197 / SP 800-38A vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AES

PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")


def test_fips197_aes128():
    aes = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
    assert aes.encrypt_block(PLAIN).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_fips197_aes192():
    aes = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617"))
    assert aes.encrypt_block(PLAIN).hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"


def test_fips197_aes256():
    aes = AES(
        bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
    )
    assert aes.encrypt_block(PLAIN).hex() == "8ea2b7ca516745bfeafc49904b496089"


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_decrypt_inverts_encrypt(key_len):
    aes = AES(bytes(range(key_len)))
    block = bytes(range(100, 116))
    assert aes.decrypt_block(aes.encrypt_block(block)) == block


def test_sp800_38a_ctr_mode():
    # SP 800-38A F.5.1 CTR-AES128, adapted to our 12-byte-nonce layout is
    # not byte-identical to the NIST full-16-byte-counter vector, so we
    # verify CTR structurally: keystream xor is an involution and blocks
    # differ under different counters.
    aes = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
    nonce = bytes(12)
    data = bytes(64)
    stream = aes.encrypt_ctr(nonce, data)
    assert len(set(stream[i : i + 16] for i in range(0, 64, 16))) == 4
    assert aes.encrypt_ctr(nonce, stream) == data


def test_ctr_counter_continuity():
    aes = AES(bytes(16))
    nonce = b"\x01" * 12
    whole = aes.encrypt_ctr(nonce, bytes(48), initial_counter=1)
    first = aes.encrypt_ctr(nonce, bytes(16), initial_counter=1)
    rest = aes.encrypt_ctr(nonce, bytes(32), initial_counter=2)
    assert whole == first + rest


def test_rejects_bad_key_length():
    with pytest.raises(ValueError):
        AES(bytes(15))


def test_rejects_bad_block_length():
    aes = AES(bytes(16))
    with pytest.raises(ValueError):
        aes.encrypt_block(bytes(15))
    with pytest.raises(ValueError):
        aes.decrypt_block(bytes(17))


def test_rejects_bad_ctr_nonce():
    aes = AES(bytes(16))
    with pytest.raises(ValueError):
        aes.encrypt_ctr(bytes(11), b"data")


@given(st.binary(min_size=0, max_size=200), st.binary(min_size=32, max_size=32))
def test_ctr_roundtrip_property(data, key):
    aes = AES(key)
    assert aes.encrypt_ctr(b"n" * 12, aes.encrypt_ctr(b"n" * 12, data)) == data


# ---------------------------------------------------------------------------
# Vectorized CTR vs the scalar reference
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("key_len", [16, 24, 32])
@pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 100, 1000, 1024])
def test_vectorized_ctr_matches_reference(key_len, length):
    aes = AES(bytes(range(key_len)))
    data = bytes((i * 7 + 3) % 256 for i in range(length))
    nonce = b"\x5a" * 12
    assert aes.encrypt_ctr(nonce, data, initial_counter=2) == (
        aes.encrypt_ctr_reference(nonce, data, initial_counter=2)
    )


def test_vectorized_ctr_counter_wraps_like_reference():
    aes = AES(bytes(range(16)))
    nonce = b"\x00" * 12
    data = bytes(64)
    start = 0xFFFFFFFE  # crosses the 32-bit counter wrap mid-message
    assert aes.encrypt_ctr(nonce, data, initial_counter=start) == (
        aes.encrypt_ctr_reference(nonce, data, initial_counter=start)
    )


@given(
    st.binary(min_size=0, max_size=300),
    st.binary(min_size=16, max_size=16),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_vectorized_ctr_equivalence_property(data, key, counter):
    aes = AES(key)
    nonce = b"\x11" * 12
    assert aes.encrypt_ctr(nonce, data, initial_counter=counter) == (
        aes.encrypt_ctr_reference(nonce, data, initial_counter=counter)
    )
