"""Certificates and chain validation."""

import pytest

from repro._sim import DeterministicRng
from repro.crypto.certs import Certificate, CertificateAuthority, verify_chain
from repro.crypto.ed25519 import Ed25519PrivateKey
from repro.errors import IntegrityError, SecurityError


@pytest.fixture
def ca(rng: DeterministicRng) -> CertificateAuthority:
    return CertificateAuthority(
        "test-root", Ed25519PrivateKey(rng.random_bytes(32))
    )


def _leaf(ca, rng, subject="service", now=0.0):
    key = Ed25519PrivateKey(rng.random_bytes(32))
    return key, ca.issue(
        subject, key.public_key().public_bytes(), rng.random_bytes(32), now=now
    )


def test_issue_and_verify(ca, rng):
    _, cert = _leaf(ca, rng)
    cert.verify_signature(ca.public_key())
    verify_chain(cert, [ca.public_key()], now=10.0)


def test_serialization_roundtrip(ca, rng):
    _, cert = _leaf(ca, rng)
    restored = Certificate.from_bytes(cert.to_bytes())
    assert restored == cert
    restored.verify_signature(ca.public_key())


def test_wrong_root_rejected(ca, rng):
    other = CertificateAuthority(
        "other-root", Ed25519PrivateKey(rng.random_bytes(32))
    )
    _, cert = _leaf(ca, rng)
    with pytest.raises(SecurityError):
        verify_chain(cert, [other.public_key()], now=0.0)


def test_multiple_roots_any_match(ca, rng):
    other = CertificateAuthority(
        "other-root", Ed25519PrivateKey(rng.random_bytes(32))
    )
    _, cert = _leaf(ca, rng)
    verify_chain(cert, [other.public_key(), ca.public_key()], now=0.0)


def test_expiry_enforced(ca, rng):
    _, cert = _leaf(ca, rng, now=1000.0)
    # notBefore is backdated by the CA's slack (clock-skew tolerance).
    with pytest.raises(SecurityError):
        cert.check_validity(1000.0 - ca.backdate_seconds - 1)
    with pytest.raises(SecurityError):
        cert.check_validity(1000.0 + ca.validity_seconds + 1)
    cert.check_validity(1000.0 - ca.backdate_seconds + 1)
    cert.check_validity(1000.0 + 10)


def test_tampered_subject_rejected(ca, rng):
    _, cert = _leaf(ca, rng, subject="honest")
    forged = Certificate(**{**cert.__dict__, "subject": "attacker"})
    with pytest.raises(IntegrityError):
        forged.verify_signature(ca.public_key())


def test_serial_numbers_increment(ca, rng):
    _, a = _leaf(ca, rng, subject="a")
    _, b = _leaf(ca, rng, subject="b")
    assert b.serial == a.serial + 1


def test_malformed_bytes_rejected():
    with pytest.raises(IntegrityError):
        Certificate.from_bytes(b"garbage")


def test_root_certificate_is_self_signed(ca):
    root = ca.root_certificate()
    root.verify_signature(ca.public_key())
    assert root.extensions["ca"] == "true"
