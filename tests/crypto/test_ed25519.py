"""Ed25519 against RFC 8032 vectors and signature properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ed25519 import Ed25519PrivateKey, Ed25519PublicKey
from repro.errors import IntegrityError


def test_rfc8032_test_1_empty_message():
    sk = Ed25519PrivateKey(
        bytes.fromhex(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"
        )
    )
    assert sk.public_key().public_bytes().hex() == (
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
    )
    signature = sk.sign(b"")
    assert signature.hex() == (
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
    )
    sk.public_key().verify(signature, b"")


def test_rfc8032_test_2_one_byte():
    sk = Ed25519PrivateKey(
        bytes.fromhex(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"
        )
    )
    signature = sk.sign(b"\x72")
    assert signature.hex() == (
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
    )


def test_tampered_message_rejected():
    sk = Ed25519PrivateKey(bytes(range(32)))
    signature = sk.sign(b"authentic")
    with pytest.raises(IntegrityError):
        sk.public_key().verify(signature, b"forged")


def test_tampered_signature_rejected():
    sk = Ed25519PrivateKey(bytes(range(32)))
    signature = bytearray(sk.sign(b"message"))
    signature[10] ^= 1
    with pytest.raises(IntegrityError):
        sk.public_key().verify(bytes(signature), b"message")


def test_wrong_key_rejected():
    sk1 = Ed25519PrivateKey(bytes(range(32)))
    sk2 = Ed25519PrivateKey(bytes(range(1, 33)))
    signature = sk1.sign(b"message")
    with pytest.raises(IntegrityError):
        sk2.public_key().verify(signature, b"message")


def test_signature_length_enforced():
    sk = Ed25519PrivateKey(bytes(range(32)))
    with pytest.raises(IntegrityError):
        sk.public_key().verify(b"short", b"message")


def test_scalar_out_of_range_rejected():
    sk = Ed25519PrivateKey(bytes(range(32)))
    signature = bytearray(sk.sign(b"m"))
    signature[32:] = b"\xff" * 32  # s >= L
    with pytest.raises(IntegrityError):
        sk.public_key().verify(bytes(signature), b"m")


def test_public_key_validation():
    with pytest.raises(ValueError):
        Ed25519PublicKey(bytes(31))


@settings(max_examples=10)
@given(st.binary(min_size=32, max_size=32), st.binary(min_size=0, max_size=100))
def test_sign_verify_property(key_bytes, message):
    sk = Ed25519PrivateKey(key_bytes)
    sk.public_key().verify(sk.sign(message), message)
