"""ChaCha20-Poly1305 against RFC 8439 vectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.chacha import (
    ChaCha20Poly1305,
    chacha20_keystream,
    chacha20_xor,
    poly1305_mac,
    poly1305_mac_reference,
)
from repro.errors import IntegrityError

RFC_KEY = bytes(range(32))


def test_rfc8439_block_function():
    nonce = bytes.fromhex("000000090000004a00000000")
    stream = chacha20_keystream(RFC_KEY, nonce, 1, 64)
    assert stream.hex() == (
        "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    )


def test_rfc8439_encryption():
    key = RFC_KEY
    nonce = bytes.fromhex("000000000000004a00000000")
    plaintext = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    ct = chacha20_xor(key, nonce, 1, plaintext)
    assert ct.hex().startswith("6e2e359a2568f98041ba0728dd0d6981")
    assert chacha20_xor(key, nonce, 1, ct) == plaintext


def test_rfc8439_poly1305():
    key = bytes.fromhex(
        "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
    )
    tag = poly1305_mac(key, b"Cryptographic Forum Research Group")
    assert tag.hex() == "a8061dc1305136c6c22b8baf0c0127a9"


def test_rfc8439_aead_vector():
    key = bytes.fromhex(
        "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
    )
    nonce = bytes.fromhex("070000004041424344454647")
    aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
    plaintext = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    aead = ChaCha20Poly1305(key)
    sealed = aead.encrypt(nonce, plaintext, aad)
    assert sealed[-16:].hex() == "1ae10b594f09e26a7e902ecbd0600691"
    assert aead.decrypt(nonce, sealed, aad) == plaintext


def test_tamper_detection_everywhere():
    aead = ChaCha20Poly1305(bytes(32))
    nonce = b"\x05" * 12
    sealed = aead.encrypt(nonce, b"data" * 100, aad=b"meta")
    for position in (0, len(sealed) // 2, len(sealed) - 1):
        corrupted = bytearray(sealed)
        corrupted[position] ^= 0x80
        with pytest.raises(IntegrityError):
            aead.decrypt(nonce, bytes(corrupted), aad=b"meta")


def test_aad_binding():
    aead = ChaCha20Poly1305(bytes(32))
    sealed = aead.encrypt(b"\x00" * 12, b"x", aad=b"context-a")
    with pytest.raises(IntegrityError):
        aead.decrypt(b"\x00" * 12, sealed, aad=b"context-b")


def test_keystream_counter_continuity():
    a = chacha20_keystream(RFC_KEY, bytes(12), 0, 128)
    b = chacha20_keystream(RFC_KEY, bytes(12), 0, 64) + chacha20_keystream(
        RFC_KEY, bytes(12), 1, 64
    )
    assert a == b


def test_empty_keystream():
    assert chacha20_keystream(RFC_KEY, bytes(12), 0, 0) == b""


def test_key_and_nonce_validation():
    with pytest.raises(ValueError):
        ChaCha20Poly1305(bytes(31))
    aead = ChaCha20Poly1305(bytes(32))
    with pytest.raises(ValueError):
        aead.encrypt(bytes(11), b"x")
    with pytest.raises(ValueError):
        poly1305_mac(bytes(31), b"x")


@settings(max_examples=25)
@given(st.binary(min_size=0, max_size=5000), st.binary(min_size=32, max_size=32))
def test_roundtrip_property(plaintext, key):
    aead = ChaCha20Poly1305(key)
    sealed = aead.encrypt(b"\x01" * 12, plaintext)
    assert aead.decrypt(b"\x01" * 12, sealed) == plaintext


# ---------------------------------------------------------------------------
# Vectorized Poly1305 vs the serial reference
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "length", [0, 1, 15, 16, 17, 63, 64, 65, 8191, 8192, 8193, 70000]
)
def test_poly1305_fast_matches_reference(length):
    key = bytes((i * 11 + 2) % 256 for i in range(32))
    message = bytes((i * 5 + 1) % 256 for i in range(length))
    assert poly1305_mac(key, message) == poly1305_mac_reference(key, message)
    # Force the striped bulk path even on short inputs.
    assert poly1305_mac(key, message, _min_blocks=4) == (
        poly1305_mac_reference(key, message)
    )


def test_poly1305_fast_degenerate_r_zero():
    # r clamps to zero: the bulk path must not divide the message into
    # stripes with a zero multiplier (it falls back to the serial loop).
    key = b"\x00" * 16 + bytes(range(16))
    message = b"\xaa" * 5000
    assert poly1305_mac(key, message, _min_blocks=4) == (
        poly1305_mac_reference(key, message)
    )


@given(st.binary(min_size=0, max_size=400), st.binary(min_size=32, max_size=32))
def test_poly1305_equivalence_property(message, key):
    assert poly1305_mac(key, message) == poly1305_mac_reference(key, message)
    assert poly1305_mac(key, message, _min_blocks=1) == (
        poly1305_mac_reference(key, message)
    )
