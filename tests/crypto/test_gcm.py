"""AES-GCM against NIST vectors and tamper-detection requirements."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.gcm import AesGcm
from repro.errors import IntegrityError


def test_nist_empty_plaintext_vector():
    gcm = AesGcm(b"\x00" * 16)
    out = gcm.encrypt(b"\x00" * 12, b"")
    assert out.hex() == "58e2fccefa7e3061367f1d57a4e7455a"


def test_nist_single_block_vector():
    gcm = AesGcm(b"\x00" * 16)
    out = gcm.encrypt(b"\x00" * 12, b"\x00" * 16)
    assert out.hex() == (
        "0388dace60b6a392f328c2b971b2fe78"
        "ab6e47d42cec13bdf53a67b21257bddf"
    )


def test_roundtrip_with_aad():
    gcm = AesGcm(bytes(range(32)))
    sealed = gcm.encrypt(b"\x07" * 12, b"payload", aad=b"header")
    assert gcm.decrypt(b"\x07" * 12, sealed, aad=b"header") == b"payload"


def test_tampered_ciphertext_rejected():
    gcm = AesGcm(bytes(range(16)))
    sealed = bytearray(gcm.encrypt(b"\x01" * 12, b"secret message"))
    sealed[3] ^= 0x40
    with pytest.raises(IntegrityError):
        gcm.decrypt(b"\x01" * 12, bytes(sealed))


def test_tampered_tag_rejected():
    gcm = AesGcm(bytes(range(16)))
    sealed = bytearray(gcm.encrypt(b"\x01" * 12, b"secret message"))
    sealed[-1] ^= 1
    with pytest.raises(IntegrityError):
        gcm.decrypt(b"\x01" * 12, bytes(sealed))


def test_wrong_aad_rejected():
    gcm = AesGcm(bytes(range(16)))
    sealed = gcm.encrypt(b"\x01" * 12, b"msg", aad=b"right")
    with pytest.raises(IntegrityError):
        gcm.decrypt(b"\x01" * 12, sealed, aad=b"wrong")


def test_wrong_nonce_rejected():
    gcm = AesGcm(bytes(range(16)))
    sealed = gcm.encrypt(b"\x01" * 12, b"msg")
    with pytest.raises(IntegrityError):
        gcm.decrypt(b"\x02" * 12, sealed)


def test_truncated_input_rejected():
    gcm = AesGcm(bytes(range(16)))
    with pytest.raises(IntegrityError):
        gcm.decrypt(b"\x01" * 12, b"short")


def test_nonce_length_enforced():
    gcm = AesGcm(bytes(16))
    with pytest.raises(ValueError):
        gcm.encrypt(b"\x00" * 11, b"x")


@given(
    st.binary(min_size=0, max_size=300),
    st.binary(min_size=0, max_size=40),
    st.binary(min_size=16, max_size=16),
)
def test_roundtrip_property(plaintext, aad, key):
    gcm = AesGcm(key)
    sealed = gcm.encrypt(b"\x09" * 12, plaintext, aad=aad)
    assert gcm.decrypt(b"\x09" * 12, sealed, aad=aad) == plaintext
