"""AES-GCM against NIST vectors and tamper-detection requirements."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.gcm import AesGcm
from repro.errors import IntegrityError


def test_nist_empty_plaintext_vector():
    gcm = AesGcm(b"\x00" * 16)
    out = gcm.encrypt(b"\x00" * 12, b"")
    assert out.hex() == "58e2fccefa7e3061367f1d57a4e7455a"


def test_nist_single_block_vector():
    gcm = AesGcm(b"\x00" * 16)
    out = gcm.encrypt(b"\x00" * 12, b"\x00" * 16)
    assert out.hex() == (
        "0388dace60b6a392f328c2b971b2fe78"
        "ab6e47d42cec13bdf53a67b21257bddf"
    )


def test_roundtrip_with_aad():
    gcm = AesGcm(bytes(range(32)))
    sealed = gcm.encrypt(b"\x07" * 12, b"payload", aad=b"header")
    assert gcm.decrypt(b"\x07" * 12, sealed, aad=b"header") == b"payload"


def test_tampered_ciphertext_rejected():
    gcm = AesGcm(bytes(range(16)))
    sealed = bytearray(gcm.encrypt(b"\x01" * 12, b"secret message"))
    sealed[3] ^= 0x40
    with pytest.raises(IntegrityError):
        gcm.decrypt(b"\x01" * 12, bytes(sealed))


def test_tampered_tag_rejected():
    gcm = AesGcm(bytes(range(16)))
    sealed = bytearray(gcm.encrypt(b"\x01" * 12, b"secret message"))
    sealed[-1] ^= 1
    with pytest.raises(IntegrityError):
        gcm.decrypt(b"\x01" * 12, bytes(sealed))


def test_wrong_aad_rejected():
    gcm = AesGcm(bytes(range(16)))
    sealed = gcm.encrypt(b"\x01" * 12, b"msg", aad=b"right")
    with pytest.raises(IntegrityError):
        gcm.decrypt(b"\x01" * 12, sealed, aad=b"wrong")


def test_wrong_nonce_rejected():
    gcm = AesGcm(bytes(range(16)))
    sealed = gcm.encrypt(b"\x01" * 12, b"msg")
    with pytest.raises(IntegrityError):
        gcm.decrypt(b"\x02" * 12, sealed)


def test_truncated_input_rejected():
    gcm = AesGcm(bytes(range(16)))
    with pytest.raises(IntegrityError):
        gcm.decrypt(b"\x01" * 12, b"short")


def test_nonce_length_enforced():
    gcm = AesGcm(bytes(16))
    with pytest.raises(ValueError):
        gcm.encrypt(b"\x00" * 11, b"x")


@given(
    st.binary(min_size=0, max_size=300),
    st.binary(min_size=0, max_size=40),
    st.binary(min_size=16, max_size=16),
)
def test_roundtrip_property(plaintext, aad, key):
    gcm = AesGcm(key)
    sealed = gcm.encrypt(b"\x09" * 12, plaintext, aad=aad)
    assert gcm.decrypt(b"\x09" * 12, sealed, aad=aad) == plaintext


# ---------------------------------------------------------------------------
# Table-driven / grouped GHASH vs the bit-loop reference
# ---------------------------------------------------------------------------


def test_nist_vector_with_aad():
    # NIST SP 800-38D test case 4 (AES-128, 60-byte plaintext, 20-byte AAD).
    key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    nonce = bytes.fromhex("cafebabefacedbaddecaf888")
    plaintext = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39"
    )
    aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    gcm = AesGcm(key)
    sealed = gcm.encrypt(nonce, plaintext, aad=aad)
    assert sealed.hex() == (
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091"
        "5bc94fbc3221a5db94fae95ae7121a47"
    )
    assert gcm.decrypt(nonce, sealed, aad=aad) == plaintext


@pytest.mark.parametrize(
    "ct_len,aad_len",
    [(0, 0), (1, 0), (16, 20), (255, 13), (4095, 0), (4096, 4096), (4097, 31), (9000, 100)],
)
def test_fast_ghash_matches_reference(ct_len, aad_len):
    # Sizes straddle the grouped-path threshold and group boundaries.
    gcm = AesGcm(bytes(range(16)))
    ciphertext = bytes((i * 31 + 7) % 256 for i in range(ct_len))
    aad = bytes((i * 13 + 5) % 256 for i in range(aad_len))
    assert gcm._ghash(aad, ciphertext) == gcm._ghash_reference(aad, ciphertext)


@given(st.binary(min_size=0, max_size=600), st.binary(min_size=16, max_size=16))
def test_fast_ghash_equivalence_property(data, key):
    gcm = AesGcm(key)
    assert gcm._ghash(b"", data) == gcm._ghash_reference(b"", data)
    # Force the grouped path regardless of the size threshold.
    assert gcm._ghash_update_grouped(0, data) == gcm._ghash_update_serial(0, data)


def test_long_message_roundtrip_across_group_boundary():
    gcm = AesGcm(bytes(range(32)))
    for length in (4096 - 1, 4096, 16 * 256, 16 * 256 + 5, 70000):
        plaintext = bytes((i * 3 + 1) % 256 for i in range(length))
        sealed = gcm.encrypt(b"\x0b" * 12, plaintext, aad=b"hdr")
        assert gcm.decrypt(b"\x0b" * 12, sealed, aad=b"hdr") == plaintext
