"""HKDF against RFC 5869 vectors; Expand-Label structure."""

import pytest

from repro.crypto.kdf import (
    hkdf,
    hkdf_expand,
    hkdf_expand_label,
    hkdf_extract,
    hmac_sha256,
)


def test_rfc5869_case_1():
    ikm = bytes.fromhex("0b" * 22)
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    assert prk.hex() == (
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    okm = hkdf_expand(prk, info, 42)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_rfc5869_case_3_empty_salt_info():
    ikm = bytes.fromhex("0b" * 22)
    okm = hkdf(b"", ikm, b"", 42)
    assert okm.hex() == (
        "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8"
    )


def test_expand_length_limits():
    prk = hkdf_extract(b"salt", b"ikm")
    with pytest.raises(ValueError):
        hkdf_expand(prk, b"", 0)
    with pytest.raises(ValueError):
        hkdf_expand(prk, b"", 255 * 32 + 1)
    assert len(hkdf_expand(prk, b"", 255 * 32)) == 255 * 32


def test_expand_label_is_deterministic_and_label_sensitive():
    secret = bytes(range(32))
    a = hkdf_expand_label(secret, "key", b"", 16)
    b = hkdf_expand_label(secret, "key", b"", 16)
    c = hkdf_expand_label(secret, "iv", b"", 16)
    d = hkdf_expand_label(secret, "key", b"ctx", 16)
    assert a == b
    assert a != c
    assert a != d


def test_expand_label_rejects_oversized_label():
    with pytest.raises(ValueError):
        hkdf_expand_label(bytes(32), "x" * 300, b"", 16)


def test_hmac_known_answer():
    # RFC 4231 test case 2.
    tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
    assert tag.hex() == (
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    )
