"""X25519 against RFC 7748 vectors and DH agreement properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.x25519 import X25519PrivateKey, X25519PublicKey, x25519
from repro.errors import SecurityError


def test_rfc7748_vector_1():
    k = bytes.fromhex(
        "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4"
    )
    u = bytes.fromhex(
        "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c"
    )
    assert x25519(k, u).hex() == (
        "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
    )


def test_rfc7748_vector_2():
    k = bytes.fromhex(
        "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d"
    )
    u = bytes.fromhex(
        "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493"
    )
    assert x25519(k, u).hex() == (
        "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
    )


def test_base_point_iteration():
    # RFC 7748 §5.2 iteration test, 1 step.
    k = u = (9).to_bytes(32, "little")
    out = x25519(k, u)
    assert out.hex() == (
        "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
    )


@settings(max_examples=20)
@given(
    st.binary(min_size=32, max_size=32),
    st.binary(min_size=32, max_size=32),
)
def test_diffie_hellman_agreement(a_bytes, b_bytes):
    alice = X25519PrivateKey.generate(a_bytes)
    bob = X25519PrivateKey.generate(b_bytes)
    shared_a = alice.exchange(bob.public_key())
    shared_b = bob.exchange(alice.public_key())
    assert shared_a == shared_b


def test_low_order_point_rejected():
    alice = X25519PrivateKey.generate(bytes(range(32)))
    with pytest.raises(SecurityError):
        alice.exchange(X25519PublicKey(bytes(32)))  # order-1 point


def test_key_length_validation():
    with pytest.raises(ValueError):
        X25519PrivateKey(bytes(31))
    with pytest.raises(ValueError):
        X25519PublicKey(bytes(33))
    with pytest.raises(ValueError):
        x25519(bytes(31), bytes(32))


def test_public_key_equality_and_hash():
    key = X25519PrivateKey.generate(bytes(range(32))).public_key()
    same = X25519PublicKey(key.public_bytes())
    assert key == same
    assert hash(key) == hash(same)
