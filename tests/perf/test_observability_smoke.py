"""Tier-2 perf smoke: the telemetry plane must be free when disabled.

Excluded from tier-1 (see ``addopts`` in pyproject.toml); run with
``pytest -m tier2 tests/perf``.  The plane's bargain: with
``tracing=False`` a run is *indistinguishable* from one in an
interpreter that never imported ``repro.observability`` — identical
simulated time, identical deterministic counters, and wall-clock within
5%.  Both sides run in fresh subprocesses so "never imported" is
literal, and wall times are best-of-N of the workload only (interpreter
startup excluded).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

REPEATS = 5

#: Runs a small HW distributed-training workload and prints one JSON
#: line: workload wall seconds, simulated result time, and scrubbed
#: platform counters.  ``OBS_IMPORT=1`` imports the observability
#: package first (tracing stays off) — the disabled-cost side.
_WORKLOAD = """
import json, os, time
if os.environ.get("OBS_IMPORT") == "1":
    import repro.observability  # noqa: F401  (imported, never activated)
from repro.core import SecureTFPlatform
from repro.core.monitoring import collect_metrics
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJob, TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode

train, _ = synthetic_mnist(n_train=64, n_test=4, seed=11)
batches = list(train.batches(32))
started = time.perf_counter()
platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=11))
job = TrainingJob(platform, TrainingJobConfig(
    session="smoke", n_workers=2, mode=SgxMode.HW, network_shield=True))
job.start()
result = job.train(batches)
job.stop()
wall = time.perf_counter() - started

def scrub(tree):
    if isinstance(tree, dict):
        return {k: scrub(v) for k, v in tree.items()
                if "aead_cache" not in k and "real_crypto" not in k}
    if isinstance(tree, list):
        return [scrub(item) for item in tree]
    return tree

print(json.dumps({
    "wall": wall,
    "simulated": result.wall_clock,
    "platform_time": platform.time,
    "stats": scrub(collect_metrics(platform).to_json()),
}))
"""


def _run_workload(import_observability: bool) -> dict:
    env = dict(os.environ)
    env["OBS_IMPORT"] = "1" if import_observability else "0"
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = subprocess.run(
        [sys.executable, "-c", _WORKLOAD],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


@pytest.mark.tier2
@pytest.mark.slow
def test_disabled_tracing_is_free():
    _run_workload(import_observability=False)  # warm-up (page cache, pyc)
    plain, imported = [], []
    for _ in range(REPEATS):  # interleaved: machine drift hits both sides
        plain.append(_run_workload(import_observability=False))
        imported.append(_run_workload(import_observability=True))

    # Zero simulated cost: byte-identical to a run in an interpreter
    # that never loaded the subsystem.
    for a, b in zip(plain, imported):
        assert a["simulated"] == b["simulated"]
        assert a["platform_time"] == b["platform_time"]
        assert a["stats"] == b["stats"]

    # Bounded wall cost: best-of-N of the workload itself within 5%.
    best_plain = min(r["wall"] for r in plain)
    best_imported = min(r["wall"] for r in imported)
    assert best_imported < best_plain * 1.05, (
        f"disabled telemetry costs {best_imported / best_plain:.3f}x wall"
    )


@pytest.mark.tier2
def test_chrome_trace_exporter_validates_on_a_real_run():
    from repro.core import SecureTFPlatform
    from repro.core.platform import PlatformConfig
    from repro.core.training import TrainingJob, TrainingJobConfig
    from repro.data import synthetic_mnist
    from repro.enclave.sgx import SgxMode
    from repro.observability import validate_chrome_trace

    train, _ = synthetic_mnist(n_train=32, n_test=4, seed=12)
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=12, tracing=True))
    try:
        job = TrainingJob(
            platform,
            TrainingJobConfig(
                session="smoke-trace",
                n_workers=1,
                mode=SgxMode.HW,
                network_shield=True,
            ),
        )
        job.start()
        job.train(list(train.batches(32)))
        job.stop()
        doc = platform.telemetry.chrome_trace()
        assert validate_chrome_trace(doc) > 0
        json.dumps(doc)  # exporter output must be pure JSON
    finally:
        platform.close_telemetry()
