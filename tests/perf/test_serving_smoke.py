"""Tier-2 perf smoke: the serving plane must stay fast and on-SLO.

Excluded from tier-1 (see ``addopts`` in pyproject.toml); run with
``pytest -m serving tests/perf`` or ``pytest -m tier2``.  Two floors:

- **sustained throughput**: a clean (chaos-free) closed-loop run must
  push a minimum number of simulated requests per wall second through
  the router — the floor trips on algorithmic regressions (e.g. the
  replica pick degenerating, the dedup window scanning), not on
  machine noise;
- **tail latency**: the p99 of client-observed latency on the same run
  must stay inside a generous multiple of the modeled service time —
  a regression here means queueing or hedging logic broke, since the
  simulated cost model itself is deterministic.
"""

import time

import pytest

from repro.serving.service import ServingPlane

#: Floor in simulated requests per wall second (clean run, 4 replicas).
MIN_REQUESTS_PER_SEC = 200.0

#: p99 ceiling as observed by clients, in simulated seconds.  Service
#: time is 10 ms ± 20 %; routing, queueing, and the LAN legs must keep
#: the tail within this budget on an unloaded pool.
MAX_P99_SECONDS = 0.2


def _run_clean_plane():
    plane = ServingPlane(seed=5, n_nodes=4, initial_replicas=4)
    started = time.perf_counter()
    stats = plane.run_traffic(clients=8, duration=4.0, deadline_budget=1.0)
    wall = time.perf_counter() - started
    plane.check_invariants()
    return plane, stats, wall


@pytest.mark.tier2
@pytest.mark.serving
def test_serving_plane_sustains_minimum_request_rate():
    plane, stats, wall = _run_clean_plane()
    stats.assert_accounted()
    assert stats.ok > 0
    rate = stats.sent / max(wall, 1e-9)
    assert rate >= MIN_REQUESTS_PER_SEC, (
        f"serving plane sustained only {rate:.0f} req/s "
        f"(floor {MIN_REQUESTS_PER_SEC:.0f})"
    )


@pytest.mark.tier2
@pytest.mark.serving
def test_serving_plane_p99_within_slo_on_clean_run():
    plane, stats, _ = _run_clean_plane()
    p99 = stats.latency.percentile(99)
    assert 0.0 < p99 <= MAX_P99_SECONDS, (
        f"client p99 {p99:.4f}s breaches the {MAX_P99_SECONDS:.2f}s smoke SLO"
    )
