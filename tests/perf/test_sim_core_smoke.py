"""Tier-2 perf smoke: the event-heap core must stay fast at fleet scale.

Excluded from tier-1 (see ``addopts`` in pyproject.toml); run with
``pytest -m simcore tests/perf``.  Two floors:

- **throughput**: a 64-replica heartbeat fleet must sustain a minimum
  simulated-events/s rate through the scheduler (the floor is far below
  healthy hardware — it trips on algorithmic regressions such as the
  heap degenerating to an O(N) scan, not on machine noise);
- **fleet wall budget**: a 256-replica fleet round (the ISSUE's target
  scale) must finish well inside a fixed wall budget, where the old
  synchronous walk's O(N) next-actor scans would blow through it.
"""

import time

import pytest

from repro.cluster import ReplicaFleet
from repro.cluster.network import Network
from repro.cluster.node import make_cluster
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro._sim import DeterministicRng, Scheduler

#: Floor in scheduler events per wall second.  The bench records ~two
#: orders of magnitude above this on developer hardware.
MIN_EVENTS_PER_SEC = 5_000.0

#: Wall budget for one 256-replica fleet round (ISSUE: < 2 min; the
#: smoke uses a much tighter bound so CI catches drift early).
FLEET_256_WALL_BUDGET = 30.0


def _fleet(n_replicas: int, rounds: int):
    rng = DeterministicRng(9, label="simcore-smoke")
    scheduler = Scheduler()
    nodes = make_cluster(
        min(n_replicas, 16),
        CM,
        ProvisioningAuthority(rng.child("intel")),
        seed=9,
        scheduler=scheduler,
    )
    network = Network(CM, scheduler=scheduler)
    return ReplicaFleet(
        network, nodes, n_replicas, rounds=rounds, payload=128, spacing=0.005
    )


@pytest.mark.tier2
@pytest.mark.simcore
def test_event_core_sustains_minimum_event_rate():
    fleet = _fleet(64, rounds=50)
    started = time.perf_counter()
    stats = fleet.run()
    wall = time.perf_counter() - started
    scheduler = fleet._scheduler
    assert stats.responses > 0
    assert scheduler.events_processed > 64 * 50  # timers + deliveries + replies
    rate = scheduler.events_processed / wall
    assert rate >= MIN_EVENTS_PER_SEC, (
        f"event core processed {scheduler.events_processed} events in "
        f"{wall:.2f}s wall = {rate:,.0f} ev/s, below the "
        f"{MIN_EVENTS_PER_SEC:,.0f} ev/s floor"
    )


@pytest.mark.tier2
@pytest.mark.simcore
def test_256_replica_fleet_round_fits_wall_budget():
    fleet = _fleet(256, rounds=5)
    started = time.perf_counter()
    stats = fleet.run()
    wall = time.perf_counter() - started
    assert wall < FLEET_256_WALL_BUDGET, (
        f"256-replica fleet took {wall:.1f}s wall "
        f"(budget {FLEET_256_WALL_BUDGET:.0f}s)"
    )
    # Every replica completed every round despite the all-live fleet.
    assert stats.responses == 256 * 5
    assert fleet._scheduler.activities_running == 0


@pytest.mark.tier2
@pytest.mark.simcore
def test_fleet_traffic_is_seed_deterministic():
    first = _fleet(32, rounds=10).run()
    second = _fleet(32, rounds=10).run()
    assert first == second
