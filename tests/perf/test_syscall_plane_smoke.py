"""Tier-2 perf smoke: the exit-less syscall plane must keep its edge.

Excluded from tier-1 (see ``addopts`` in pyproject.toml); run with
``pytest -m tier2 tests/perf``.  The floor is qualitative on purpose:
an fs-shield read in HW mode over the submission/completion ring must
be *simulated-time* cheaper than the same read over synchronous
transitions — the gap emerges from ring mechanics (batched posts, slot
writes instead of exits, completion waits hidden by scheduler
occupancy), so any regression that collapses the plane back to
per-call exits trips this immediately.
"""

import pytest

from repro._sim import DeterministicRng, SimClock
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import EnclaveImage, Segment, SgxCpu, SgxMode
from repro.runtime.fs_shield import FileSystemShield, PathRule, ShieldPolicy
from repro.runtime.syscall import SyscallInterface
from repro.runtime.threading_ul import UserLevelScheduler
from repro.runtime.vfs import VirtualFileSystem

PAYLOAD = b"w" * (2 * 1024 * 1024)


def _hw_shield(asynchronous: bool):
    rng = DeterministicRng(7, label="plane-smoke")
    clock = SimClock()
    provisioning = ProvisioningAuthority(rng.child("intel"))
    cpu = SgxCpu("cpu-smoke", CM, clock, provisioning, rng.child("cpu"))
    image = EnclaveImage("app", [Segment.from_content("b", b"x", "code")])
    enclave = cpu.create_enclave(image, SgxMode.HW)
    syscalls = SyscallInterface(
        VirtualFileSystem(),
        CM,
        clock,
        mode=SgxMode.HW,
        enclave=enclave,
        asynchronous=asynchronous,
    )
    scheduler = UserLevelScheduler(CM, clock, mode=SgxMode.HW)
    scheduler.set_runnable(4)
    syscalls.attach_scheduler(scheduler)
    shield = FileSystemShield(
        syscalls,
        bytes(range(32)),
        [PathRule("/secure/", ShieldPolicy.ENCRYPT)],
        CM,
        clock,
        chunk_size=64 * 1024,
    )
    return shield, clock


@pytest.mark.tier2
@pytest.mark.slow
def test_async_plane_beats_sync_on_fs_shield_read():
    elapsed = {}
    for asynchronous in (True, False):
        shield, clock = _hw_shield(asynchronous)
        shield.write_file("/secure/model", PAYLOAD)
        before = clock.now
        assert shield.read_file("/secure/model") == PAYLOAD
        elapsed[asynchronous] = clock.now - before
    assert elapsed[True] < elapsed[False], (
        f"exit-less read {elapsed[True] * 1e3:.3f}ms is not faster than "
        f"synchronous {elapsed[False] * 1e3:.3f}ms"
    )
