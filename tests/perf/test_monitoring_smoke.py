"""Tier-2 perf smoke: monitoring must be free when off, cheap when on.

Excluded from tier-1 (see ``addopts`` in pyproject.toml); run with
``pytest -m tier2 tests/perf`` or ``pytest -m monitoring``.  The
flight-recorder bargain, subprocess-verified:

- ``monitoring=False`` runs are byte-identical to runs in an
  interpreter where no recorder was ever installed — identical
  simulated time and deterministic counters;
- a recorder that is *installed* (SLO monitor + rings live, no tracer)
  costs under 5% wall on the serving workload.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

REPEATS = 5

#: Drives the serving plane under a replica crash and prints one JSON
#: line.  ``MON_MODE`` selects the side: ``off`` never constructs any
#: monitoring object; ``on`` runs the full MonitoringSession (SLO
#: monitor + flight recorder + incident pipeline, no tracer).
_WORKLOAD = """
import json, os, time
monitored = os.environ.get("MON_MODE") == "on"
from repro.core.monitoring import collect_metrics
from repro.serving.service import ServingPlane

started = time.perf_counter()
plane = ServingPlane(seed=17, n_nodes=3, initial_replicas=2,
                     monitoring=monitored)
plane.platform.scheduler.schedule(
    1.0, lambda: plane.pool.crash("replica-0"), label="chaos:crash")
stats = plane.run_traffic(clients=4, duration=2.0, deadline_budget=0.5)
plane.check_invariants()
bundles = len(plane.monitoring.bundles) if monitored else 0
trace = plane.trace_bytes().decode()
plane.close()
wall = time.perf_counter() - started

def scrub(tree):
    if isinstance(tree, dict):
        return {k: scrub(v) for k, v in tree.items()
                if "aead_cache" not in k and "real_crypto" not in k
                and "monitoring" not in k and "sim_core" not in k}
    if isinstance(tree, list):
        return [scrub(item) for item in tree]
    return tree

print(json.dumps({
    "wall": wall,
    "ok": stats.ok,
    "platform_time": plane.platform.time,
    "trace": trace,
    "bundles": bundles,
    "stats": scrub(collect_metrics(plane.platform).to_json()),
}))
"""


def _run_workload(mode: str) -> dict:
    env = dict(os.environ)
    env["MON_MODE"] = mode
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = subprocess.run(
        [sys.executable, "-c", _WORKLOAD],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


@pytest.mark.tier2
@pytest.mark.monitoring
@pytest.mark.slow
def test_monitoring_off_is_byte_identical_and_on_is_cheap():
    _run_workload("off")  # warm-up (page cache, pyc)
    off, on = [], []
    for _ in range(REPEATS):  # interleaved: machine drift hits both sides
        off.append(_run_workload("off"))
        on.append(_run_workload("on"))

    # The recorder is read-only: an installed SLO monitor + flight
    # recorder must not shift a single simulated decision.  (The
    # monitoring/sim_core counter groups are scrubbed: the monitor's own
    # bookkeeping is *supposed* to differ — everything else must not.)
    for a, b in zip(off, on):
        assert a["ok"] == b["ok"]
        assert a["platform_time"] == b["platform_time"]
        assert a["trace"] == b["trace"]
        assert a["stats"] == b["stats"]
        assert a["bundles"] == 0
        assert b["bundles"] >= 1  # the crash produced its incident

    # Off-side runs are deterministic across subprocesses.
    for a in off[1:]:
        assert a["trace"] == off[0]["trace"]
        assert a["stats"] == off[0]["stats"]

    # Bounded wall cost: best-of-N within 5%.
    best_off = min(r["wall"] for r in off)
    best_on = min(r["wall"] for r in on)
    assert best_on < best_off * 1.05, (
        f"installed monitoring costs {best_on / best_off:.3f}x wall"
    )


@pytest.mark.tier2
@pytest.mark.monitoring
def test_incident_bundle_validates_end_to_end():
    from repro.serving.service import ServingPlane

    plane = ServingPlane(seed=17, n_nodes=3, initial_replicas=2, monitoring=True)
    try:
        plane.platform.scheduler.schedule(
            1.0, lambda: plane.pool.crash("replica-0"), label="chaos:crash"
        )
        plane.run_traffic(clients=4, duration=2.0, deadline_budget=0.5)
        bundles = plane.monitoring.bundles
        assert bundles
        for bundle in bundles:
            payload = json.loads(bundle.dump())
            assert payload["incident_id"] == bundle.incident_id
            assert payload["root_cause"]["summary"]
            json.dumps(payload)  # pure JSON all the way down
    finally:
        plane.close()
