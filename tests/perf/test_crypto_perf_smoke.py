"""Tier-2 perf smoke: the vectorized crypto must not regress to bigints.

Excluded from tier-1 (see ``addopts`` in pyproject.toml); run with
``pytest -m tier2 tests/perf``.  The floors are deliberately far below
the measured numbers (ChaCha20-Poly1305 ~50 MB/s, AES-GCM ~15-20 MB/s on
the dev container) so that machine variance never trips them — only a
regression back toward the serial implementations (0.2-25 MB/s) will.
"""

import os
import time

import pytest

from repro.crypto.chacha import ChaCha20Poly1305
from repro.crypto.gcm import AesGcm

MESSAGE_SIZE = 1 << 20
REPEATS = 3

#: MB/s floors: conservative, see module docstring.
CHACHA_FLOOR = 30.0
GCM_FLOOR = 5.0


def _best_mb_s(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return MESSAGE_SIZE / best / 1e6


@pytest.mark.tier2
@pytest.mark.slow
def test_chacha20_poly1305_throughput_floor():
    aead = ChaCha20Poly1305(bytes(range(32)))
    payload = os.urandom(MESSAGE_SIZE)
    rate = _best_mb_s(lambda: aead.encrypt(b"\x01" * 12, payload))
    assert rate >= CHACHA_FLOOR, f"ChaCha20-Poly1305 at {rate:.1f} MB/s"


@pytest.mark.tier2
@pytest.mark.slow
def test_aes_gcm_throughput_floor():
    aead = AesGcm(bytes(range(16)))
    payload = os.urandom(MESSAGE_SIZE)
    aead.encrypt(b"\x01" * 12, payload)  # build stride tables outside timing
    rate = _best_mb_s(lambda: aead.encrypt(b"\x01" * 12, payload))
    assert rate >= GCM_FLOOR, f"AES-GCM at {rate:.1f} MB/s"
