"""Shared fixtures for the secureTF reproduction test suite."""

from __future__ import annotations

import pytest


def pytest_configure(config: pytest.Config) -> None:
    # Registered in pyproject.toml too; re-registering here keeps the
    # marker known when pytest is invoked from outside the repo root.
    config.addinivalue_line(
        "markers",
        "simcore: event-heap scheduler perf smokes (run via -m simcore)",
    )
    config.addinivalue_line(
        "markers",
        "serving: resilient serving-plane tests (select via -m serving; in tier 1)",
    )
    config.addinivalue_line(
        "markers",
        "chaos_campaign: exhaustive fault-schedule sweeps over the "
        "epoch-fenced control plane (tier 2; run via -m chaos_campaign)",
    )
    config.addinivalue_line(
        "markers",
        "sharded_training: heavy sharded-PS training sweeps "
        "(tier 2; run via -m sharded_training)",
    )

from repro._sim import DeterministicRng, SimClock
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.enclave.sgx import SgxCpu


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(1234, label="tests")


@pytest.fixture
def cost_model() -> CostModel:
    return DEFAULT_COST_MODEL


@pytest.fixture
def provisioning(rng: DeterministicRng) -> ProvisioningAuthority:
    return ProvisioningAuthority(rng.child("intel"))


@pytest.fixture
def cpu(
    cost_model: CostModel,
    clock: SimClock,
    provisioning: ProvisioningAuthority,
    rng: DeterministicRng,
) -> SgxCpu:
    return SgxCpu("cpu-test", cost_model, clock, provisioning, rng.child("cpu"))


@pytest.fixture
def tiny_cost_model() -> CostModel:
    """A cost model with a tiny EPC so paging tests run fast."""
    return DEFAULT_COST_MODEL.with_overrides(epc_capacity_bytes=4 * 1024 * 1024)
