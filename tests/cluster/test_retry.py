"""Retry policy, circuit breaker, and at-most-once RPC semantics."""

import pytest

from repro._sim import DeterministicRng, SimClock
from repro.cluster import Network, make_cluster
from repro.cluster.faults import FaultPlan, FaultSpec
from repro.cluster.retry import (
    BreakerRegistry,
    CircuitBreaker,
    RetryPolicy,
    RetryingExecutor,
    is_retryable,
)
from repro.cluster.rpc import RpcClient, RpcServer
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.errors import (
    CircuitOpenError,
    PolicyError,
    RpcTransportError,
)


@pytest.fixture
def cluster(provisioning):
    return make_cluster(2, CM, provisioning, seed=11)


@pytest.fixture
def network():
    return Network(CM)


# -- policy ---------------------------------------------------------------


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.0)
    delays = [policy.backoff(i) for i in range(6)]
    assert delays[:3] == [0.01, 0.02, 0.04]
    assert all(d == 0.05 for d in delays[3:])


def test_backoff_jitter_is_deterministic():
    policy = RetryPolicy(base_delay=0.01, jitter=0.5)
    a = [policy.backoff(i, DeterministicRng(3, label="r")) for i in range(8)]
    b = [policy.backoff(i, DeterministicRng(3, label="r")) for i in range(8)]
    assert a == b
    assert a != [policy.backoff(i) for i in range(8)]  # jitter does act


def test_retryable_classification():
    assert is_retryable(RpcTransportError("lost"))
    assert is_retryable(CircuitOpenError("open"))
    assert not is_retryable(PolicyError("denied"))
    assert not is_retryable(ValueError("bug"))


# -- executor -------------------------------------------------------------


def make_executor(clock, **policy_kw):
    policy = RetryPolicy(**policy_kw)
    return RetryingExecutor(policy, clock, DeterministicRng(7, label="x"))


def test_executor_retries_transient_failures(clock):
    executor = make_executor(clock, max_attempts=5, jitter=0.0)
    attempts = []

    def flaky():
        attempts.append(clock.now)
        if len(attempts) < 3:
            raise RpcTransportError("lost")
        return "ok"

    assert executor.run("svc", flaky) == "ok"
    assert len(attempts) == 3
    assert executor.stats.retries == 2
    # Backoff advanced the simulated clock between attempts.
    assert attempts[1] - attempts[0] == pytest.approx(0.02)
    assert attempts[2] - attempts[1] == pytest.approx(0.04)


def test_executor_gives_up_after_max_attempts(clock):
    executor = make_executor(clock, max_attempts=3)

    def dead():
        raise RpcTransportError("lost")

    with pytest.raises(RpcTransportError):
        executor.run("svc", dead)
    assert executor.stats.attempts == 3
    assert executor.stats.giveups == 1


def test_executor_respects_deadline(clock):
    executor = make_executor(
        clock, max_attempts=100, base_delay=1.0, multiplier=1.0,
        jitter=0.0, deadline=3.5,
    )
    calls = []

    def dead():
        calls.append(1)
        raise RpcTransportError("lost")

    with pytest.raises(RpcTransportError):
        executor.run("svc", dead)
    # Attempts at t=0,1,2,3; the next backoff would pass the deadline.
    assert len(calls) == 4
    assert clock.now <= 3.5


def test_non_retryable_error_attempted_once(clock):
    executor = make_executor(clock, max_attempts=5)
    calls = []

    def denied():
        calls.append(1)
        raise PolicyError("no")

    with pytest.raises(PolicyError):
        executor.run("svc", denied)
    assert len(calls) == 1
    assert executor.stats.retries == 0


# -- circuit breaker ------------------------------------------------------


def test_breaker_trips_after_threshold_and_half_opens():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=5.0)
    assert breaker.state == "closed"
    for t in range(3):
        assert breaker.allow(float(t))
        breaker.on_failure(float(t))
    assert breaker.state == "open"
    assert not breaker.allow(3.0)
    # Cooldown elapses: one probe allowed (half-open).
    assert breaker.allow(2.0 + 5.0)
    assert breaker.state == "half-open"
    # Probe fails -> snaps open again immediately.
    breaker.on_failure(7.0)
    assert breaker.state == "open"
    # Probe succeeds next time -> fully closed.
    assert breaker.allow(12.1)
    breaker.on_success()
    assert breaker.state == "closed"


def test_executor_sheds_calls_while_open_then_recovers(clock):
    policy = RetryPolicy(
        max_attempts=2, base_delay=0.01, jitter=0.0, deadline=None
    )
    breakers = BreakerRegistry(failure_threshold=2, reset_timeout=10.0)
    executor = RetryingExecutor(
        policy, clock, DeterministicRng(1, label="x"), breakers=breakers
    )
    calls = []

    def dead():
        calls.append(1)
        raise RpcTransportError("lost")

    with pytest.raises(RpcTransportError):
        executor.run("svc", dead)  # both attempts fail -> breaker trips
    assert breakers.get("svc").state == "open"
    before = len(calls)
    # While open, the attempt function is never invoked: calls are shed.
    with pytest.raises(CircuitOpenError):
        executor.run("svc", dead)
    assert len(calls) == before
    assert executor.stats.breaker_rejections > 0
    # After the cooldown the endpoint recovered: probe succeeds.
    clock.advance(10.0)
    assert executor.run("svc", lambda: "ok") == "ok"
    assert breakers.get("svc").state == "closed"


# -- end-to-end over the simulated network --------------------------------


def test_client_retries_through_lossy_network(cluster, network):
    echo = RpcServer(network, "echo", cluster[0])
    echo.register("echo", lambda payload, peer: payload)
    echo.start()
    # ~20% loss per leg; retries must still get every call through.
    plan = FaultPlan(3, FaultSpec(loss=0.2))
    network.faults.append(plan.inject)
    client = RpcClient(
        network, "client", cluster[1],
        retry=RetryPolicy(max_attempts=25, jitter=0.0),
    )
    for i in range(30):
        assert client.call("echo", "echo", b"m%d" % i) == b"m%d" % i
    assert plan.counters.losses > 0
    # Every loss was absorbed by exactly one retry (no giveups).
    assert client.stats.retries == plan.counters.losses
    assert client.stats.giveups == 0


def test_dedup_makes_retried_mutations_at_most_once(cluster, network):
    applied = []
    server = RpcServer(network, "svc", cluster[0])
    server.register("apply", lambda payload, peer: bytes(applied.append(payload) or b"done"))
    server.start()

    # Drop only responses: the server executes, the client never hears.
    class ResponseDropper:
        def __init__(self, n):
            self.remaining = n

        def __call__(self, src, dst, n_bytes, now):
            from repro.cluster.network import FaultAction

            if src == "svc" and self.remaining > 0:
                self.remaining -= 1
                return FaultAction(drop=True, reason="response lost")
            return None

    network.faults.append(ResponseDropper(2))
    client = RpcClient(
        network, "client", cluster[1],
        retry=RetryPolicy(max_attempts=5, jitter=0.0),
    )
    assert client.call("svc", "apply", b"g1") == b"done"
    # Three attempts reached the server, but the mutation applied once.
    assert applied == [b"g1"]
    assert server.stats.dedup_hits == 2


def test_duplicate_delivery_deduped(cluster, network):
    applied = []
    server = RpcServer(network, "svc", cluster[0])
    server.register("apply", lambda payload, peer: bytes(applied.append(payload) or b"done"))
    server.start()
    plan = FaultPlan(0, FaultSpec(duplication=1.0))
    network.faults.append(plan.inject)
    client = RpcClient(
        network, "client", cluster[1], retry=RetryPolicy(jitter=0.0)
    )
    assert client.call("svc", "apply", b"g") == b"done"
    # The duplicated request hit the dedup window, not the handler.
    assert applied == [b"g"]
    assert server.stats.dedup_hits == 1


def test_call_ids_unique_across_client_instances(cluster, network):
    a = RpcClient(network, "same-addr", cluster[0], retry=RetryPolicy())
    b = RpcClient(network, "same-addr", cluster[1], retry=RetryPolicy())
    ids = {a.next_call_id(), a.next_call_id(), b.next_call_id(), b.next_call_id()}
    assert len(ids) == 4  # replacement containers never collide


def test_dedup_window_bounded(cluster, network):
    server = RpcServer(network, "svc", cluster[0])
    server.register("noop", lambda payload, peer: b"")
    server.start()
    server.DEDUP_CAPACITY = 8
    client = RpcClient(network, "client", cluster[1], retry=RetryPolicy())
    for i in range(40):
        client.call("svc", "noop", b"%d" % i)
    assert len(server._dedup) <= 8
