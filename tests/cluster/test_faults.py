"""Chaos plane: deterministic fault injection into the network."""

import pytest

from repro.cluster import Network, make_cluster
from repro.cluster.faults import (
    CrashFault,
    FaultPlan,
    FaultSpec,
    TransientPartition,
)
from repro.cluster.rpc import RpcClient, RpcServer
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.errors import RpcTransportError


@pytest.fixture
def cluster(provisioning):
    return make_cluster(2, CM, provisioning, seed=7)


@pytest.fixture
def network():
    return Network(CM)


def echo_server(network, node, address="echo"):
    server = RpcServer(network, address, node)
    server.register("echo", lambda payload, peer: payload)
    server.start()
    return server


def drive(plan, legs=200, size=256):
    """Feed ``legs`` message legs through a plan, off-network."""
    outcomes = []
    for i in range(legs):
        outcomes.append(plan.inject("a", "b", size, float(i)))
    return outcomes


def test_same_seed_same_fault_sequence():
    spec = FaultSpec(loss=0.1, delay=0.2, duplication=0.15)
    plan_a = FaultPlan(99, spec)
    plan_b = FaultPlan(99, spec)
    drive(plan_a)
    drive(plan_b)
    assert plan_a.events == plan_b.events
    assert plan_a.trace_bytes() == plan_b.trace_bytes()
    assert plan_a.counters == plan_b.counters
    assert plan_a.counters.losses > 0
    assert plan_a.counters.delays > 0
    assert plan_a.counters.duplicates > 0


def test_different_seed_different_sequence():
    spec = FaultSpec(loss=0.2, delay=0.2, duplication=0.2)
    plan_a = FaultPlan(1, spec)
    plan_b = FaultPlan(2, spec)
    drive(plan_a)
    drive(plan_b)
    assert plan_a.events != plan_b.events


def test_loss_raises_transport_error_and_counts_no_bytes(cluster, network):
    echo_server(network, cluster[0])
    client = RpcClient(network, "client", cluster[1])
    plan = FaultPlan(0, FaultSpec(loss=1.0))
    network.faults.append(plan.inject)
    with pytest.raises(RpcTransportError):
        client.call("echo", "echo", b"hello")
    # Satellite: dropped traffic never inflates delivered-bytes stats.
    assert network.stats.bytes_transferred == 0
    assert network.stats.messages == 0
    assert network.stats.dropped == 1
    assert plan.counters.losses == 1


def test_latency_spike_slows_the_caller(cluster, network):
    echo_server(network, cluster[0])
    client = RpcClient(network, "client", cluster[1])
    baseline_start = cluster[1].clock.now
    client.call("echo", "echo", b"x")
    baseline = cluster[1].clock.now - baseline_start

    spike = 0.25
    plan = FaultPlan(0, FaultSpec(delay=1.0, delay_seconds=spike))
    network.faults.append(plan.inject)
    start = cluster[1].clock.now
    client.call("echo", "echo", b"x")
    elapsed = cluster[1].clock.now - start
    # Both legs spike.
    assert elapsed == pytest.approx(baseline + 2 * spike)
    assert network.stats.delayed == 2


def test_duplicate_delivery_reaches_handler_twice(cluster, network):
    hits = []
    server = RpcServer(network, "svc", cluster[0])
    server.register("ping", lambda payload, peer: bytes(hits.append(1) or b"ok"))
    server.start()
    client = RpcClient(network, "client", cluster[1])
    plan = FaultPlan(0, FaultSpec(duplication=1.0))
    network.faults.append(plan.inject)
    assert client.call("svc", "ping", b"") == b"ok"
    # Request leg duplicated -> handler ran twice; both copies counted.
    assert len(hits) == 2
    assert network.stats.duplicated == 2  # request + response legs


def test_transient_partition_heals_with_time(cluster, network):
    echo_server(network, cluster[0])
    client = RpcClient(network, "client", cluster[1])
    plan = FaultPlan(
        0, partitions=[TransientPartition("echo", start=0.0, end=5.0)]
    )
    network.faults.append(plan.inject)
    with pytest.raises(RpcTransportError):
        client.call("echo", "echo", b"x")
    assert plan.counters.partition_drops == 1
    cluster[1].clock.advance_to(5.0)
    assert client.call("echo", "echo", b"x") == b"x"


def test_partition_takes_no_rng_draws():
    """Partition drops are clock-driven: they must not consume the
    stream, or healing time would shift every later probabilistic draw."""
    spec = FaultSpec(loss=0.3, delay=0.3, duplication=0.3)
    partition = TransientPartition("a", 0.0, 10.0)
    plan_part = FaultPlan(5, spec, partitions=[partition])
    plan_flat = FaultPlan(5, spec)
    # First 10 legs hit the partition in one plan only.
    for i in range(10):
        plan_part.inject("a", "b", 64, float(i))
    # From t=10 both plans see identical in-scope legs.
    a = [plan_part.inject("a", "b", 64, 10.0 + i) for i in range(50)]
    b = [plan_flat.inject("a", "b", 64, 10.0 + i) for i in range(50)]
    assert a == b


def test_spec_target_scoping():
    spec = FaultSpec(loss=1.0, targets=frozenset({"ps"}))
    plan = FaultPlan(0, spec)
    assert plan.inject("cas", "client", 10, 0.0) is None
    action = plan.inject("worker", "ps", 10, 0.0)
    assert action is not None and action.drop


def test_due_crashes_fire_once_in_order():
    plan = FaultPlan(
        0,
        crashes=[
            CrashFault("worker-1", at_round=2),
            CrashFault("ps", at_round=2),
            CrashFault("ps", at_round=4),
        ],
    )
    assert plan.due_crashes(0) == []
    round2 = plan.due_crashes(2)
    assert [c.target for c in round2] == ["ps", "worker-1"]  # sorted
    assert plan.due_crashes(2) == []  # fired exactly once
    assert [c.target for c in plan.due_crashes(4)] == ["ps"]
    assert plan.counters.crashes == 3
    assert "crash ps round=2" in plan.events


@pytest.mark.chaos
def test_randomized_sweep_many_seeds(cluster, network):
    """Long randomized sweep: chaos at assorted rates never corrupts a
    reply that does get through, and stats stay self-consistent."""
    echo_server(network, cluster[0])
    client = RpcClient(network, "client", cluster[1])
    for seed in range(25):
        plan = FaultPlan(
            seed, FaultSpec(loss=0.05 * (seed % 5), delay=0.1, duplication=0.1)
        )
        network.faults = [plan.inject]
        delivered = 0
        for i in range(40):
            try:
                assert client.call("echo", "echo", b"p%d" % i) == b"p%d" % i
                delivered += 1
            except RpcTransportError:
                pass
        if plan.spec.loss == 0:
            assert delivered == 40
