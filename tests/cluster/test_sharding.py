"""Shard map, gradient quantization, and the cross-shard commit barrier.

These are the deterministic building blocks of the sharded training
plane: every worker, shard, and restarted replacement must derive the
identical shard map from its own copy of the model; the quantizer must
round-trip within its declared bound and byte-identically across runs;
and the shared store's barrier must be all-or-nothing under fencing.
"""

import numpy as np
import pytest

from repro._sim.rng import DeterministicRng
from repro.cluster import (
    GradientQuantizer,
    InMemoryCheckpointStore,
    Network,
    ParameterServer,
    PSCheckpoint,
    ShardedParameterService,
    ShardMap,
    make_cluster,
)
from repro.cluster.epoch import EpochService
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.errors import ClusterError, ConfigurationError, FencedError


def model_like():
    """Shapes mimicking mnist_cnn: one kernel dominates the byte count."""
    rng = np.random.default_rng(7)
    return {
        "conv1/kernel": rng.normal(size=(5, 5, 1, 8)).astype(np.float32),
        "conv1/bias": rng.normal(size=(8,)).astype(np.float32),
        "fc1/kernel": rng.normal(size=(1568, 32)).astype(np.float32),
        "fc1/bias": rng.normal(size=(32,)).astype(np.float32),
        "fc2/kernel": rng.normal(size=(32, 10)).astype(np.float32),
        "fc2/bias": rng.normal(size=(10,)).astype(np.float32),
    }


# -- shard map ------------------------------------------------------------


def test_shard_map_is_deterministic():
    weights = model_like()
    a = ShardMap.build(weights, 4)
    b = ShardMap.build(weights, 4)
    assert [(p.key, p.shard, p.nbytes) for p in a.pieces] == [
        (p.key, p.shard, p.nbytes) for p in b.pieces
    ]


def test_shard_map_splits_dominant_tensor_and_balances():
    weights = model_like()
    mapping = ShardMap.build(weights, 4)
    # The fc1 kernel is >90% of the model: it must be row-split, and no
    # shard may end up holding more than ~40% of the bytes with 4 shards.
    assert len(mapping.shards_of("fc1/kernel")) > 1
    loads = mapping.shard_nbytes()
    total = sum(v.nbytes for v in weights.values())
    assert sum(loads) == total
    assert max(loads) <= 0.4 * total
    # Piece keys carry contiguous, disjoint row ranges covering axis 0.
    splits = [p for p in mapping.pieces if p.var == "fc1/kernel"]
    splits.sort(key=lambda p: p.start)
    assert splits[0].start == 0 and splits[-1].stop == 1568
    for prev, cur in zip(splits, splits[1:]):
        assert prev.stop == cur.start


def test_single_shard_map_keeps_variables_whole():
    mapping = ShardMap.build(model_like(), 1)
    assert all(not p.is_split for p in mapping.pieces)
    assert mapping.active_shards == [0]


def test_partition_merge_round_trip():
    weights = model_like()
    mapping = ShardMap.build(weights, 3)
    parts = {}
    for shard_dict in mapping.partition(weights):
        parts.update(shard_dict)
    merged = mapping.merge(parts)
    assert set(merged) == set(weights)
    for name in weights:
        np.testing.assert_array_equal(merged[name], weights[name])


def test_merge_refuses_partial_variables():
    weights = model_like()
    mapping = ShardMap.build(weights, 4)
    parts = {}
    for shard_dict in mapping.partition(weights):
        parts.update(shard_dict)
    split_keys = [p.key for p in mapping.pieces if p.var == "fc1/kernel"]
    del parts[split_keys[0]]
    with pytest.raises(ClusterError, match="missing pieces"):
        mapping.merge(parts)


def test_shard_map_rejects_bad_inputs():
    with pytest.raises(ClusterError):
        ShardMap.build(model_like(), 0)
    with pytest.raises(ClusterError):
        ShardMap.build({}, 2)
    mapping = ShardMap.build(model_like(), 2)
    with pytest.raises(ClusterError):
        mapping.shards_of("nope/kernel")


# -- gradient quantization ------------------------------------------------


@pytest.mark.parametrize("bits", [4, 8, 16])
def test_quantizer_round_trip_stays_within_declared_bound(bits):
    quantizer = GradientQuantizer(bits=bits)
    rng = np.random.default_rng(11)
    tensors = {
        "a": rng.normal(scale=0.3, size=(64, 32)).astype(np.float32),
        "b": rng.normal(scale=3.0, size=(128,)).astype(np.float32),
        "zero": np.zeros((16,), dtype=np.float32),
    }
    quantized, scales = quantizer.quantize(tensors)
    restored = quantizer.dequantize(quantized, scales)
    bounds = quantizer.error_bound(tensors)
    for name, value in tensors.items():
        err = float(np.max(np.abs(restored[name] - value)))
        assert err <= bounds[name] + 1e-7, (name, err, bounds[name])
    # All-zero tensors round-trip exactly (scale 0, no division).
    np.testing.assert_array_equal(restored["zero"], tensors["zero"])


def test_quantizer_is_byte_identical_across_seeded_runs():
    def one_run():
        rng = np.random.default_rng(23)
        tensors = {
            "g": rng.normal(size=(200, 17)).astype(np.float32),
            "h": rng.normal(scale=0.01, size=(31,)).astype(np.float32),
        }
        quantized, scales = GradientQuantizer(bits=8).quantize(tensors)
        return (
            b"".join(quantized[k].tobytes() for k in sorted(quantized)),
            tuple(sorted(scales.items())),
        )

    assert one_run() == one_run()


def test_quantizer_shrinks_declared_wire_bytes():
    quantizer = GradientQuantizer(bits=8)
    float_bytes = 4 * 1568 * 32
    declared = quantizer.declared_bytes(float_bytes, n_tensors=2)
    assert declared < float_bytes / 3  # ~4x smaller, plus scale overhead


def test_quantizer_rejects_bad_bit_widths():
    for bits in (1, 0, 17, 32):
        with pytest.raises(ClusterError):
            GradientQuantizer(bits=bits)


# -- cross-shard commit barrier -------------------------------------------


def snapshot(version):
    return PSCheckpoint(
        weights={"w": np.zeros(1, dtype=np.float32)},
        version=version,
        updates_applied=version,
        dedup=[],
    )


def test_commit_vector_is_all_or_nothing_under_fencing():
    store = InMemoryCheckpointStore()
    epochs = EpochService()
    store.guards["s0"] = epochs.make_guard("ps-0", name="s0")
    store.guards["s1"] = epochs.make_guard("ps-1", name="s1")
    lease0 = epochs.grant("ps-0", holder="a")
    lease1 = epochs.grant("ps-1", holder="b")
    store.save("s0", snapshot(3), epoch=lease0.epoch)
    store.save("s1", snapshot(3), epoch=lease1.epoch)
    assert store.commit_vector(
        {"s0": 3, "s1": 3}, {"s0": lease0.epoch, "s1": lease1.epoch}
    ) == 1

    # Shard 0 fails over: its old epoch is fenced store-wide.
    epochs.grant("ps-0", holder="a2")
    with pytest.raises(FencedError):
        store.commit_vector(
            {"s0": 4, "s1": 4}, {"s0": lease0.epoch, "s1": lease1.epoch}
        )
    # The rejected vector left no partial barrier behind.
    assert store.barrier_commits == 1
    assert store.latest_vector() == {"s0": 3, "s1": 3}
    # And the zombie's per-shard save is refused too.
    with pytest.raises(FencedError):
        store.save("s0", snapshot(4), epoch=lease0.epoch)


def test_verify_resume_refuses_a_shard_behind_the_barrier(provisioning):
    nodes = make_cluster(2, CM, provisioning, seed=41)
    network = Network(CM)
    store = InMemoryCheckpointStore()
    shards = [
        ParameterServer(
            nodes[i], f"vps-{i}", network, learning_rate=0.1,
            checkpoint_store=store,
        )
        for i in (0, 1)
    ]
    service = ShardedParameterService(shards, barrier_store=store)
    service.initialize(
        {"w": np.arange(8, dtype=np.float32).reshape(4, 2)}
    )
    assert service.commit_barrier() is not None
    assert service.verify_resume(0) is None  # consistent lineage

    # A barrier recorded ahead of shard 0's restored snapshot means the
    # durable store lost state the other shards already agreed on.
    vector = store.latest_vector()
    vector["vps-0"] += 5
    store.commit_vector(vector)
    with pytest.raises(ClusterError, match="behind committed barrier"):
        service.verify_resume(0)


# -- secure-aggregation masking (crypto layer round-trip) -----------------


def test_additive_shares_sum_exactly_and_leak_nothing():
    from repro.crypto.masking import (
        additive_shares,
        combine_shares,
        decode_fixed,
        encode_fixed,
    )

    rng = DeterministicRng(5, label="mask-test")
    values = np.array([-2.5, 0.0, 1.0 / 3.0, 417.25], dtype=np.float32)
    encoded = encode_fixed(values)
    shares = additive_shares(encoded, 3, rng)
    # The wrapping sum reconstructs the encoding bit for bit ...
    np.testing.assert_array_equal(combine_shares(shares), encoded)
    # ... but no share (or proper subset) equals the encoding.
    assert not np.array_equal(shares[0], encoded)
    assert not np.array_equal(combine_shares(shares[:2]), encoded)
    # Fixed-point decode is within half a quantum of the plaintext.
    np.testing.assert_allclose(decode_fixed(encoded), values, atol=2 ** -17)
    with pytest.raises(ConfigurationError):
        additive_shares(encoded, 1, rng)


def test_share_tensors_round_trip_is_deterministic():
    from repro.crypto.masking import combine_tensor_shares, share_tensors

    tensors = {
        "b": np.array([[1.5, -0.25]], dtype=np.float32),
        "a": np.linspace(-1, 1, 7).astype(np.float32),
    }

    def one_run():
        rng = DeterministicRng(9, label="mask-run")
        parts = share_tensors(tensors, 4, rng)
        return parts, combine_tensor_shares(parts)

    parts_a, combined_a = one_run()
    parts_b, combined_b = one_run()
    for part_a, part_b in zip(parts_a, parts_b):
        for name in tensors:
            np.testing.assert_array_equal(part_a[name], part_b[name])
    from repro.crypto.masking import encode_fixed

    for name, value in tensors.items():
        np.testing.assert_array_equal(combined_a[name], encode_fixed(value))
        np.testing.assert_array_equal(combined_a[name], combined_b[name])
