"""Simulated network and RPC: timing, adversary, secure sessions."""

import pytest

from repro._sim import DeterministicRng
from repro.cluster import Network, make_cluster
from repro.cluster.rpc import RpcClient, RpcServer, SecureRpcClient, SecureRpcServer
from repro.crypto.certs import CertificateAuthority
from repro.crypto.ed25519 import Ed25519PrivateKey
from repro.crypto.tls import TlsIdentity
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.errors import IntegrityError, RpcError, SecurityError
from repro.runtime.net_shield import NetworkShield


@pytest.fixture
def cluster(provisioning):
    return make_cluster(3, CM, provisioning, seed=4)


@pytest.fixture
def network():
    return Network(CM)


def echo_server(network, node, address="echo"):
    server = RpcServer(network, address, node)
    server.register("echo", lambda payload, peer: payload)
    server.start()
    return server


def test_plain_call_roundtrip(cluster, network):
    echo_server(network, cluster[0])
    client = RpcClient(network, "client", cluster[1])
    assert client.call("echo", "echo", b"hello") == b"hello"


def test_call_charges_rtt_and_bandwidth(cluster, network):
    echo_server(network, cluster[0])
    client = RpcClient(network, "client", cluster[1])
    before = cluster[1].clock.now
    client.call("echo", "echo", b"x", declared_request=10_000_000)
    elapsed = cluster[1].clock.now - before
    assert elapsed >= CM.lan_rtt + 10_000_000 / CM.lan_bandwidth


def test_callee_clock_advances_to_arrival(cluster, network):
    echo_server(network, cluster[0])
    cluster[1].clock.advance(5.0)
    RpcClient(network, "client", cluster[1]).call("echo", "echo", b"x")
    assert cluster[0].clock.now >= 5.0


def test_busy_callee_delays_caller(cluster, network):
    server = RpcServer(network, "slow", cluster[0])

    def slow_handler(payload, peer):
        cluster[0].clock.advance(2.0)
        return b"done"

    server.register("work", slow_handler)
    server.start()
    client = RpcClient(network, "client", cluster[1])
    before = cluster[1].clock.now
    client.call("slow", "work", b"")
    assert cluster[1].clock.now - before >= 2.0


def test_unknown_method_and_endpoint(cluster, network):
    echo_server(network, cluster[0])
    client = RpcClient(network, "client", cluster[1])
    with pytest.raises(RpcError):
        client.call("echo", "missing_method", b"")
    with pytest.raises(RpcError):
        client.call("nowhere", "echo", b"")


def test_partition_and_heal(cluster, network):
    echo_server(network, cluster[0])
    client = RpcClient(network, "client", cluster[1])
    network.partition("echo")
    with pytest.raises(RpcError):
        client.call("echo", "echo", b"")
    network.heal("echo")
    assert client.call("echo", "echo", b"ok") == b"ok"


def test_adversary_can_drop(cluster, network):
    echo_server(network, cluster[0])
    network.adversary = lambda src, dst, data: None
    client = RpcClient(network, "client", cluster[1])
    with pytest.raises(RpcError):
        client.call("echo", "echo", b"")
    assert network.stats.dropped == 1


def test_duplicate_address_rejected(cluster, network):
    echo_server(network, cluster[0])
    with pytest.raises(RpcError):
        echo_server(network, cluster[1])


def test_barrier_synchronizes(cluster, network):
    cluster[0].clock.advance(1.0)
    cluster[2].clock.advance(3.0)
    latest = network.barrier([n.clock for n in cluster])
    assert latest == 3.0
    assert all(n.clock.now == 3.0 for n in cluster)


# --- secure RPC -----------------------------------------------------------------


def make_shield(ca, rng, node, name):
    key = Ed25519PrivateKey(rng.random_bytes(32))
    cert = ca.issue(name, key.public_key().public_bytes(), rng.random_bytes(32), now=0.0)
    return NetworkShield(
        TlsIdentity(key, cert), [ca.public_key()], CM, node.clock,
        rng.child(name),
    )


@pytest.fixture
def secure_setup(cluster, network, rng):
    ca = CertificateAuthority("root", Ed25519PrivateKey(rng.random_bytes(32)))
    server_shield = make_shield(ca, rng, cluster[0], "server")
    client_shield = make_shield(ca, rng, cluster[1], "client")
    server = SecureRpcServer(network, "secure", cluster[0], server_shield)
    server.register("echo", lambda payload, peer: payload)
    server.register("whoami", lambda payload, peer: peer.encode())
    server.start()
    client = SecureRpcClient(network, "client", cluster[1], client_shield)
    return ca, rng, client, server, network, cluster


def test_secure_call_roundtrip(secure_setup):
    _, _, client, _, _, _ = secure_setup
    conn = client.connect("secure", expected_server="server")
    assert conn.call("echo", b"confidential") == b"confidential"
    assert conn.peer_subject == "server"


def test_secure_server_sees_client_identity(secure_setup):
    _, _, client, _, _, _ = secure_setup
    conn = client.connect("secure")
    assert conn.call("whoami", b"") == b"client"


def test_payload_not_visible_on_wire(secure_setup):
    _, _, client, _, network, _ = secure_setup
    seen = []

    def sniff(src, dst, data):
        seen.append(data)
        return data

    conn = client.connect("secure")
    network.adversary = sniff
    conn.call("echo", b"super-secret-payload")
    assert all(b"super-secret-payload" not in msg for msg in seen)


def test_tampered_secure_response_detected(secure_setup):

    _, _, client, _, network, _ = secure_setup
    conn = client.connect("secure")

    def tamper(src, dst, data):
        if dst == "client":  # corrupt responses only
            corrupted = bytearray(data)
            corrupted[-1] ^= 1
            return bytes(corrupted)
        return data

    network.adversary = tamper
    with pytest.raises((IntegrityError, RpcError)):
        conn.call("echo", b"payload")


def test_tampered_secure_request_rejected_by_server(secure_setup):
    _, _, client, _, network, _ = secure_setup
    conn = client.connect("secure")

    def tamper(src, dst, data):
        if dst == "secure":
            corrupted = bytearray(data)
            corrupted[-1] ^= 1
            return bytes(corrupted)
        return data

    network.adversary = tamper
    # The server's IntegrityError travels back typed, not as bare RpcError.
    with pytest.raises(IntegrityError):
        conn.call("echo", b"payload")


def test_untrusted_client_cannot_connect(secure_setup, rng):
    ca, _, _, _, network, cluster = secure_setup
    rogue_ca = CertificateAuthority("rogue", Ed25519PrivateKey(rng.random_bytes(32)))
    rogue_key = Ed25519PrivateKey(rng.random_bytes(32))
    rogue_cert = rogue_ca.issue(
        "mallory", rogue_key.public_key().public_bytes(), rng.random_bytes(32), now=0.0
    )
    rogue_shield = NetworkShield(
        TlsIdentity(rogue_key, rogue_cert),
        [ca.public_key()],
        CM,
        cluster[2].clock,
        rng.child("mallory"),
    )
    rogue = SecureRpcClient(network, "mallory", cluster[2], rogue_shield)
    # The server's certificate rejection comes back as a security
    # failure (never retried), not a generic transport error.
    with pytest.raises(SecurityError):
        rogue.connect("secure")


def test_unknown_connection_rejected(secure_setup):
    _, _, client, _, _, _ = secure_setup
    conn = client.connect("secure")
    conn._conn = 9999
    with pytest.raises(RpcError):
        conn.call("echo", b"")


# --- secure-session resilience --------------------------------------------------


def make_retrying_client(secure_setup, **policy_kw):
    from repro.cluster.retry import RetryPolicy

    ca, rng, _, server, network, cluster = secure_setup
    shield = make_shield(ca, rng, cluster[1], "retrier")
    return SecureRpcClient(
        network, "retrier", cluster[1], shield,
        retry=RetryPolicy(jitter=0.0, **policy_kw),
    )


def test_stale_secure_connection_is_typed(secure_setup):
    from repro.errors import StaleConnectionError

    _, _, client, _, _, _ = secure_setup
    conn = client.connect("secure")
    conn._conn = 9999
    with pytest.raises(StaleConnectionError):
        conn.call("echo", b"")


def test_pending_handshakes_expire_by_count(secure_setup):
    from repro.cluster.rpc import _envelope

    _, _, client, server, network, cluster = secure_setup
    server.PENDING_CAPACITY = 4
    # Abandoned hs1s (client crashes before hs2) must not pin memory.
    for i in range(10):
        network.call(
            "client", cluster[1].clock, "secure",
            _envelope("hs1", hello=client._shield.client_handshake(
                now=cluster[1].clock.now).hello()),
        )
    assert len(server._pending) <= 4 + 1
    assert server.stats.handshakes_expired >= 5


def test_pending_handshakes_expire_by_age(secure_setup):
    from repro.cluster.rpc import _envelope

    _, _, client, server, network, cluster = secure_setup
    network.call(
        "client", cluster[1].clock, "secure",
        _envelope("hs1", hello=client._shield.client_handshake(
            now=cluster[1].clock.now).hello()),
    )
    assert len(server._pending) == 1
    cluster[1].clock.advance(server.PENDING_TTL + 1.0)
    network.call(
        "client", cluster[1].clock, "secure",
        _envelope("hs1", hello=client._shield.client_handshake(
            now=cluster[1].clock.now).hello()),
    )
    # The sweep on the second hs1 evicted the stale first one.
    assert len(server._pending) == 1
    assert server.stats.handshakes_expired == 1


def test_secure_reconnect_after_server_restart(secure_setup):
    """A server that loses all session state (container restart) forces a
    transparent re-handshake; the call still succeeds."""
    ca, rng, _, server, network, cluster = secure_setup
    client = make_retrying_client(secure_setup)
    conn = client.connect("secure")
    assert conn.call("echo", b"before") == b"before"

    # Simulate a crash + supervised restart: fresh server, no sessions.
    server.abort()
    server_shield = make_shield(ca, rng, cluster[0], "server2")
    replacement = SecureRpcServer(network, "secure", cluster[0], server_shield)
    replacement.register("echo", lambda payload, peer: payload)
    replacement.start()

    assert conn.call("echo", b"after") == b"after"
    assert client.stats.reconnects >= 1
    assert conn.peer_subject == "server2"


def test_partition_during_handshake_retries_after_heal(secure_setup):
    """Satellite: a partition between hs1 and hs2 heals while the client
    backs off; connect() restarts the handshake from scratch."""
    _, _, _, server, network, cluster = secure_setup
    client = make_retrying_client(secure_setup, max_attempts=8, base_delay=0.5)

    heal_at = cluster[1].clock.now + 1.0
    partitioned = {"on": False}

    def observer(old, new):
        if new >= heal_at and partitioned["on"]:
            network.heal("secure")
            partitioned["on"] = False

    cluster[1].clock.subscribe(observer)
    network.partition("secure")
    partitioned["on"] = True

    conn = client.connect("secure")
    assert conn.call("echo", b"through") == b"through"
    assert client.stats.retries >= 1
    # The abandoned first hs1 (if any) stays server-side until swept.
    assert server.stats.handshakes_expired == 0


def test_secure_call_retries_through_partition_heal(secure_setup):
    _, _, _, server, network, cluster = secure_setup
    client = make_retrying_client(secure_setup, max_attempts=8, base_delay=0.5)
    conn = client.connect("secure")

    heal_at = cluster[1].clock.now + 1.0
    partitioned = {"on": False}

    def observer(old, new):
        if new >= heal_at and partitioned["on"]:
            network.heal("secure")
            partitioned["on"] = False

    cluster[1].clock.subscribe(observer)
    network.partition("secure")
    partitioned["on"] = True

    # The in-flight session may or may not survive; the retry layer
    # reconnects as needed and the call completes after the heal.
    assert conn.call("echo", b"persist") == b"persist"
    assert client.stats.retries >= 1
