"""Fencing rejections are authoritative: the retry layer never retries
them — a fenced zombie hammering the fleet with its dead epoch would
otherwise burn its whole backoff budget learning the same 'no'."""

import pytest

from repro._sim import DeterministicRng, SimClock
from repro.cluster import Network, make_cluster
from repro.cluster.epoch import EpochService
from repro.cluster.retry import (
    AUTHORITATIVE_ERRORS,
    RetryPolicy,
    RetryingExecutor,
    is_retryable,
)
from repro.cluster.rpc import RpcClient, RpcServer
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.errors import (
    FencedError,
    FencingError,
    LeaseExpiredError,
    RpcTransportError,
)


def test_fencing_errors_are_not_retryable():
    assert not is_retryable(FencedError("fenced"))
    assert not is_retryable(LeaseExpiredError("expired"))
    assert is_retryable(RpcTransportError("lost"))
    assert any(issubclass(FencingError, t) for t in AUTHORITATIVE_ERRORS)


def test_executor_gives_up_immediately_on_fenced_error():
    clock = SimClock()
    policy = RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.0)
    executor = RetryingExecutor(policy, clock, DeterministicRng(3, label="t"))
    attempts = []

    def fenced_operation():
        attempts.append(clock.now)
        raise FencedError("stale epoch 1")

    with pytest.raises(FencedError):
        executor.run("acceptor", fenced_operation)
    # One attempt, zero backoff sleeps: authoritative means *believed*.
    assert len(attempts) == 1
    assert clock.now == 0.0
    assert executor.stats.fenced_calls == 1
    assert executor.stats.retries == 0


def test_fenced_rpc_not_retried_end_to_end(provisioning):
    nodes = make_cluster(2, CM, provisioning, seed=5)
    network = Network(CM)
    epochs = EpochService()
    server = RpcServer(network, "acceptor", nodes[0])
    calls = []

    def handler(payload, peer):
        calls.append(payload)
        return payload

    server.register("write", handler)
    server.add_guard(epochs.make_guard("leader", name="acceptor"))
    server.start()

    lease = epochs.grant("leader", holder="old")
    client = RpcClient(
        network, "old-leader", nodes[1],
        retry=RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0),
    )
    client.fence = lease
    assert client.call("acceptor", "write", b"w1") == b"w1"

    epochs.bump("leader")  # control plane fences the role
    with pytest.raises(FencedError):
        client.call("acceptor", "write", b"w2")
    # The stale write was attempted once and never executed or retried.
    assert calls == [b"w1"]
    assert client.stats.fenced_calls == 1
    assert client.stats.retries == 0
    assert epochs.stats.fenced_rejections == 1
