"""Epoch fencing: leases, guards, and the bump-before-promote contract."""

import pytest

from repro.cluster.epoch import EpochGuard, EpochLease, EpochService, FenceToken
from repro.errors import FencedError, FencingError, LeaseExpiredError


# -- service ---------------------------------------------------------------


def test_epochs_start_at_zero_and_bump_monotonically():
    svc = EpochService()
    assert svc.current("cas-primary") == 0
    assert svc.bump("cas-primary") == 1
    assert svc.bump("cas-primary") == 2
    assert svc.current("cas-primary") == 2
    # Roles are independent counters.
    assert svc.current("router") == 0


def test_grant_bumps_and_issues_lease_for_new_epoch():
    svc = EpochService()
    lease = svc.grant("ps", holder="ps-0")
    assert lease.epoch == 1
    assert lease.role == "ps"
    assert svc.holder("ps") is lease
    assert not lease.stale
    # Granting again supersedes the first lease immediately.
    lease2 = svc.grant("ps", holder="ps-1")
    assert lease2.epoch == 2
    assert lease.stale
    assert svc.holder("ps") is lease2


def test_grant_and_bump_update_stats_and_events():
    svc = EpochService()
    svc.grant("r", holder="a")
    svc.bump("r")
    assert svc.stats.grants == 1
    assert svc.stats.bumps == 2  # grant() bumps too
    assert svc.events == [
        "bump r -> 1",
        "grant r epoch=1 holder=a",
        "bump r -> 2",
    ]
    assert svc.trace_bytes() == b"bump r -> 1\ngrant r epoch=1 holder=a\nbump r -> 2"


def test_backing_hook_sees_every_bump():
    persisted = []
    svc = EpochService(backing=lambda role, epoch: persisted.append((role, epoch)))
    svc.grant("cas-primary")
    svc.bump("cas-primary")
    assert persisted == [("cas-primary", 1), ("cas-primary", 2)]


# -- lease -----------------------------------------------------------------


def test_lease_stamp_never_consults_authority():
    svc = EpochService()
    lease = svc.grant("router", holder="router-a")
    svc.bump("router")  # supersede it
    # A zombie keeps stamping its cached (dead) epoch — by design.
    assert lease.stamp() == {"role": "router", "epoch": 1}
    assert lease.token() == FenceToken("router", 1)


def test_lease_check_raises_when_superseded():
    svc = EpochService()
    lease = svc.grant("cas-primary", holder="cas")
    lease.check()  # current: fine
    svc.bump("cas-primary")
    with pytest.raises(LeaseExpiredError):
        lease.check()
    assert svc.stats.lease_expiries == 1


def test_lease_expired_is_a_fencing_error():
    # Typed so RetryPolicy treats expiry as authoritative, like FencedError.
    assert issubclass(LeaseExpiredError, FencingError)
    assert issubclass(FencedError, FencingError)


# -- guard -----------------------------------------------------------------


def test_guard_rejects_stale_epoch_and_accepts_current():
    svc = EpochService()
    guard = svc.make_guard("ps", name="store")
    svc.grant("ps")  # fence round advances the registered guard to 1
    with pytest.raises(FencedError):
        guard.check(0)
    guard.check(1)  # current epoch passes
    guard.check(2)  # higher epochs teach the guard
    assert guard.highest_seen == 2
    with pytest.raises(FencedError):
        guard.check(1)
    assert svc.stats.fenced_rejections == 2


def test_guard_unstamped_requests_pass_unless_required():
    relaxed = EpochGuard("r")
    relaxed.advance(3)
    relaxed.check(None)  # unstamped tolerated by default
    strict = EpochGuard("r", name="standby", require=True)
    with pytest.raises(FencedError):
        strict.check(None)


def test_registering_a_guard_syncs_it_to_the_current_epoch():
    svc = EpochService()
    svc.grant("r")
    svc.grant("r")
    guard = svc.make_guard("r")
    assert guard.highest_seen == 2
    with pytest.raises(FencedError):
        guard.check(1)


def test_bump_fences_all_registered_guards_before_returning():
    # The bump-before-promote ordering: after bump() returns, every
    # acceptor already rejects the old epoch — there is no window in
    # which the replacement is live while a zombie can still commit.
    svc = EpochService()
    old = svc.grant("cas-primary", holder="old")
    guards = [svc.make_guard("cas-primary", name=f"g{i}") for i in range(3)]
    for g in guards:
        g.check(old.epoch)  # old leader accepted everywhere
    svc.bump("cas-primary")
    for g in guards:
        with pytest.raises(FencedError):
            g.check(old.epoch)
