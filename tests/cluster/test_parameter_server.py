"""Parameter server + synchronous trainer semantics."""

import numpy as np
import pytest

from repro.cluster import Network, ParameterServer, SyncTrainer, TrainingWorker, make_cluster
from repro.cluster.container import Container
from repro.crypto import encoding
from repro.data import synthetic_mnist
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import ClusterError
from repro.runtime.scone import RuntimeConfig
from repro.tensor.arrays import encode_array_dict
from repro.tensor.engine import FULL_TF_PROFILE


@pytest.fixture
def cluster(provisioning):
    return make_cluster(3, CM, provisioning, seed=6)


@pytest.fixture
def network():
    return Network(CM)


def make_worker(node, name, threads=2):
    config = RuntimeConfig(
        name=name,
        mode=SgxMode.SIM,
        binary_size=FULL_TF_PROFILE.binary_size,
        fs_shield_enabled=False,
    )
    runtime = Container(name, node, config).start()
    return TrainingWorker(name, node, runtime, seed=9, threads=threads)


def test_pull_push_updates_weights(cluster, network):
    worker = make_worker(cluster[0], "w0")
    ps = ParameterServer(cluster[2], "ps", network, learning_rate=0.1)
    ps.initialize(worker.initial_weights())
    v0 = ps.version

    train, _ = synthetic_mnist(n_train=100, n_test=10, seed=0)
    batches = list(train.batches(50))
    trainer = SyncTrainer(network, ps, [worker])
    result = trainer.train(batches, steps=2)
    assert result.steps == 2
    assert ps.version == v0 + 2
    assert ps.updates_applied == 2
    assert result.wall_clock > 0


def test_training_reduces_loss(cluster, network):
    worker = make_worker(cluster[0], "w0")
    ps = ParameterServer(cluster[2], "ps", network, learning_rate=0.1)
    ps.initialize(worker.initial_weights())
    train, _ = synthetic_mnist(n_train=800, n_test=10, seed=0)
    batches = list(train.batches(100))
    trainer = SyncTrainer(network, ps, [worker])
    images, labels = batches[0]
    worker.load_weights(ps.weights)
    before = worker.evaluate_loss(images, labels)
    trainer.train(batches)
    worker.load_weights(ps.weights)
    after = worker.evaluate_loss(images, labels)
    assert after < before


def test_two_workers_split_batches(cluster, network):
    workers = [make_worker(cluster[i], f"w{i}") for i in range(2)]
    ps = ParameterServer(cluster[2], "ps", network, learning_rate=0.05)
    ps.initialize(workers[0].initial_weights())
    train, _ = synthetic_mnist(n_train=400, n_test=10, seed=0)
    batches = list(train.batches(100))
    trainer = SyncTrainer(network, ps, workers)
    result = trainer.train(batches)
    assert result.steps == 4
    assert ps.updates_applied == 4


def test_gradient_shape_mismatch_rejected(cluster, network):
    worker = make_worker(cluster[0], "w0")
    ps = ParameterServer(cluster[2], "ps", network, learning_rate=0.1)
    ps.initialize(worker.initial_weights())
    bad = {name: np.zeros((1, 1), np.float32) for name in ps.weights}
    payload = encoding.encode(
        {"gradients": encode_array_dict(bad), "declared_flops": 0}
    )
    from repro.cluster.rpc import RpcClient

    client = RpcClient(network, "direct", cluster[0])
    # Remote ClusterErrors keep their type across the RPC boundary.
    with pytest.raises(ClusterError):
        client.call("ps", "push", payload)


def test_unknown_gradient_name_rejected(cluster, network):
    worker = make_worker(cluster[0], "w0")
    ps = ParameterServer(cluster[2], "ps", network, learning_rate=0.1)
    ps.initialize(worker.initial_weights())
    payload = encoding.encode(
        {
            "gradients": encode_array_dict(
                {"nonexistent": np.zeros(3, np.float32)}
            ),
            "declared_flops": 0,
        }
    )
    from repro.cluster.rpc import RpcClient

    client = RpcClient(network, "direct", cluster[0])
    # Remote ClusterErrors keep their type across the RPC boundary.
    with pytest.raises(ClusterError):
        client.call("ps", "push", payload)


def test_pull_before_initialize_fails(cluster, network):
    ParameterServer(cluster[2], "ps", network, learning_rate=0.1)
    from repro.cluster.rpc import RpcClient

    client = RpcClient(network, "direct", cluster[0])
    with pytest.raises(ClusterError):
        client.call("ps", "pull", b"")


def test_invalid_learning_rate(cluster, network):
    with pytest.raises(ClusterError):
        ParameterServer(cluster[2], "ps", network, learning_rate=0.0)


def test_trainer_requires_workers(cluster, network):
    ps = ParameterServer(cluster[2], "ps", network, learning_rate=0.1)
    with pytest.raises(ClusterError):
        SyncTrainer(network, ps, [])
