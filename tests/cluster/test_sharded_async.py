"""Sharded parameter service and asynchronous training."""

import numpy as np
import pytest

from repro.cluster import (
    AsyncTrainer,
    Network,
    ParameterServer,
    ShardedParameterService,
    SyncTrainer,
    TrainingWorker,
    make_cluster,
)
from repro.cluster.container import Container
from repro.data import synthetic_mnist
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import ClusterError
from repro.runtime.scone import RuntimeConfig
from repro.tensor.engine import FULL_TF_PROFILE


@pytest.fixture
def cluster(provisioning):
    return make_cluster(3, CM, provisioning, seed=40)


@pytest.fixture
def network():
    return Network(CM)


def make_worker(node, name):
    config = RuntimeConfig(
        name=name, mode=SgxMode.SIM,
        binary_size=FULL_TF_PROFILE.binary_size, fs_shield_enabled=False,
    )
    runtime = Container(name, node, config).start()
    return TrainingWorker(name, node, runtime, seed=40, threads=2)


def test_sharded_service_partitions_all_weights(cluster, network):
    worker = make_worker(cluster[0], "w0")
    shards = [
        ParameterServer(cluster[i], f"ps-{i}", network, learning_rate=0.1)
        for i in (1, 2)
    ]
    service = ShardedParameterService(shards)
    weights = worker.initial_weights()
    service.initialize(weights)

    # Every weight round-trips intact through the piece-keyed partition.
    merged = service.weights
    assert set(merged) == set(weights)
    for name, value in weights.items():
        np.testing.assert_array_equal(merged[name], value)
    # The shard map byte-balances: with the dominant fc1 kernel
    # row-split, neither shard holds more than ~60% of the bytes.
    loads = service.shard_map.shard_nbytes()
    assert sum(loads) == sum(v.nbytes for v in weights.values())
    assert max(loads) <= 0.6 * sum(loads)


def test_sharded_gradient_partitioning(cluster, network):
    worker = make_worker(cluster[0], "w0")
    shards = [
        ParameterServer(cluster[i], f"ps-{i}", network, learning_rate=0.1)
        for i in (1, 2)
    ]
    service = ShardedParameterService(shards)
    weights = worker.initial_weights()
    service.initialize(weights)
    gradients = {name: np.zeros_like(value) for name, value in weights.items()}
    grouped = service.partition_gradients(gradients)
    assert set(grouped) == {"ps-1", "ps-2"}
    # Every variable is covered, possibly as row-slice pieces
    # ("var#start:stop"); merging the groups reconstructs the model.
    parts = {}
    for group in grouped.values():
        parts.update(group)
    remerged = service.shard_map.merge(parts)
    assert set(remerged) == set(weights)
    for name, value in weights.items():
        assert remerged[name].shape == value.shape
    with pytest.raises(ClusterError):
        service.shard_of("nonexistent")


def test_sharded_service_requires_shards():
    with pytest.raises(ClusterError):
        ShardedParameterService([])


def test_async_training_converges(cluster, network):
    workers = [make_worker(cluster[i], f"w{i}") for i in range(2)]
    ps = ParameterServer(cluster[2], "ps", network, learning_rate=0.1)
    ps.initialize(workers[0].initial_weights())
    train, _ = synthetic_mnist(n_train=800, n_test=10, seed=41)
    batches = list(train.batches(100))

    images, labels = batches[0]
    workers[0].load_weights(ps.weights)
    before = workers[0].evaluate_loss(images, labels)
    trainer = AsyncTrainer(network, ps, workers)
    result = trainer.train(batches)
    workers[0].load_weights(ps.weights)
    after = workers[0].evaluate_loss(images, labels)
    assert result.steps == len(batches)
    assert ps.updates_applied == len(batches)
    assert after < before


def test_async_no_slower_than_sync_wall_clock(cluster, network):
    """Without stragglers async ≈ sync; it must never be slower (no
    barriers to wait on)."""
    train, _ = synthetic_mnist(n_train=600, n_test=10, seed=42)
    batches = list(train.batches(100))

    def run(trainer_cls, seed_offset):
        nodes = make_cluster(3, CM, ProvisioningAuthorityLocal(), seed=43 + seed_offset)
        net = Network(CM)
        workers = [make_worker(nodes[i], f"w{i}") for i in range(2)]
        ps = ParameterServer(nodes[2], "ps", net, learning_rate=0.05)
        ps.initialize(workers[0].initial_weights())
        return trainer_cls(net, ps, workers).train(batches).wall_clock

    from repro._sim import DeterministicRng
    from repro.enclave.attestation import ProvisioningAuthority

    def ProvisioningAuthorityLocal():
        return ProvisioningAuthority(DeterministicRng(99))

    sync_time = run(SyncTrainer, 0)
    async_time = run(AsyncTrainer, 1)
    assert async_time <= sync_time * 1.05
