"""Nodes, containers, and elastic orchestration."""

import pytest

from repro.cluster import Container, ContainerSpec, Orchestrator, make_cluster
from repro.cluster.container import ContainerState
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import ClusterError
from repro.runtime.scone import RuntimeConfig


@pytest.fixture
def cluster(provisioning):
    return make_cluster(3, CM, provisioning, seed=2)


def config_factory(node, index):
    return RuntimeConfig(
        name="svc", mode=SgxMode.HW, fs_shield_enabled=False
    )


def test_cluster_nodes_are_independent(cluster):
    assert len(cluster) == 3
    cluster[0].clock.advance(1.0)
    assert cluster[1].clock.now == 0.0
    assert cluster[0].cpu is not cluster[1].cpu


def test_container_lifecycle_and_costs(cluster):
    node = cluster[0]
    container = Container("c0", node, config_factory(node, 0))
    assert container.state is ContainerState.CREATED
    before = node.clock.now
    runtime = container.start()
    assert node.clock.now - before >= CM.container_start_cost
    assert container.running
    assert runtime.enclave is not None
    container.stop()
    assert container.state is ContainerState.STOPPED
    assert runtime.enclave is None


def test_container_double_start_and_stop_rejected(cluster):
    container = Container("c0", cluster[0], config_factory(cluster[0], 0))
    container.start()
    with pytest.raises(ClusterError):
        container.start()
    container.stop()
    with pytest.raises(ClusterError):
        container.stop()


def test_container_fail(cluster):
    container = Container("c0", cluster[0], config_factory(cluster[0], 0))
    container.start()
    container.fail()
    assert container.state is ContainerState.FAILED
    assert not container.running


def test_orchestrator_round_robin_placement(cluster):
    orch = Orchestrator(cluster)
    spec = ContainerSpec("svc", config_factory)
    containers = [orch.launch(spec) for _ in range(4)]
    nodes = [c.node.node_id for c in containers]
    assert nodes == ["node-0", "node-1", "node-2", "node-0"]


def test_elastic_scale_up_and_down(cluster):
    orch = Orchestrator(cluster)
    spec = ContainerSpec("svc", config_factory)
    orch.scale_to(spec, 3)
    assert len(orch.replicas("svc")) == 3
    orch.scale_to(spec, 1)
    assert len(orch.replicas("svc")) == 1
    orch.scale_to(spec, 0)
    assert orch.replicas("svc") == []
    with pytest.raises(ClusterError):
        orch.scale_to(spec, -1)


def test_on_start_hooks_run_for_every_launch(cluster):
    orch = Orchestrator(cluster)
    attested = []
    orch.on_start.append(lambda c: attested.append(c.name))
    spec = ContainerSpec("svc", config_factory)
    orch.scale_to(spec, 2)
    assert len(attested) == 2


def test_recover_replaces_failed_replicas(cluster):
    orch = Orchestrator(cluster)
    spec = ContainerSpec("svc", config_factory)
    containers = orch.scale_to(spec, 2)
    victim = containers[0]
    orch.fail_container(victim)
    assert len(orch.replicas("svc")) == 1
    replaced = orch.recover(spec)
    assert len(replaced) == 1
    assert replaced[0].node is victim.node  # restarted in place
    assert len(orch.replicas("svc")) == 2


def test_stop_all(cluster):
    orch = Orchestrator(cluster)
    orch.scale_to(ContainerSpec("svc", config_factory), 3)
    orch.stop_all()
    assert orch.replicas("svc") == []


def test_orchestrator_needs_nodes():
    with pytest.raises(ClusterError):
        Orchestrator([])
