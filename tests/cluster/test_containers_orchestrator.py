"""Nodes, containers, and elastic orchestration."""

import pytest

from repro.cluster import Container, ContainerSpec, Orchestrator, make_cluster
from repro.cluster.container import ContainerState
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import ClusterError
from repro.runtime.scone import RuntimeConfig


@pytest.fixture
def cluster(provisioning):
    return make_cluster(3, CM, provisioning, seed=2)


def config_factory(node, index):
    return RuntimeConfig(
        name="svc", mode=SgxMode.HW, fs_shield_enabled=False
    )


def test_cluster_nodes_are_independent(cluster):
    assert len(cluster) == 3
    cluster[0].clock.advance(1.0)
    assert cluster[1].clock.now == 0.0
    assert cluster[0].cpu is not cluster[1].cpu


def test_container_lifecycle_and_costs(cluster):
    node = cluster[0]
    container = Container("c0", node, config_factory(node, 0))
    assert container.state is ContainerState.CREATED
    before = node.clock.now
    runtime = container.start()
    assert node.clock.now - before >= CM.container_start_cost
    assert container.running
    assert runtime.enclave is not None
    container.stop()
    assert container.state is ContainerState.STOPPED
    assert runtime.enclave is None


def test_container_double_start_and_stop_rejected(cluster):
    container = Container("c0", cluster[0], config_factory(cluster[0], 0))
    container.start()
    with pytest.raises(ClusterError):
        container.start()
    container.stop()
    with pytest.raises(ClusterError):
        container.stop()


def test_container_fail(cluster):
    container = Container("c0", cluster[0], config_factory(cluster[0], 0))
    container.start()
    container.fail()
    assert container.state is ContainerState.FAILED
    assert not container.running


def test_orchestrator_round_robin_placement(cluster):
    orch = Orchestrator(cluster)
    spec = ContainerSpec("svc", config_factory)
    containers = [orch.launch(spec) for _ in range(4)]
    nodes = [c.node.node_id for c in containers]
    assert nodes == ["node-0", "node-1", "node-2", "node-0"]


def test_elastic_scale_up_and_down(cluster):
    orch = Orchestrator(cluster)
    spec = ContainerSpec("svc", config_factory)
    orch.scale_to(spec, 3)
    assert len(orch.replicas("svc")) == 3
    orch.scale_to(spec, 1)
    assert len(orch.replicas("svc")) == 1
    orch.scale_to(spec, 0)
    assert orch.replicas("svc") == []
    with pytest.raises(ClusterError):
        orch.scale_to(spec, -1)


def test_on_start_hooks_run_for_every_launch(cluster):
    orch = Orchestrator(cluster)
    attested = []
    orch.on_start.append(lambda c: attested.append(c.name))
    spec = ContainerSpec("svc", config_factory)
    orch.scale_to(spec, 2)
    assert len(attested) == 2


def test_recover_replaces_failed_replicas(cluster):
    orch = Orchestrator(cluster)
    spec = ContainerSpec("svc", config_factory)
    containers = orch.scale_to(spec, 2)
    victim = containers[0]
    orch.fail_container(victim)
    assert len(orch.replicas("svc")) == 1
    replaced = orch.recover(spec)
    assert len(replaced) == 1
    assert replaced[0].node is victim.node  # restarted in place
    assert len(orch.replicas("svc")) == 2


def test_stop_all(cluster):
    orch = Orchestrator(cluster)
    orch.scale_to(ContainerSpec("svc", config_factory), 3)
    orch.stop_all()
    assert orch.replicas("svc") == []


def test_orchestrator_needs_nodes():
    with pytest.raises(ClusterError):
        Orchestrator([])


# --- supervised recovery --------------------------------------------------------


def test_replacement_names_are_monotonic(cluster):
    """Satellite: a replacement never reuses a crashed replica's name —
    names are identities in the network and the CAS session registry."""
    orch = Orchestrator(cluster)
    spec = ContainerSpec("svc", config_factory)
    first, second = orch.scale_to(spec, 2)
    assert (first.name, second.name) == ("svc-0", "svc-1")
    orch.fail_container(first)
    (replacement,) = orch.recover(spec)
    assert replacement.name == "svc-2"
    # Even after recovery, a further scale-up keeps counting upward.
    orch.scale_to(spec, 3)
    names = sorted(c.name for c in orch.replicas("svc"))
    assert names == ["svc-1", "svc-2", "svc-3"]


def test_supervise_restarts_within_budget_then_quarantines(cluster):
    orch = Orchestrator(cluster, restart_budget=2)
    spec = ContainerSpec("svc", config_factory)
    container = orch.launch(spec)
    for round_no in range(2):
        orch.fail_container(orch.replicas("svc")[0])
        outcome = orch.supervise(spec)
        (replacement,) = outcome.values()
        assert replacement is not None and replacement.running
    # Third crash in the same lineage: budget exhausted -> quarantine.
    orch.fail_container(orch.replicas("svc")[0])
    outcome = orch.supervise(spec)
    assert list(outcome.values()) == [None]
    assert orch.replicas("svc") == []
    assert len(orch.quarantined("svc")) == 1
    assert orch.restarts_total == 2
    assert orch.quarantined_total == 1
    assert any(e.startswith("restart svc-0") for e in orch.events)
    assert any(e.startswith("quarantine svc-2") for e in orch.events)


def test_restart_reruns_attestation_hooks(cluster):
    """A replacement enclave has fresh memory: it must re-attest and be
    re-provisioned exactly like the original."""
    orch = Orchestrator(cluster)
    attested = []
    orch.on_start.append(lambda c: attested.append(c.name))
    spec = ContainerSpec("svc", config_factory)
    container = orch.launch(spec)
    assert attested == ["svc-0"]
    orch.fail_container(container)
    replacement = orch.restart(spec, container)
    assert attested == ["svc-0", replacement.name]


def test_restart_rejects_healthy_container(cluster):
    orch = Orchestrator(cluster)
    spec = ContainerSpec("svc", config_factory)
    container = orch.launch(spec)
    with pytest.raises(ClusterError):
        orch.restart(spec, container)


def test_health_and_probe(cluster):
    orch = Orchestrator(cluster)
    spec = ContainerSpec("svc", config_factory)
    a, b = orch.scale_to(spec, 2)
    assert orch.probe("svc")
    assert orch.health("svc") == {
        "svc-0": ContainerState.RUNNING,
        "svc-1": ContainerState.RUNNING,
    }
    orch.fail_container(a)
    assert not orch.probe("svc")
    assert orch.health("svc")["svc-0"] is ContainerState.FAILED


def test_budget_is_per_lineage_not_global(cluster):
    orch = Orchestrator(cluster, restart_budget=1)
    spec = ContainerSpec("svc", config_factory)
    a, b = orch.scale_to(spec, 2)
    orch.fail_container(a)
    orch.fail_container(b)
    outcome = orch.supervise(spec)
    # Each lineage has its own budget of 1: both replaced.
    assert all(c is not None for c in outcome.values())
    assert len(orch.replicas("svc")) == 2
