"""Asymmetric (one-way) transient partitions."""

import pytest

from repro.cluster import Network, make_cluster
from repro.cluster.faults import FaultPlan, TransientPartition
from repro.cluster.rpc import RpcClient, RpcServer
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.errors import RpcError


@pytest.fixture
def cluster(provisioning):
    return make_cluster(2, CM, provisioning, seed=13)


# -- leg semantics ---------------------------------------------------------


def test_both_direction_severs_every_leg_touching_the_address():
    p = TransientPartition("a", 0.0, 10.0, direction="both")
    assert p.drops("a", "b", 5.0)
    assert p.drops("b", "a", 5.0)
    assert not p.drops("b", "c", 5.0)


def test_inbound_partition_is_deaf_but_not_mute():
    p = TransientPartition("a", 0.0, 10.0, direction="inbound")
    assert p.drops("b", "a", 5.0)      # messages TO a die
    assert not p.drops("a", "b", 5.0)  # a's own sends still flow


def test_outbound_partition_is_mute_but_not_deaf():
    p = TransientPartition("a", 0.0, 10.0, direction="outbound")
    assert p.drops("a", "b", 5.0)      # messages FROM a die
    assert not p.drops("b", "a", 5.0)  # a still hears the world


def test_partition_window_is_half_open_and_heals_by_time():
    p = TransientPartition("a", 1.0, 2.0, direction="inbound")
    assert not p.drops("b", "a", 0.999)
    assert p.drops("b", "a", 1.0)
    assert not p.drops("b", "a", 2.0)  # end is exclusive: healed


def test_unknown_direction_rejected():
    with pytest.raises(ValueError):
        TransientPartition("a", 0.0, 1.0, direction="sideways")


# -- through the network ---------------------------------------------------


def _echo(network, node, address):
    server = RpcServer(network, address, node)
    server.register("echo", lambda payload, peer: payload)
    server.start()
    return server


def test_inbound_partition_drops_request_leg(cluster):
    network = Network(CM)
    _echo(network, cluster[0], "srv")
    plan = FaultPlan(
        1, partitions=[TransientPartition("srv", 0.0, 5.0, direction="inbound")]
    )
    network.faults.append(plan.inject)
    client = RpcClient(network, "cli", cluster[1])
    # The request leg (cli → srv) dies: the server never runs.
    with pytest.raises(RpcError):
        client.call("srv", "echo", b"x")
    # Heal by time: advance past the window and the call succeeds.
    for node in cluster:
        node.clock.advance_to(6.0)
    assert client.call("srv", "echo", b"x") == b"x"


def test_outbound_partition_executes_but_loses_the_reply(cluster):
    network = Network(CM)
    served = []
    server = RpcServer(network, "srv", cluster[0])

    def handler(payload, peer):
        served.append(payload)
        return payload

    server.register("echo", handler)
    server.start()
    plan = FaultPlan(
        1, partitions=[TransientPartition("srv", 0.0, 5.0, direction="outbound")]
    )
    network.faults.append(plan.inject)
    client = RpcClient(network, "cli", cluster[1])
    # The nasty half: the server EXECUTES (request got through) but its
    # reply vanishes — the caller sees failure for work that happened.
    with pytest.raises(RpcError):
        client.call("srv", "echo", b"x")
    assert served == [b"x"]
