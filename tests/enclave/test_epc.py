"""EPC page cache: capacity invariants, fault accounting, policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro._sim import SimClock
from repro.enclave.cost_model import DEFAULT_COST_MODEL
from repro.enclave.epc import EpcCache
from repro.errors import ConfigurationError, EnclaveError

GRANULE = 64 * 1024


def make_cache(capacity_granules=8, policy="lru", clock=None):
    return EpcCache(
        DEFAULT_COST_MODEL,
        clock or SimClock(),
        capacity_bytes=capacity_granules * GRANULE,
        policy=policy,
    )


def test_cold_access_faults_then_hits():
    cache = make_cache()
    assert cache.access(1, 0) is True
    assert cache.access(1, 0) is False
    assert cache.stats.faults == 1
    assert cache.stats.hits == 1
    assert cache.stats.cold_loads == 1


def test_fault_charges_clock():
    clock = SimClock()
    cache = make_cache(clock=clock)
    cache.access(1, 0)
    pages = GRANULE // DEFAULT_COST_MODEL.page_size
    assert clock.now == pytest.approx(
        pages * DEFAULT_COST_MODEL.epc_page_fault_cost
    )
    before = clock.now
    cache.access(1, 0)  # hit: free
    assert clock.now == before


def test_lru_eviction_order():
    cache = make_cache(capacity_granules=2, policy="lru")
    cache.access(1, 0)
    cache.access(1, 1)
    cache.access(1, 0)  # refresh granule 0
    cache.access(1, 2)  # evicts granule 1 (LRU)
    assert cache.access(1, 0) is False
    assert cache.access(1, 1) is True


def test_capacity_never_exceeded_lru():
    cache = make_cache(capacity_granules=4, policy="lru")
    for i in range(100):
        cache.access(1, i % 13)
        assert cache.resident_granules <= 4


def test_capacity_never_exceeded_random():
    cache = make_cache(capacity_granules=4, policy="random")
    for i in range(200):
        cache.access(i % 3, i % 17)
        assert cache.resident_granules <= 4


def test_lru_cyclic_overflow_thrashes():
    """Classic LRU pathology: cyclic scan one past capacity misses 100%."""
    cache = make_cache(capacity_granules=4, policy="lru")
    for _ in range(5):
        for granule in range(5):
            cache.access(1, granule)
    assert cache.stats.hits == 0


def test_random_cyclic_overflow_degrades_gracefully():
    cache = make_cache(capacity_granules=40, policy="random")
    for _ in range(20):
        for granule in range(44):  # 10% overflow
            cache.access(1, granule)
    assert 0.5 < cache.stats.hits / cache.stats.accesses < 0.99


def test_access_range_counts_faults():
    cache = make_cache(capacity_granules=8)
    faults = cache.access_range(1, 0, 3 * GRANULE)
    assert faults == 3
    assert cache.access_range(1, 0, 3 * GRANULE) == 0
    # Range straddling a granule boundary touches both granules.
    assert cache.access_range(1, 3 * GRANULE - 1, 2) == 1


def test_access_range_validation():
    cache = make_cache()
    with pytest.raises(EnclaveError):
        cache.access_range(1, 0, -1)
    assert cache.access_range(1, 0, 0) == 0


def test_multiple_enclaves_share_capacity():
    cache = make_cache(capacity_granules=4)
    cache.access_range(1, 0, 3 * GRANULE)
    cache.access_range(2, 0, 3 * GRANULE)
    assert cache.resident_granules == 4
    assert cache.resident_granules_of(1) + cache.resident_granules_of(2) == 4


def test_evict_enclave_frees_only_its_granules():
    cache = make_cache(capacity_granules=8)
    cache.access_range(1, 0, 2 * GRANULE)
    cache.access_range(2, 0, 3 * GRANULE)
    freed = cache.evict_enclave(1)
    assert freed == 2
    assert cache.resident_granules_of(1) == 0
    assert cache.resident_granules_of(2) == 3


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        make_cache(policy="fifo")
    with pytest.raises(EnclaveError):
        EpcCache(DEFAULT_COST_MODEL, SimClock(), capacity_bytes=0)
    with pytest.raises(EnclaveError):
        EpcCache(DEFAULT_COST_MODEL, SimClock(), granule_size=4096 + 1)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(1, 3), st.integers(0, 30)), min_size=1, max_size=200
    ),
    st.sampled_from(["lru", "random"]),
)
def test_accounting_invariants_property(accesses, policy):
    cache = make_cache(capacity_granules=6, policy=policy)
    for enclave_id, granule in accesses:
        cache.access(enclave_id, granule)
    stats = cache.stats
    assert stats.hits + stats.faults == len(accesses)
    assert stats.faults - stats.evictions == cache.resident_granules
    assert sum(stats.per_enclave_resident.values()) == cache.resident_granules
    assert cache.resident_granules <= cache.capacity_granules
    assert stats.fault_time == pytest.approx(
        stats.fault_pages * DEFAULT_COST_MODEL.epc_page_fault_cost
    )
