"""Attestation: quotes, verification, the provisioning chain, IAS."""

import dataclasses

import pytest

from repro._sim import DeterministicRng, SimClock
from repro.enclave.attestation import (
    AttestationVerifier,
    ProvisioningAuthority,
    Quote,
    Report,
)
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.ias import IntelAttestationService
from repro.enclave.sgx import EnclaveImage, Segment, SgxMode
from repro.errors import AttestationError


@pytest.fixture
def enclave(cpu):
    image = EnclaveImage(
        "service", [Segment.from_content("binary", b"\x90" * 500, "code")]
    )
    return cpu.create_enclave(image, SgxMode.HW)


def test_valid_quote_verifies(enclave, provisioning):
    quote = enclave.get_quote(b"binding-data")
    report = AttestationVerifier(provisioning.public_key()).verify(quote)
    assert report.measurement == enclave.measurement
    assert report.report_data == b"binding-data"


def test_quote_serialization_roundtrip(enclave, provisioning):
    quote = enclave.get_quote(b"x")
    restored = Quote.from_bytes(quote.to_bytes())
    AttestationVerifier(provisioning.public_key()).verify(restored)


def test_tampered_report_rejected(enclave, provisioning):
    quote = enclave.get_quote()
    forged = dataclasses.replace(
        quote, report=dataclasses.replace(quote.report, report_data=b"evil")
    )
    with pytest.raises(AttestationError):
        AttestationVerifier(provisioning.public_key()).verify(forged)


def test_forged_measurement_rejected(enclave, provisioning):
    quote = enclave.get_quote()
    forged = dataclasses.replace(
        quote,
        report=dataclasses.replace(quote.report, measurement=b"\x00" * 32),
    )
    with pytest.raises(AttestationError):
        AttestationVerifier(provisioning.public_key()).verify(forged)


def test_wrong_provisioning_root_rejected(enclave, rng):
    quote = enclave.get_quote()
    rogue = ProvisioningAuthority(rng.child("rogue"))
    with pytest.raises(AttestationError):
        AttestationVerifier(rogue.public_key()).verify(quote)


def test_cpu_id_mismatch_rejected(enclave, provisioning):
    quote = enclave.get_quote()
    forged = dataclasses.replace(quote, cpu_id="cpu-spoofed")
    with pytest.raises(AttestationError):
        AttestationVerifier(provisioning.public_key()).verify(forged)


def test_debug_quote_rejected_by_default(cpu, provisioning):
    image = EnclaveImage("sim-app", [Segment.from_content("b", b"x", "code")])
    sim_enclave = cpu.create_enclave(image, SgxMode.SIM)
    quote = sim_enclave.get_quote()
    verifier = AttestationVerifier(provisioning.public_key())
    with pytest.raises(AttestationError):
        verifier.verify(quote)
    verifier.verify(quote, accept_debug=True)  # explicit opt-in works


def test_report_roundtrip():
    report = Report(b"\x01" * 32, {"name": "a"}, b"rd", debug=True)
    assert Report.from_bytes(report.to_bytes()) == report


def test_ias_latency_matches_paper(enclave, provisioning, clock):
    ias = IntelAttestationService(provisioning.public_key(), CM, clock)
    quote = enclave.get_quote()
    before = clock.now
    ias.verify_quote(quote)
    elapsed = clock.now - before
    # Paper Fig. 4: IAS verification ~280 ms (WAN-bound).
    assert 0.25 < elapsed < 0.35
    assert ias.stats.requests == 1


def test_ias_rejects_and_counts(enclave, provisioning, clock, rng):
    rogue = ProvisioningAuthority(rng.child("rogue"))
    ias = IntelAttestationService(rogue.public_key(), CM, clock)
    with pytest.raises(AttestationError):
        ias.verify_quote(enclave.get_quote())
    assert ias.stats.rejected == 1


def test_cas_verification_is_orders_of_magnitude_faster():
    # The architectural claim behind Fig. 4: same verification logic,
    # local (sub-ms) vs WAN-bound (hundreds of ms).
    assert CM.quote_verification_cost * 100 < 2 * CM.wan_rtt
