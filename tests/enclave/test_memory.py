"""Enclave memory manager: regions, touch accounting, EPC wiring."""

import pytest

from repro._sim import SimClock
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.epc import EpcCache
from repro.enclave.memory import EnclaveMemory
from repro.errors import EnclaveError


def make_memory(encrypted=False, capacity_bytes=None, clock=None):
    clock = clock or SimClock()
    epc = (
        EpcCache(CM, clock, capacity_bytes=capacity_bytes) if encrypted else None
    )
    return EnclaveMemory(1, CM, clock, epc=epc), clock


def test_alloc_and_region_lookup():
    memory, _ = make_memory()
    region = memory.alloc("weights", 1000, kind="data")
    assert region.size == 1000
    assert memory.region("weights") == region
    assert memory.footprint == 1000


def test_alloc_duplicate_and_invalid():
    memory, _ = make_memory()
    memory.alloc("a", 10)
    with pytest.raises(EnclaveError):
        memory.alloc("a", 10)
    with pytest.raises(EnclaveError):
        memory.alloc("b", 0)


def test_free_and_missing_region():
    memory, _ = make_memory()
    memory.alloc("a", 10)
    memory.free("a")
    with pytest.raises(EnclaveError):
        memory.free("a")
    with pytest.raises(EnclaveError):
        memory.touch("a")


def test_regions_do_not_overlap():
    memory, _ = make_memory()
    a = memory.alloc("a", 100_000)
    b = memory.alloc("b", 100_000)
    assert b.base >= a.base + a.size


def test_touch_charges_native_bandwidth():
    memory, clock = make_memory(encrypted=False)
    memory.alloc("data", 1_000_000)
    memory.touch("data")
    assert clock.now == pytest.approx(1_000_000 / CM.native_memory_bandwidth)
    assert memory.bytes_touched == 1_000_000


def test_touch_charges_mee_bandwidth_when_encrypted():
    memory, clock = make_memory(encrypted=True)
    memory.alloc("data", 1_000_000)
    faults = memory.touch("data")
    assert faults > 0
    bandwidth_part = 1_000_000 / CM.enclave_memory_bandwidth
    assert clock.now > bandwidth_part  # bandwidth + fault time


def test_touch_without_bandwidth_charges_only_faults():
    memory, clock = make_memory(encrypted=True)
    memory.alloc("code", 1_000_000)
    memory.touch("code", bandwidth=False)
    fault_only = clock.now
    assert fault_only > 0
    before = clock.now
    memory.touch("code", bandwidth=False)  # resident now: free
    assert clock.now == before


def test_touch_bounds_checked():
    memory, _ = make_memory()
    memory.alloc("a", 100)
    with pytest.raises(EnclaveError):
        memory.touch("a", offset=50, n_bytes=60)
    with pytest.raises(EnclaveError):
        memory.touch("a", offset=-1, n_bytes=10)
    assert memory.touch("a", offset=0, n_bytes=0) == 0


def test_touch_window_wraps():
    memory, _ = make_memory(encrypted=True, capacity_bytes=1024 * 1024)
    memory.alloc("r", 3 * 64 * 1024)
    faults, cursor = memory.touch_window("r", 2 * 64 * 1024, 2 * 64 * 1024)
    assert cursor == 64 * 1024
    assert faults == 2  # last granule + first granule


def test_touch_cyclic_traffic_exceeding_region():
    memory, _ = make_memory(encrypted=True, capacity_bytes=10 * 64 * 1024)
    memory.alloc("r", 2 * 64 * 1024)
    faults = memory.touch_cyclic("r", 10 * 64 * 1024)
    assert faults == 2  # fits in EPC: only cold faults


def test_charge_bytes():
    memory, clock = make_memory()
    memory.charge_bytes(CM.page_size)
    assert clock.now > 0
    before = clock.now
    memory.charge_bytes(0)
    assert clock.now == before
