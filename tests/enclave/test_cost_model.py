"""Cost model: parallel speedup curve and overrides."""

import pytest

from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM


def test_speedup_monotonic_through_physical_cores():
    speedups = [CM.effective_parallel_speedup(t) for t in (1, 2, 3, 4)]
    assert speedups == sorted(speedups)
    assert speedups[0] == pytest.approx(1.0)


def test_hyperthreads_yield_less_than_cores():
    gain_core = CM.effective_parallel_speedup(4) / CM.effective_parallel_speedup(2)
    gain_ht = CM.effective_parallel_speedup(8) / CM.effective_parallel_speedup(4)
    assert gain_ht < gain_core
    assert gain_ht > 1.0  # still positive


def test_speedup_validation():
    with pytest.raises(ValueError):
        CM.effective_parallel_speedup(0)


def test_with_overrides_returns_new_model():
    modified = CM.with_overrides(epc_capacity_bytes=1024)
    assert modified.epc_capacity_bytes == 1024
    assert CM.epc_capacity_bytes != 1024
    assert modified.lan_rtt == CM.lan_rtt


def test_key_relationships_hold():
    # Cross-constant sanity the rest of the simulation relies on.
    assert CM.async_syscall_cost < CM.sync_transition_cost
    assert CM.userlevel_switch_cost < CM.os_switch_cost
    assert CM.enclave_memory_bandwidth < CM.native_memory_bandwidth
    assert CM.glibc_factor <= CM.scone_libc_factor <= CM.musl_factor
    assert CM.lan_rtt < CM.wan_rtt
    assert CM.enclave_compute_factor >= 1.0
