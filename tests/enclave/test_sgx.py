"""Enclave lifecycle: measurement, sealing, quotes, destruction."""

import pytest

from repro._sim import DeterministicRng, SimClock
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import Enclave, EnclaveImage, Segment, SgxCpu, SgxMode
from repro.errors import EnclaveError, IntegrityError


def make_image(name="app", binary=b"\x90" * 1000, heap=1 << 20, threads=4):
    return EnclaveImage(
        name=name,
        segments=[Segment.from_content("binary", binary, kind="code")],
        heap_size=heap,
        max_threads=threads,
    )


def test_measurement_is_content_sensitive():
    base = make_image().measurement()
    assert make_image().measurement() == base  # deterministic
    assert make_image(binary=b"\x90" * 999 + b"\x91").measurement() != base
    assert make_image(name="other").measurement() != base
    assert make_image(heap=2 << 20).measurement() != base
    assert make_image(threads=8).measurement() != base


def test_declared_segments_measure_identity():
    a = Segment.declared("model", 1000, b"model-v1")
    b = Segment.declared("model", 1000, b"model-v2")
    image_a = EnclaveImage("app", [a])
    image_b = EnclaveImage("app", [b])
    assert image_a.measurement() != image_b.measurement()


def test_create_enclave_charges_hw_costs(cpu, clock):
    enclave = cpu.create_enclave(make_image(), SgxMode.HW)
    pages = -(-enclave.image.static_size // CM.page_size)
    expected = CM.enclave_create_cost + pages * CM.eadd_eextend_cost_per_page
    assert clock.now == pytest.approx(expected)
    assert enclave.memory.encrypted


def test_sim_enclave_is_free_and_unencrypted(cpu, clock):
    enclave = cpu.create_enclave(make_image(), SgxMode.SIM)
    assert clock.now == 0.0
    assert not enclave.memory.encrypted


def test_native_mode_cannot_create_enclave(cpu):
    with pytest.raises(EnclaveError):
        cpu.create_enclave(make_image(), SgxMode.NATIVE)


def test_enclave_regions_allocated(cpu):
    enclave = cpu.create_enclave(make_image(), SgxMode.HW)
    assert set(enclave.memory.regions) == {"binary", "heap"}


def test_report_and_debug_flag(cpu):
    hw = cpu.create_enclave(make_image("a"), SgxMode.HW)
    sim = cpu.create_enclave(make_image("b"), SgxMode.SIM)
    assert hw.create_report().debug is False
    assert sim.create_report().debug is True
    assert hw.create_report(b"data").report_data == b"data"
    with pytest.raises(EnclaveError):
        hw.create_report(b"x" * 65)


def test_sealing_roundtrip_same_identity(cpu):
    enclave = cpu.create_enclave(make_image(), SgxMode.HW)
    sealed = enclave.seal(b"secret", aad=b"ctx")
    assert enclave.unseal(sealed, aad=b"ctx") == b"secret"
    # A restarted enclave with the same measurement can unseal.
    reborn = cpu.create_enclave(make_image(), SgxMode.HW)
    assert reborn.unseal(sealed, aad=b"ctx") == b"secret"


def test_sealing_bound_to_measurement(cpu):
    enclave = cpu.create_enclave(make_image(), SgxMode.HW)
    other = cpu.create_enclave(make_image(name="different"), SgxMode.HW)
    sealed = enclave.seal(b"secret")
    with pytest.raises(IntegrityError):
        other.unseal(sealed)


def test_sealing_bound_to_cpu(cpu, cost_model, provisioning, rng):
    clock2 = SimClock()
    cpu2 = SgxCpu("cpu-2", cost_model, clock2, provisioning, rng.child("cpu2"))
    sealed = cpu.create_enclave(make_image(), SgxMode.HW).seal(b"secret")
    with pytest.raises(IntegrityError):
        cpu2.create_enclave(make_image(), SgxMode.HW).unseal(sealed)


def test_quote_charges_generation_cost(cpu, clock):
    enclave = cpu.create_enclave(make_image(), SgxMode.HW)
    before = clock.now
    enclave.get_quote()
    assert clock.now - before == pytest.approx(CM.quote_generation_cost)


def test_destroy_evicts_and_blocks_use(cpu):
    enclave = cpu.create_enclave(make_image(), SgxMode.HW)
    enclave.memory.touch("binary")
    assert cpu.epc.resident_granules_of(enclave.enclave_id) > 0
    enclave.destroy()
    assert not enclave.alive
    assert cpu.epc.resident_granules_of(enclave.enclave_id) == 0
    with pytest.raises(EnclaveError):
        enclave.create_report()
    enclave.destroy()  # idempotent


def test_transition_costs(cpu, clock):
    before = clock.now
    cpu.transition(asynchronous=False)
    sync_cost = clock.now - before
    before = clock.now
    cpu.transition(asynchronous=True)
    async_cost = clock.now - before
    assert sync_cost == pytest.approx(CM.sync_transition_cost)
    assert async_cost == pytest.approx(CM.async_syscall_cost)
    assert async_cost < sync_cost
    assert cpu.transitions == 2
