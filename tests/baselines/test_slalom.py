"""Slalom-style GPU outsourcing (§7.4)."""

import pytest

from repro.baselines import make_graphene_runner, make_slalom_runner
from repro.baselines.native import make_native_runner
from repro.cluster import make_cluster
from repro.data import synthetic_cifar10
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.models import pretrained_lite_model
from repro.tensor.engine import GpuProfile


@pytest.fixture(scope="module")
def model():
    return pretrained_lite_model("inception_v3", seed=0)


@pytest.fixture(scope="module")
def images():
    _, test = synthetic_cifar10(n_train=5, n_test=8, seed=21)
    return test.images


@pytest.fixture
def node(provisioning):
    return make_cluster(1, CM, provisioning, seed=22)[0]


def test_slalom_outputs_match_cpu(node, model, images):
    """Offloading is a performance split, never a numerics change."""
    slalom = make_slalom_runner(node, model)
    native = make_native_runner(node, model, name="ref")
    for image in images[:3]:
        assert slalom.classify(image) == native.classify(image)


def test_slalom_much_faster_than_enclave_cpu(node, model, images):
    from repro.enclave.sgx import SgxMode
    from repro.runtime.scone import RuntimeConfig, SconeRuntime
    from repro.tensor.engine import LITE_PROFILE
    from repro.tensor.lite import Interpreter

    # Plain HW-mode CPU inference on the same node.
    runtime = SconeRuntime(
        RuntimeConfig(
            name="cpu-only", mode=SgxMode.HW,
            binary_size=LITE_PROFILE.binary_size, fs_shield_enabled=False,
        ),
        node.vfs, CM, node.clock, cpu=node.cpu, rng=node.rng.child("cpu-only"),
    )
    cpu = Interpreter(model, runtime=runtime)
    cpu.allocate_tensors()
    cpu.classify(images[0][None])
    before = node.clock.now
    for image in images[:4]:
        cpu.classify(image[None])
    cpu_latency = (node.clock.now - before) / 4

    slalom = make_slalom_runner(node, model)
    slalom.classify(images[0])
    slalom_latency = slalom.measure_latency(images, 4)
    # Convnets are overwhelmingly linear FLOPs: the GPU should win big.
    assert slalom_latency < cpu_latency / 3


def test_slalom_costs_scale_with_gpu_speed(node, model, images):
    slow_gpu = make_slalom_runner(
        node, model, gpu=GpuProfile(flops_per_second=5e10), name="slow"
    )
    fast_gpu = make_slalom_runner(
        node, model, gpu=GpuProfile(flops_per_second=5e12), name="fast"
    )
    slow_gpu.classify(images[0])
    fast_gpu.classify(images[0])
    assert fast_gpu.measure_latency(images, 3) < slow_gpu.measure_latency(
        images, 3
    )


def test_slalom_documents_the_weakened_threat_model(node, model):
    slalom = make_slalom_runner(node, model)
    assert "confiden" in slalom.CONFIDENTIALITY_CAVEAT.lower()
    assert slalom.runtime.memory.encrypted  # the enclave half is real HW
