"""Native and Graphene baselines."""

import pytest

from repro.baselines import GRAPHENE_LIBOS, make_graphene_runner, make_native_runner
from repro.cluster import make_cluster
from repro.data import synthetic_cifar10
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.errors import ConfigurationError
from repro.models import pretrained_lite_model
from repro.runtime.libc import GLIBC, MUSL, SCONE_LIBC


@pytest.fixture(scope="module")
def model():
    return pretrained_lite_model("densenet", seed=0)


@pytest.fixture(scope="module")
def images():
    _, test = synthetic_cifar10(n_train=5, n_test=10, seed=1)
    return test.images


@pytest.fixture
def node(provisioning):
    return make_cluster(1, CM, provisioning, seed=3)[0]


def test_native_runner_classifies(node, model, images):
    runner = make_native_runner(node, model, libc=GLIBC)
    label = runner.classify(images[0])
    assert 0 <= label < 10


def test_glibc_faster_than_musl(node, model, images):
    glibc = make_native_runner(node, model, libc=GLIBC, name="g")
    musl = make_native_runner(node, model, libc=MUSL, name="m")
    glibc_latency = glibc.measure_latency(images, 4)
    musl_latency = musl.measure_latency(images, 4)
    # Paper §5.3 #1: glibc has the edge, slightly.
    assert glibc_latency < musl_latency < glibc_latency * 1.1


def test_scone_libc_rejected_for_native(node, model):
    with pytest.raises(ConfigurationError):
        make_native_runner(node, model, libc=SCONE_LIBC)


def test_graphene_runner_matches_native_labels(node, model, images):
    native = make_native_runner(node, model, libc=GLIBC, name="n")
    graphene = make_graphene_runner(node, model)
    for image in images[:3]:
        assert graphene.classify(image) == native.classify(image)


def test_graphene_runs_in_hardware_enclave(node, model):
    graphene = make_graphene_runner(node, model)
    assert graphene.runtime.memory.encrypted
    assert graphene.runtime.libc is GRAPHENE_LIBOS
    # The libOS stack is more than an order of magnitude bigger than
    # SCONE's libc — the Fig. 5 divergence mechanism.
    assert GRAPHENE_LIBOS.binary_size > 20 * SCONE_LIBC.binary_size


def test_graphene_not_faster_than_native(node, model, images):
    native = make_native_runner(node, model, libc=GLIBC, name="n2")
    graphene = make_graphene_runner(node, model, name="g2")
    graphene.classify(images[0])  # warm the EPC
    native_latency = native.measure_latency(images, 4)
    graphene_latency = graphene.measure_latency(images, 4)
    assert graphene_latency >= native_latency
