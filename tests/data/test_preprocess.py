"""Input normalization (§7.1)."""

import numpy as np
import pytest

from repro.data import synthetic_cifar10
from repro.data.loaders import Dataset
from repro.data.preprocess import downscale_images, normalize_dataset, standardize
from repro.errors import ConfigurationError


def test_downscale_halves_dimensions():
    rng = np.random.default_rng(0)
    images = rng.random((4, 64, 64, 3)).astype(np.float32)
    small = downscale_images(images, 32)
    assert small.shape == (4, 32, 32, 3)
    # Average pooling preserves the global mean.
    assert small.mean() == pytest.approx(images.mean(), rel=1e-5)


def test_downscale_block_average_exact():
    images = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
    small = downscale_images(images, 2)
    expected = np.array([[[2.5], [4.5]], [[10.5], [12.5]]], dtype=np.float32)
    np.testing.assert_allclose(small[0], expected)


def test_downscale_validation():
    with pytest.raises(ConfigurationError):
        downscale_images(np.zeros((4, 30, 30, 3), np.float32), 32)
    with pytest.raises(ConfigurationError):
        downscale_images(np.zeros((30, 30, 3), np.float32), 10)


def test_standardize_and_stats_reuse():
    rng = np.random.default_rng(1)
    train = rng.normal(5.0, 2.0, size=(100, 8, 8, 1)).astype(np.float32)
    test = rng.normal(5.0, 2.0, size=(20, 8, 8, 1)).astype(np.float32)
    normalized_train, stats = standardize(train)
    assert abs(normalized_train.mean()) < 1e-4
    assert abs(normalized_train.std() - 1.0) < 1e-3
    normalized_test, stats_again = standardize(test, stats)
    assert stats_again == stats  # no test-set leakage


def test_normalize_dataset_shrinks_memory():
    train, _ = synthetic_cifar10(n_train=16, n_test=4, seed=0)
    big = Dataset(
        np.repeat(np.repeat(train.images, 2, axis=1), 2, axis=2),
        train.labels,
        train.num_classes,
        name="cifar-64px",
    )
    normalized = normalize_dataset(big, 32)
    assert normalized.images.shape == (16, 32, 32, 3)
    assert normalized.images.nbytes == big.images.nbytes // 4
    np.testing.assert_array_equal(normalized.labels, big.labels)
