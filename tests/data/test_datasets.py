"""Synthetic datasets: shapes, determinism, learnability, batching."""

import numpy as np
import pytest

from repro.data import Dataset, one_hot, synthetic_cifar10, synthetic_mnist
from repro.data.cifar10 import CIFAR10_CLASSES
from repro.errors import ConfigurationError


def test_mnist_shapes_and_ranges():
    train, test = synthetic_mnist(n_train=200, n_test=50, seed=0)
    assert train.images.shape == (200, 28, 28, 1)
    assert test.images.shape == (50, 28, 28, 1)
    assert train.images.dtype == np.float32
    assert train.images.min() >= 0.0 and train.images.max() <= 1.0
    assert set(np.unique(train.labels)) <= set(range(10))


def test_cifar_shapes_and_classes():
    train, test = synthetic_cifar10(n_train=100, n_test=20, seed=0)
    assert train.images.shape == (100, 32, 32, 3)
    assert len(CIFAR10_CLASSES) == 10
    assert train.num_classes == 10


def test_determinism():
    a, _ = synthetic_mnist(n_train=50, n_test=10, seed=7)
    b, _ = synthetic_mnist(n_train=50, n_test=10, seed=7)
    np.testing.assert_array_equal(a.images, b.images)
    np.testing.assert_array_equal(a.labels, b.labels)
    c, _ = synthetic_mnist(n_train=50, n_test=10, seed=8)
    assert not np.array_equal(a.images, c.images)


def test_classes_are_linearly_separable_enough():
    """A least-squares linear probe beats chance by a wide margin."""
    train, test = synthetic_mnist(n_train=1000, n_test=300, seed=1)
    x = train.images.reshape(len(train), -1)
    y = train.one_hot_labels
    w, *_ = np.linalg.lstsq(x, y, rcond=None)
    predictions = (test.images.reshape(len(test), -1) @ w).argmax(axis=1)
    assert (predictions == test.labels).mean() > 0.6


def test_cifar_learnable_by_linear_probe():
    train, test = synthetic_cifar10(n_train=1000, n_test=300, seed=1)
    x = train.images.reshape(len(train), -1)
    w, *_ = np.linalg.lstsq(x, train.one_hot_labels, rcond=None)
    predictions = (test.images.reshape(len(test), -1) @ w).argmax(axis=1)
    assert (predictions == test.labels).mean() > 0.6


def test_one_hot():
    out = one_hot(np.array([0, 2, 1]), 3)
    np.testing.assert_array_equal(out, np.eye(3, dtype=np.float32)[[0, 2, 1]])
    with pytest.raises(ConfigurationError):
        one_hot(np.array([3]), 3)
    with pytest.raises(ConfigurationError):
        one_hot(np.array([[0]]), 3)


def test_batching_covers_everything_once():
    train, _ = synthetic_mnist(n_train=25, n_test=5, seed=0)
    batches = list(train.batches(10))
    assert [len(b[0]) for b in batches] == [10, 10, 5]
    total = sum(len(b[0]) for b in batches)
    assert total == 25
    with pytest.raises(ConfigurationError):
        list(train.batches(0))


def test_shuffled_batches_are_permutation():
    train, _ = synthetic_mnist(n_train=30, n_test=5, seed=0)
    plain = np.concatenate([b[0] for b in train.batches(8)])
    shuffled = np.concatenate([b[0] for b in train.batches(8, shuffle_seed=3)])
    assert not np.array_equal(plain, shuffled)
    np.testing.assert_allclose(
        np.sort(plain.ravel()), np.sort(shuffled.ravel())
    )


def test_take_and_example_bytes():
    train, _ = synthetic_mnist(n_train=20, n_test=5, seed=0)
    small = train.take(4)
    assert len(small) == 4
    raw = small.example_bytes(0)
    assert len(raw) == 28 * 28 * 4


def test_mismatched_lengths_rejected():
    with pytest.raises(ConfigurationError):
        Dataset(np.zeros((3, 2, 2, 1)), np.zeros(2, dtype=np.int64), 10)
