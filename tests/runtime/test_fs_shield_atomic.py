"""Crash consistency of the journaled shield layout.

The central claim: a crash at ANY syscall boundary of a multi-chunk
commit leaves the file at exactly the old or the new version after a
remount + recovery scan — never torn, never a mix, never unreadable.
The sweep below proves it exhaustively: one run per mutating-storage
operation of the commit, both crash polarities (before/after), plus a
dedicated probe of the non-VFS boundary between the manifest flip and
the freshness commit.
"""

import pytest

from repro._sim import SimClock
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import FreshnessError, IntegrityError, StorageCrash
from repro.runtime.fs_shield import (
    CHUNK_MARKER,
    COMMIT_SUFFIX,
    FileSystemShield,
    LocalFreshnessTracker,
    PathRule,
    ShieldPolicy,
)
from repro.runtime.storage_faults import CrashPoint, StorageFaultPlan
from repro.runtime.syscall import SyscallInterface
from repro.runtime.vfs import VirtualFileSystem

RULES = [PathRule("/s/", ShieldPolicy.ENCRYPT)]
OLD = bytes(range(256)) * 3   # 768 bytes -> 3 chunks at 256
NEW = OLD[::-1]
PATH = "/s/state"


def mount(vfs, tracker, replicas=2, rules=RULES):
    """A fresh shield over surviving storage (simulates enclave restart;
    the freshness tracker models CAS, which outlives the node)."""
    clock = SimClock()
    syscalls = SyscallInterface(vfs, CM, clock, mode=SgxMode.NATIVE)
    return FileSystemShield(
        syscalls,
        bytes(range(32)),
        rules,
        CM,
        clock,
        chunk_size=256,
        freshness=tracker,
        replicas=replicas,
    )


def committed_write_op_count(replicas=2):
    """How many mutating-storage ops one commit of NEW costs."""
    vfs = VirtualFileSystem()
    tracker = LocalFreshnessTracker()
    shield = mount(vfs, tracker, replicas)
    shield.write_file(PATH, OLD)
    plan = StorageFaultPlan(seed=0).attach(vfs)
    shield.write_file(PATH, NEW)
    return plan.op_index


def test_commit_is_multi_operation():
    # 3 chunks x 2 replicas + pending write + rename + GC deletes: the
    # sweep below only means something if the commit really spans many
    # syscall boundaries.
    assert committed_write_op_count() >= 8


@pytest.mark.parametrize("after", [False, True])
def test_exhaustive_crash_point_sweep(after):
    """Kill the process at every syscall boundary of a commit; remount,
    recover, and require exactly-old-or-new with consistent freshness."""
    n_ops = committed_write_op_count()
    outcomes = set()
    for at_op in range(n_ops):
        vfs = VirtualFileSystem()
        tracker = LocalFreshnessTracker()
        shield = mount(vfs, tracker)
        shield.write_file(PATH, OLD)

        plan = StorageFaultPlan(
            seed=0, crash_points=[CrashPoint(at_op=at_op, after=after)]
        ).attach(vfs)
        try:
            shield.write_file(PATH, NEW)
            crashed = False
        except StorageCrash:
            crashed = True
        assert crashed, f"crash point {at_op} ({after=}) never fired"

        vfs.faults = None  # the process is dead; the plan dies with it
        remounted = mount(vfs, tracker)
        report = remounted.recover()
        content = remounted.read_file(PATH)
        assert content in (OLD, NEW), (
            f"crash at op {at_op} ({after=}) left a third state: "
            f"{report.get(PATH)}"
        )
        outcomes.add((content == NEW, report.get(PATH, "clean")))

        # Freshness is consistent with what survived: a re-read through
        # yet another mount agrees, and the next write commits cleanly.
        again = mount(vfs, tracker)
        assert again.read_file(PATH) == content
        again.write_file(PATH, b"after-recovery" * 60)
        assert again.read_file(PATH) == b"after-recovery" * 60
    # The sweep must observe both survivors across the boundary space.
    assert any(new for new, _ in outcomes), "no crash point preserved NEW"
    assert any(not new for new, _ in outcomes), "no crash point preserved OLD"


class _CrashOnCommitTracker:
    """Freshness tracker whose commit dies once — the non-VFS boundary
    between the manifest flip (step 3) and the audit commit (step 4)."""

    def __init__(self, inner):
        self.inner = inner
        self.armed = True

    def commit(self, path, version, digest):
        if self.armed:
            self.armed = False
            raise StorageCrash("died between rename flip and freshness commit")
        self.inner.commit(path, version, digest)

    def verify(self, path, version, digest):
        self.inner.verify(path, version, digest)


def test_crash_between_flip_and_freshness_commit_rolls_forward():
    vfs = VirtualFileSystem()
    durable = LocalFreshnessTracker()
    shield = mount(vfs, durable)
    shield.write_file(PATH, OLD)

    crashing = mount(vfs, _CrashOnCommitTracker(durable))
    with pytest.raises(StorageCrash):
        crashing.write_file(PATH, NEW)

    # Disk holds NEW (the flip happened), the tracker still says OLD:
    # reading without recovery fails closed as a freshness violation.
    stale_mount = mount(vfs, durable)
    with pytest.raises(FreshnessError):
        stale_mount.read_file(PATH)

    remounted = mount(vfs, durable)
    report = remounted.recover()
    assert report[PATH] == "rolled-forward"
    assert remounted.stats.recoveries_rolled_forward == 1
    assert remounted.read_file(PATH) == NEW


def test_recovery_rolls_back_unflipped_commit_and_collects_strays():
    vfs = VirtualFileSystem()
    tracker = LocalFreshnessTracker()
    shield = mount(vfs, tracker)
    shield.write_file(PATH, OLD)
    # Crash right before the rename flip: pending manifest + both chunk
    # generations on disk.  Commit op order: 3 chunks x 2 replicas of
    # shadow writes (ops 0-5), the pending-manifest write (op 6), then
    # the rename (op 7).
    plan = StorageFaultPlan(
        seed=0, crash_points=[CrashPoint(at_op=7)]
    ).attach(vfs)
    try:
        shield.write_file(PATH, NEW)
    except StorageCrash:
        pass
    vfs.faults = None

    remounted = mount(vfs, tracker)
    had_pending = any(p.endswith(COMMIT_SUFFIX) for p in vfs.listdir())
    report = remounted.recover()
    if had_pending:
        assert report[PATH] == "rolled-back"
        assert remounted.stats.recoveries_rolled_back == 1
    assert remounted.read_file(PATH) == OLD
    # No pending manifest and no stale-generation chunks remain.
    leftover = vfs.listdir()
    assert not any(p.endswith(COMMIT_SUFFIX) for p in leftover)
    generations = {
        p.split(CHUNK_MARKER, 1)[1].split(".", 1)[0]
        for p in leftover
        if CHUNK_MARKER in p
    }
    assert len(generations) == 1  # only the live version's chunks


def test_gc_removes_stale_generations_on_clean_commit():
    vfs = VirtualFileSystem()
    shield = mount(vfs, LocalFreshnessTracker())
    shield.write_file(PATH, OLD)
    shield.write_file(PATH, NEW)
    generations = {
        p.split(CHUNK_MARKER, 1)[1].split(".", 1)[0]
        for p in vfs.listdir()
        if CHUNK_MARKER in p
    }
    assert generations == {"1"}


# ---------------------------------------------------------------------------
# Self-healing reads: k-way replicas repair each other
# ---------------------------------------------------------------------------


def chunk_files(vfs, replica=None):
    return [
        p
        for p in vfs.listdir()
        if CHUNK_MARKER in p and (replica is None or p.endswith(f".{replica}"))
    ]


def test_read_heals_a_damaged_replica():
    vfs = VirtualFileSystem()
    shield = mount(vfs, LocalFreshnessTracker(), replicas=3)
    shield.write_file(PATH, OLD)
    shield.drop_caches()

    victim = chunk_files(vfs, replica=1)[0]
    good = vfs.read(victim).content
    vfs.tamper(victim, b"\x00" * len(good))

    assert shield.read_file(PATH) == OLD  # healed transparently
    assert shield.stats.torn_writes_detected == 1
    assert shield.stats.chunks_repaired == 1
    assert vfs.read(victim).content == good  # the copy was rewritten

    # The next cold read finds every replica intact again.
    shield.drop_caches()
    assert shield.read_file(PATH) == OLD
    assert shield.stats.chunks_repaired == 1


def test_read_survives_a_missing_replica():
    vfs = VirtualFileSystem()
    shield = mount(vfs, LocalFreshnessTracker(), replicas=2)
    shield.write_file(PATH, OLD)
    shield.drop_caches()
    vfs.delete(chunk_files(vfs, replica=0)[0])
    assert shield.read_file(PATH) == OLD
    assert shield.stats.chunks_repaired == 1


def test_fails_closed_when_no_intact_replica_remains():
    vfs = VirtualFileSystem()
    shield = mount(vfs, LocalFreshnessTracker(), replicas=2)
    shield.write_file(PATH, OLD)
    shield.drop_caches()
    first_chunk = [p for p in chunk_files(vfs) if f"{CHUNK_MARKER}0.0." in p]
    assert len(first_chunk) == 2
    for p in first_chunk:
        vfs.tamper(p, b"garbage")
    with pytest.raises(IntegrityError):
        shield.read_file(PATH)


def test_recover_heals_replicas_at_mount_time():
    vfs = VirtualFileSystem()
    tracker = LocalFreshnessTracker()
    shield = mount(vfs, tracker, replicas=2)
    shield.write_file(PATH, OLD)
    victim = chunk_files(vfs, replica=1)[0]
    good = vfs.read(victim).content
    vfs.tamper(victim, good[:-5])

    remounted = mount(vfs, tracker, replicas=2)
    report = remounted.recover()
    assert report[PATH] == "clean"
    assert remounted.stats.chunks_repaired == 1
    assert vfs.read(victim).content == good


def test_replica_corruption_counted_not_conflated_with_forgery():
    """A forged-but-self-consistent replica still fails the manifest
    digest check — replicas authenticate against the manifest, not
    against each other."""
    vfs = VirtualFileSystem()
    shield = mount(vfs, LocalFreshnessTracker(), replicas=2)
    shield.write_file(PATH, OLD)
    shield.drop_caches()
    a, b = [p for p in chunk_files(vfs) if f"{CHUNK_MARKER}0.0." in p]
    # Copy replica contents of chunk 1 over chunk 0's replica: valid
    # ciphertext, wrong chunk -> digest mismatch -> treated as damage.
    other = [p for p in chunk_files(vfs) if f"{CHUNK_MARKER}0.1." in p][0]
    vfs.tamper(a, vfs.read(other).content)
    assert shield.read_file(PATH) == OLD
    assert shield.stats.torn_writes_detected == 1


# ---------------------------------------------------------------------------
# Rollback of journaled state
# ---------------------------------------------------------------------------


def test_disk_image_rollback_rejected():
    vfs = VirtualFileSystem()
    tracker = LocalFreshnessTracker()
    shield = mount(vfs, tracker)
    shield.write_file(PATH, OLD)
    snapshot = vfs.capture_state()
    shield.write_file(PATH, NEW)
    vfs.restore_state(snapshot)  # the classic whole-disk rollback

    remounted = mount(vfs, tracker)
    report = remounted.recover()
    assert report[PATH] == "stale"
    with pytest.raises(FreshnessError):
        remounted.read_file(PATH)


def test_recover_skips_inline_and_passthrough_files():
    vfs = VirtualFileSystem()
    tracker = LocalFreshnessTracker()
    rules = RULES + [PathRule("/plain/", ShieldPolicy.PASSTHROUGH)]
    inline = mount(vfs, tracker, replicas=1, rules=rules)
    assert inline._journal is False  # replicas=1, journal not requested
    inline.write_file(PATH, OLD)
    inline.write_file("/plain/x", b"raw")

    journaled = mount(vfs, tracker, replicas=2, rules=rules)
    report = journaled.recover()
    assert PATH not in report  # inline envelope: not recovery-managed
    assert "/plain/x" not in report
    assert journaled.read_file(PATH) == OLD  # both layouts readable
