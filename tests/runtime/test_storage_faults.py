"""Storage fault injector: determinism, tears, rot, crashes, rollback."""

import pytest

from repro.errors import StorageCrash, SyscallError
from repro.runtime.storage_faults import (
    CrashPoint,
    SnapshotRollback,
    StorageFaultPlan,
    StorageFaultSpec,
)
from repro.runtime.vfs import VirtualFileSystem


def test_plans_replay_byte_identically():
    def run(seed):
        vfs = VirtualFileSystem()
        plan = StorageFaultPlan(
            seed, StorageFaultSpec(torn_write=0.3, bit_rot=0.2, truncation=0.1)
        ).attach(vfs)
        for i in range(40):
            try:
                vfs.write(f"/f{i % 5}", bytes([i]) * 50)
            except StorageCrash:
                pass
            try:
                vfs.read(f"/f{i % 5}")
            except SyscallError:
                pass
        return plan.trace_bytes(), plan.counters

    trace_a, counters_a = run(7)
    trace_b, counters_b = run(7)
    trace_c, _ = run(8)
    assert trace_a == trace_b
    assert counters_a == counters_b
    assert trace_a != trace_c
    assert counters_a.torn_writes + counters_a.bit_rot + counters_a.truncations > 0


def test_torn_write_keeps_prefix_and_kills_process():
    vfs = VirtualFileSystem()
    plan = StorageFaultPlan(0, StorageFaultSpec(torn_write=1.0)).attach(vfs)
    payload = bytes(range(200))
    with pytest.raises(StorageCrash):
        vfs.write("/f", payload)
    stored = vfs._files["/f"].content
    assert len(stored) < len(payload)
    assert stored == payload[: len(stored)]  # a prefix, never garbage
    assert plan.counters.torn_writes == 1


def test_bit_rot_flips_one_stored_bit():
    vfs = VirtualFileSystem()
    plan = StorageFaultPlan(3, StorageFaultSpec(bit_rot=1.0)).attach(vfs)
    with plan.suspended():
        vfs.write("/f", bytes(100))
    rotted = vfs.read("/f").content
    assert len(rotted) == 100
    diff = [i for i in range(100) if rotted[i] != 0]
    assert len(diff) == 1
    assert bin(rotted[diff[0]]).count("1") == 1
    # Rot persists at rest: re-reading under suspension sees the damage.
    with plan.suspended():
        assert vfs.read("/f").content == rotted


def test_truncation_drops_the_tail():
    vfs = VirtualFileSystem()
    plan = StorageFaultPlan(4, StorageFaultSpec(truncation=1.0)).attach(vfs)
    with plan.suspended():
        vfs.write("/f", bytes(range(100)))
    content = vfs.read("/f").content
    assert len(content) < 100
    assert content == bytes(range(100))[: len(content)]
    assert plan.counters.truncations == 1


def test_crash_points_hit_exact_operation_boundaries():
    # Crash BEFORE op 1: op 0 applied, op 1 did not.
    vfs = VirtualFileSystem()
    StorageFaultPlan(0, crash_points=[CrashPoint(at_op=1)]).attach(vfs)
    vfs.write("/a", b"a")
    with pytest.raises(StorageCrash):
        vfs.write("/b", b"b")
    assert vfs.exists("/a") and not vfs.exists("/b")

    # Crash AFTER op 1: both applied, the crash lands after the second.
    vfs = VirtualFileSystem()
    StorageFaultPlan(0, crash_points=[CrashPoint(at_op=1, after=True)]).attach(vfs)
    vfs.write("/a", b"a")
    with pytest.raises(StorageCrash):
        vfs.write("/b", b"b")
    assert vfs.exists("/a") and vfs.exists("/b")
    # Each point fires once: the next mutation proceeds normally.
    vfs.write("/c", b"c")


def test_crash_point_on_delete_and_rename():
    vfs = VirtualFileSystem()
    StorageFaultPlan(0, crash_points=[CrashPoint(at_op=2)]).attach(vfs)
    vfs.write("/a", b"a")
    vfs.write("/b", b"b")
    with pytest.raises(StorageCrash):
        vfs.delete("/a")
    assert vfs.exists("/a")  # crash-before: the delete never happened

    vfs = VirtualFileSystem()
    StorageFaultPlan(0, crash_points=[CrashPoint(at_op=1, after=True)]).attach(vfs)
    vfs.write("/src", b"x")
    with pytest.raises(StorageCrash):
        vfs.rename("/src", "/dst")
    # Rename is atomic: crash-after still leaves the completed move.
    assert not vfs.exists("/src") and vfs.read("/dst").content == b"x"


def test_rename_is_never_torn():
    vfs = VirtualFileSystem()
    plan = StorageFaultPlan(0, StorageFaultSpec(torn_write=1.0)).attach(vfs)
    with plan.suspended():
        vfs.write("/src", bytes(100))
    vfs.rename("/src", "/dst")
    assert vfs._files["/dst"].content == bytes(100)
    assert plan.counters.torn_writes == 0


def test_snapshot_restore_rollback():
    vfs = VirtualFileSystem()
    plan = StorageFaultPlan(
        0, rollbacks=[SnapshotRollback(capture_at_op=1, restore_at_op=3)]
    ).attach(vfs)
    vfs.write("/f", b"v0")      # op 0
    vfs.write("/f", b"v1")      # op 1: snapshot captured first (holds v0)
    vfs.write("/g", b"new")     # op 2
    vfs.write("/h", b"x")       # op 3: restore fires before this applies
    assert vfs.read("/f").content == b"v0"   # mutation reverted
    assert not vfs.exists("/g")              # post-snapshot file vanished
    assert vfs.exists("/h")                  # op 3 itself then applied
    assert plan.counters.rollbacks == 1


def test_rollback_scoped_by_prefix():
    vfs = VirtualFileSystem()
    StorageFaultPlan(
        0, rollbacks=[SnapshotRollback(1, 3, prefix="/scoped/")]
    ).attach(vfs)
    vfs.write("/scoped/f", b"v0")
    vfs.write("/other/g", b"keep-v0")
    vfs.write("/scoped/f", b"v1")
    vfs.write("/other/g", b"keep-v1")
    assert vfs.read("/scoped/f").content == b"v0"
    assert vfs.read("/other/g").content == b"keep-v1"  # outside the blast radius


def test_suspended_context_injects_nothing():
    vfs = VirtualFileSystem()
    plan = StorageFaultPlan(
        0,
        StorageFaultSpec(torn_write=1.0, bit_rot=1.0, truncation=1.0),
        crash_points=[CrashPoint(at_op=0)],
    ).attach(vfs)
    with plan.suspended():
        vfs.write("/f", bytes(100))
        assert vfs.read("/f").content == bytes(100)
    assert plan.op_index == 0  # suspended ops are not counted
    assert plan.counters.crashes == 0


def test_spec_prefix_scoping():
    vfs = VirtualFileSystem()
    plan = StorageFaultPlan(
        0, StorageFaultSpec(torn_write=1.0, prefixes=("/fragile/",))
    ).attach(vfs)
    vfs.write("/sturdy/f", bytes(100))  # out of scope: unharmed
    assert vfs.read("/sturdy/f").content == bytes(100)
    with pytest.raises(StorageCrash):
        vfs.write("/fragile/f", bytes(100))
    assert plan.counters.torn_writes == 1
