"""VFS semantics and the syscall layer (costs, Iago defences)."""

import pytest

from repro._sim import SimClock
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import EnclaveImage, Segment, SgxMode
from repro.errors import IagoError, SyscallError
from repro.runtime.syscall import IO_CHUNK, SyscallInterface
from repro.runtime.vfs import VirtualFile, VirtualFileSystem


@pytest.fixture
def vfs():
    return VirtualFileSystem()


def make_syscalls(vfs, mode=SgxMode.NATIVE, cpu=None, asynchronous=True):
    clock = cpu.clock if cpu is not None else SimClock()
    enclave = None
    if mode is SgxMode.HW:
        image = EnclaveImage("app", [Segment.from_content("b", b"x", "code")])
        enclave = cpu.create_enclave(image, SgxMode.HW)
    return (
        SyscallInterface(
            vfs, CM, clock, mode=mode, enclave=enclave, asynchronous=asynchronous
        ),
        clock,
    )


# --- VFS -------------------------------------------------------------------


def test_vfs_write_read_delete(vfs):
    vfs.write("/a", b"data")
    assert vfs.read("/a").content == b"data"
    vfs.delete("/a")
    assert not vfs.exists("/a")
    with pytest.raises(SyscallError):
        vfs.read("/a")
    with pytest.raises(SyscallError):
        vfs.delete("/a")


def test_vfs_versions_increment(vfs):
    assert vfs.write("/a", b"v0").version == 0
    assert vfs.write("/a", b"v1").version == 1


def test_vfs_declared_size(vfs):
    file = vfs.write("/model", b"tiny", declared_size=1000)
    assert file.size == 1000
    with pytest.raises(SyscallError):
        vfs.write("/bad", b"longer content", declared_size=3)


def test_vfs_listdir_prefix(vfs):
    vfs.write("/a/1", b"")
    vfs.write("/a/2", b"")
    vfs.write("/b/1", b"")
    assert vfs.listdir("/a/") == ["/a/1", "/a/2"]
    assert len(vfs) == 3


# --- Syscall layer -----------------------------------------------------------


def test_read_write_roundtrip(vfs):
    syscalls, _ = make_syscalls(vfs)
    syscalls.write_file("/f", b"payload")
    assert syscalls.read_file("/f").content == b"payload"
    assert syscalls.stat("/f") == 7
    assert syscalls.exists("/f")
    syscalls.unlink("/f")
    assert not syscalls.exists("/f")


def test_io_stats_accumulate(vfs):
    syscalls, _ = make_syscalls(vfs)
    syscalls.write_file("/f", b"x" * 100)
    syscalls.read_file("/f")
    assert syscalls.stats.bytes_written == 100
    assert syscalls.stats.bytes_read == 100
    assert syscalls.stats.by_name["open"] == 2


def test_large_io_uses_multiple_syscalls(vfs):
    syscalls, _ = make_syscalls(vfs)
    small_calls = None
    syscalls.write_file("/small", b"x")
    small_calls = syscalls.stats.calls
    syscalls.write_file("/large", b"x" * (3 * IO_CHUNK))
    assert syscalls.stats.calls - small_calls > 3


def test_hw_sync_costs_more_than_async(vfs, cpu):
    sync, clock = make_syscalls(vfs, SgxMode.HW, cpu, asynchronous=False)
    base = clock.now
    for _ in range(100):
        sync.nop_syscall()
    sync_cost = clock.now - base

    vfs2 = VirtualFileSystem()
    async_calls, clock = make_syscalls(vfs2, SgxMode.HW, cpu, asynchronous=True)
    base = clock.now
    for _ in range(100):
        async_calls.nop_syscall()
    async_cost = clock.now - base
    assert async_cost < sync_cost


def test_sim_mode_handles_some_calls_in_userspace(vfs):
    # Userspace dispatch is per-syscall-name now: futex/clock/mmap-class
    # calls never leave the runtime, kernel-bound names ride the ring.
    syscalls, _ = make_syscalls(vfs, SgxMode.SIM)
    workload = ["futex", "clock_gettime", "read", "write", "mmap"] * 20
    for name in workload:
        syscalls.nop_syscall(name)
    assert 0 < syscalls.stats.userspace_handled < 100
    assert syscalls.stats.userspace_handled == 60  # 3 of 5 names in the table


def test_userspace_calls_never_touch_the_ring(vfs):
    syscalls, _ = make_syscalls(vfs, SgxMode.SIM)
    for _ in range(50):
        syscalls.nop_syscall("futex")
    syscalls.flush()
    assert syscalls.stats.userspace_handled == 50
    assert syscalls.stats.ring_submissions == 0


def test_hw_mode_requires_enclave(vfs):
    with pytest.raises(SyscallError):
        SyscallInterface(vfs, CM, SimClock(), mode=SgxMode.HW, enclave=None)


# --- Iago defences -----------------------------------------------------------


def test_iago_negative_stat_rejected(vfs):
    syscalls, _ = make_syscalls(vfs)
    vfs.write("/f", b"data")
    syscalls.hostile_hook = lambda name, res: -1 if name == "stat" else res
    with pytest.raises(IagoError):
        syscalls.stat("/f")


def test_iago_oversized_read_rejected(vfs):
    syscalls, _ = make_syscalls(vfs)
    vfs.write("/f", b"data")

    def hostile(name, result):
        if name == "read":
            return VirtualFile("/f", content=b"data" * 100, declared_size=4)
        return result

    # declared size 4 but 400 bytes returned -> read check fires
    syscalls.hostile_hook = hostile
    with pytest.raises(IagoError):
        syscalls.read_file("/f")


def test_iago_write_overclaim_rejected(vfs):
    syscalls, _ = make_syscalls(vfs)
    syscalls.hostile_hook = lambda name, res: (
        res + 100 if name == "write" else res
    )
    with pytest.raises(IagoError):
        syscalls.write_file("/f", b"data")


def test_iago_listing_outside_prefix_rejected(vfs):
    syscalls, _ = make_syscalls(vfs)
    vfs.write("/dir/a", b"")
    syscalls.hostile_hook = lambda name, res: (
        res + ["/etc/shadow"] if name == "getdents" else res
    )
    with pytest.raises(IagoError):
        syscalls.list_dir("/dir/")


def test_iago_non_string_listing_rejected(vfs):
    syscalls, _ = make_syscalls(vfs)
    syscalls.hostile_hook = lambda name, res: (
        [42] if name == "getdents" else res
    )
    with pytest.raises(IagoError):
        syscalls.list_dir("")
