"""Authenticated dlopen (paper §4.1 — what makes the Python API safe)."""

import pytest

from repro._sim import DeterministicRng, SimClock
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import SecurityError, ShieldError
from repro.runtime.fs_shield import (
    FileSystemShield,
    PathRule,
    ShieldPolicy,
)
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.runtime.syscall import SyscallInterface
from repro.runtime.vfs import VirtualFileSystem

LIB = b"\x7fELF python-extension .so bytes"
RULES = [PathRule("/usr/lib/python/", ShieldPolicy.AUTHENTICATE)]


def make_runtime(cpu, allow_dlopen=True, fs_key=bytes(32), rules=RULES,
                 mode=SgxMode.HW):
    vfs = VirtualFileSystem()
    runtime = SconeRuntime(
        RuntimeConfig(
            name="python-app",
            mode=mode,
            fs_shield_enabled=mode is not SgxMode.NATIVE,
            fs_rules=rules,
            fs_key=fs_key if mode is not SgxMode.NATIVE else None,
            allow_dlopen=allow_dlopen,
        ),
        vfs,
        CM,
        cpu.clock,
        cpu=cpu if mode is not SgxMode.NATIVE else None,
        rng=DeterministicRng(0),
    )
    return runtime, vfs


def install_library(runtime, path="/usr/lib/python/_numpy.so"):
    """The image builder writes the library through the shield (so it
    carries authentication tags), as the secureTF packaging does."""
    runtime.fs.write_file(path, LIB)
    return path


def test_dlopen_disabled_by_default(cpu):
    runtime, _ = make_runtime(cpu, allow_dlopen=False)
    path = install_library(runtime)
    with pytest.raises(SecurityError):
        runtime.dlopen(path)


def test_dlopen_authenticated_library_loads(cpu):
    runtime, _ = make_runtime(cpu)
    path = install_library(runtime)
    assert runtime.dlopen(path) == LIB
    assert runtime.loaded_libraries == [path]


def test_dlopen_tampered_library_rejected(cpu):
    runtime, vfs = make_runtime(cpu)
    path = install_library(runtime)
    raw = bytearray(vfs.read(path).content)
    raw[-1] ^= 1
    vfs.tamper(path, bytes(raw))
    with pytest.raises(ShieldError):
        runtime.dlopen(path)
    assert runtime.loaded_libraries == []


def test_dlopen_unprotected_path_rejected(cpu):
    """A library outside any authenticated prefix is unverified code:
    loading it would let the OS inject arbitrary logic into the enclave."""
    runtime, vfs = make_runtime(cpu)
    vfs.write("/tmp/evil.so", LIB)
    with pytest.raises(SecurityError):
        runtime.dlopen("/tmp/evil.so")


def test_dlopen_without_shield_rejected(cpu):
    runtime, vfs = make_runtime(cpu, fs_key=None)  # key never provisioned
    vfs.write("/usr/lib/python/_numpy.so", LIB)
    with pytest.raises(SecurityError):
        runtime.dlopen("/usr/lib/python/_numpy.so")


def test_dlopen_native_is_unchecked(cpu):
    runtime, vfs = make_runtime(cpu, mode=SgxMode.NATIVE)
    vfs.write("/anywhere.so", LIB)
    assert runtime.dlopen("/anywhere.so") == LIB


def test_dlopen_encrypted_library_decrypts(cpu):
    rules = [PathRule("/secure/libs/", ShieldPolicy.ENCRYPT)]
    runtime, vfs = make_runtime(cpu, rules=rules)
    runtime.fs.write_file("/secure/libs/model_ops.so", LIB)
    assert LIB not in vfs.read("/secure/libs/model_ops.so").content
    assert runtime.dlopen("/secure/libs/model_ops.so") == LIB
