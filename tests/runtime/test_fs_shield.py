"""File-system shield: policies, integrity, freshness, cost accounting."""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro._sim import SimClock
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import FreshnessError, ShieldError
from repro.runtime.fs_shield import (
    FileSystemShield,
    LocalFreshnessTracker,
    PathRule,
    ShieldPolicy,
)
from repro.runtime.syscall import SyscallInterface
from repro.runtime.vfs import VirtualFileSystem

RULES = [
    PathRule("/secure/", ShieldPolicy.ENCRYPT),
    PathRule("/secure/public/", ShieldPolicy.AUTHENTICATE),
    PathRule("/auth/", ShieldPolicy.AUTHENTICATE),
]


def make_shield(freshness=None, chunk_size=1024, rules=RULES, key=None):
    vfs = VirtualFileSystem()
    clock = SimClock()
    syscalls = SyscallInterface(vfs, CM, clock, mode=SgxMode.NATIVE)
    shield = FileSystemShield(
        syscalls,
        key or bytes(range(32)),
        rules,
        CM,
        clock,
        chunk_size=chunk_size,
        freshness=freshness,
    )
    return shield, vfs, clock


def test_longest_prefix_policy_resolution():
    shield, _, _ = make_shield()
    assert shield.policy_for("/secure/model.bin") is ShieldPolicy.ENCRYPT
    assert shield.policy_for("/secure/public/readme") is ShieldPolicy.AUTHENTICATE
    assert shield.policy_for("/auth/log") is ShieldPolicy.AUTHENTICATE
    assert shield.policy_for("/tmp/scratch") is ShieldPolicy.PASSTHROUGH


def test_encrypt_roundtrip_and_ciphertext_on_disk():
    shield, vfs, _ = make_shield()
    plaintext = b"model weights " * 500
    shield.write_file("/secure/m", plaintext)
    assert shield.read_file("/secure/m") == plaintext
    raw = vfs.read("/secure/m").content
    assert b"model weights" not in raw


def test_authenticate_keeps_plaintext_but_detects_tamper():
    shield, vfs, _ = make_shield()
    shield.write_file("/auth/data", b"public but authenticated")
    raw = vfs.read("/auth/data").content
    assert b"public but authenticated" in raw
    vfs.tamper("/auth/data", raw.replace(b"public", b"forged"))
    with pytest.raises(ShieldError):
        shield.read_file("/auth/data")


def test_passthrough_untouched():
    shield, vfs, _ = make_shield()
    shield.write_file("/tmp/x", b"raw")
    assert vfs.read("/tmp/x").content == b"raw"
    assert shield.read_file("/tmp/x") == b"raw"


def test_every_chunk_tamper_detected():
    shield, vfs, _ = make_shield(chunk_size=64)
    shield.write_file("/secure/f", bytes(range(256)) * 2)
    raw = vfs.read("/secure/f").content
    for position in range(0, len(raw), 97):
        corrupted = bytearray(raw)
        corrupted[position] ^= 0xA5
        vfs.tamper("/secure/f", bytes(corrupted))
        with pytest.raises(ShieldError):
            shield.read_file("/secure/f")
        vfs.tamper("/secure/f", raw)


def test_chunk_swap_between_files_detected():
    """AAD binds path: moving a validly encrypted chunk across files fails."""
    shield, vfs, _ = make_shield(chunk_size=64)
    shield.write_file("/secure/a", b"A" * 200)
    shield.write_file("/secure/b", b"B" * 200)
    vfs.tamper("/secure/b", vfs.read("/secure/a").content)
    with pytest.raises(ShieldError):
        shield.read_file("/secure/b")


def test_cross_version_chunk_splice_detected():
    """Splicing an old version's chunks into the new envelope fails: the
    file version is bound into every chunk's AAD."""
    from repro.crypto import encoding

    shield, vfs, _ = make_shield(chunk_size=64)
    shield.write_file("/secure/f", b"version-zero" * 30)
    old_envelope = encoding.decode(vfs.read("/secure/f").content)
    shield.write_file("/secure/f", b"version-one!" * 30)
    new_envelope = encoding.decode(vfs.read("/secure/f").content)
    new_envelope["chunks"] = old_envelope["chunks"]
    vfs.tamper("/secure/f", encoding.encode(new_envelope))
    with pytest.raises(ShieldError):
        shield.read_file("/secure/f")


def test_rollback_detected_with_freshness_tracker():
    tracker = LocalFreshnessTracker()
    shield, vfs, _ = make_shield(freshness=tracker)
    shield.write_file("/secure/state", b"v0")
    snapshot = copy.deepcopy(vfs.read("/secure/state"))
    shield.write_file("/secure/state", b"v1")
    vfs.rollback("/secure/state", snapshot)
    with pytest.raises(FreshnessError):
        shield.read_file("/secure/state")


def test_rollback_undetected_without_tracker():
    """Documents the paper's layering: AEAD alone cannot stop rollback;
    that is exactly CAS's audit-service job."""
    shield, vfs, _ = make_shield(freshness=None)
    shield.write_file("/secure/state", b"v0")
    snapshot = copy.deepcopy(vfs.read("/secure/state"))
    shield.write_file("/secure/state", b"v1")
    vfs.rollback("/secure/state", snapshot)
    assert shield.read_file("/secure/state") == b"v0"  # silently stale


def test_local_tracker_monotonicity():
    tracker = LocalFreshnessTracker()
    tracker.commit("/f", 0, b"d0")
    tracker.commit("/f", 1, b"d1")
    with pytest.raises(FreshnessError):
        tracker.commit("/f", 1, b"d1-again")
    with pytest.raises(FreshnessError):
        tracker.verify("/f", 0, b"d0")
    with pytest.raises(FreshnessError):
        tracker.verify("/unknown", 0, b"")
    tracker.verify("/f", 1, b"d1")


def test_wrong_key_cannot_read():
    shield_a, vfs, clock = make_shield(key=b"a" * 32)
    shield_a.write_file("/secure/f", b"secret")
    syscalls = shield_a._syscalls
    shield_b = FileSystemShield(syscalls, b"b" * 32, RULES, CM, clock)
    with pytest.raises(ShieldError):
        shield_b.read_file("/secure/f")


def test_declared_size_charges_crypto_time():
    shield, _, clock = make_shield()
    before = clock.now
    shield.write_file("/secure/big", b"tiny", declared_size=40_000_000)
    elapsed = clock.now - before
    assert elapsed >= 40_000_000 / CM.fs_shield_crypto_bandwidth
    assert shield.stats.crypto_bytes >= 40_000_000


def test_empty_file_roundtrip():
    shield, _, _ = make_shield()
    shield.write_file("/secure/empty", b"")
    assert shield.read_file("/secure/empty") == b""


def test_shield_validation():
    vfs = VirtualFileSystem()
    clock = SimClock()
    syscalls = SyscallInterface(vfs, CM, clock)
    with pytest.raises(ShieldError):
        FileSystemShield(syscalls, bytes(16), RULES, CM, clock)
    with pytest.raises(ShieldError):
        FileSystemShield(syscalls, bytes(32), RULES, CM, clock, chunk_size=0)


def test_stat_and_exists_passthrough():
    shield, _, _ = make_shield()
    shield.write_file("/secure/f", b"x", declared_size=500)
    assert shield.stat("/secure/f") == 500
    assert shield.exists("/secure/f")
    assert not shield.exists("/secure/missing")


@settings(max_examples=20, deadline=None)
@given(
    st.binary(min_size=0, max_size=5000),
    st.integers(min_value=16, max_value=512),
)
def test_roundtrip_property(content, chunk_size):
    shield, _, _ = make_shield(chunk_size=chunk_size)
    shield.write_file("/secure/f", content)
    assert shield.read_file("/secure/f") == content


# ---------------------------------------------------------------------------
# Plaintext chunk cache: hits, invalidation, fail-closed behavior
# ---------------------------------------------------------------------------


def test_chunk_cache_serves_repeat_reads():
    shield, _, _ = make_shield()
    plaintext = b"weights " * 1000
    shield.write_file("/secure/m", plaintext)
    shield.drop_caches()  # forget the write-warmed entries
    assert shield.read_file("/secure/m") == plaintext
    opened_after_first = shield.stats.chunks_opened
    assert shield.stats.chunk_cache_hits == 0
    assert shield.read_file("/secure/m") == plaintext
    # Second read decrypted nothing: every chunk came from the cache.
    assert shield.stats.chunks_opened == opened_after_first
    assert shield.stats.chunk_cache_hits > 0


def test_write_warms_chunk_cache():
    shield, _, _ = make_shield()
    plaintext = b"model " * 700
    shield.write_file("/secure/m", plaintext)
    assert shield.read_file("/secure/m") == plaintext
    assert shield.stats.chunks_opened == 0
    assert shield.stats.chunk_cache_hits > 0


def test_chunk_cache_invalidated_by_rewrite():
    shield, _, _ = make_shield()
    shield.write_file("/secure/m", b"version one " * 300)
    assert shield.read_file("/secure/m") == b"version one " * 300
    shield.write_file("/secure/m", b"version two " * 300)
    # The version bump changes the cache key: stale chunks must not
    # leak into the new read.
    assert shield.read_file("/secure/m") == b"version two " * 300


def test_tampered_file_not_served_from_cache():
    shield, vfs, _ = make_shield()
    plaintext = b"sensitive " * 400
    shield.write_file("/secure/m", plaintext)
    assert shield.read_file("/secure/m") == plaintext  # caches chunks
    raw = bytearray(vfs.read("/secure/m").content)
    raw[len(raw) // 2] ^= 0x01
    vfs.write("/secure/m", bytes(raw))
    # The envelope digest differs, so cached plaintext cannot be used
    # and decryption of the tampered chunk must fail.
    with pytest.raises(ShieldError):
        shield.read_file("/secure/m")


def test_freshness_rejection_not_bypassed_by_cache():
    tracker = LocalFreshnessTracker()
    shield, vfs, _ = make_shield(freshness=tracker)
    shield.write_file("/secure/m", b"v0 " * 400)
    stale = vfs.read("/secure/m").content
    assert shield.read_file("/secure/m") == b"v0 " * 400  # caches chunks
    shield.write_file("/secure/m", b"v1 " * 400)
    vfs.write("/secure/m", stale)  # roll the file back on disk
    with pytest.raises(FreshnessError):
        shield.read_file("/secure/m")


def test_chunk_cache_respects_byte_capacity():
    vfs = VirtualFileSystem()
    clock = SimClock()
    syscalls = SyscallInterface(vfs, CM, clock, mode=SgxMode.NATIVE)
    shield = FileSystemShield(
        syscalls,
        bytes(range(32)),
        RULES,
        CM,
        clock,
        chunk_size=1024,
        chunk_cache_bytes=3 * 1024,
    )
    shield.write_file("/secure/big", bytes(10 * 1024))
    assert shield._chunk_cache_used <= 3 * 1024
    shield.drop_caches()
    shield.read_file("/secure/big")
    assert shield._chunk_cache_used <= 3 * 1024


def test_file_key_cached_per_path():
    shield, _, _ = make_shield()
    shield.write_file("/secure/a", b"x" * 100)
    assert shield.stats.key_cache_misses == 1
    shield.read_file("/secure/a")
    shield.write_file("/secure/a", b"y" * 100)
    assert shield.stats.key_cache_misses == 1
    assert shield.stats.key_cache_hits >= 1


def test_real_crypto_time_and_cipher_bytes_recorded():
    shield, _, _ = make_shield()
    plaintext = b"p" * 5000
    shield.write_file("/secure/m", plaintext)
    assert shield.stats.real_crypto_time > 0.0
    assert shield.stats.bytes_by_cipher.get("chacha20-poly1305") == len(plaintext)


# ---------------------------------------------------------------------------
# VFS mutation attacks: AUTHENTICATE-policy files and structural truncation
# ---------------------------------------------------------------------------


def test_authenticate_every_byte_mutation_fails_closed():
    """Flipping any byte of an AUTHENTICATE-policy file's stored bytes —
    chunk body, MAC, or envelope framing — must raise IntegrityError
    (ShieldError is one), never return modified plaintext."""
    from repro.errors import IntegrityError

    shield, vfs, _ = make_shield(chunk_size=64)
    shield.write_file("/auth/cfg", b"threshold=42;" * 20)
    raw = vfs.read("/auth/cfg").content
    for position in range(0, len(raw), 41):
        corrupted = bytearray(raw)
        corrupted[position] ^= 0x80
        vfs.tamper("/auth/cfg", bytes(corrupted))
        with pytest.raises(IntegrityError):
            shield.read_file("/auth/cfg")
        vfs.tamper("/auth/cfg", raw)
    assert shield.read_file("/auth/cfg") == b"threshold=42;" * 20


def test_authenticate_chunk_reorder_detected():
    """Swapping two validly MAC'd chunks is a mutation attack the index
    in the AAD must catch."""
    from repro.crypto import encoding
    from repro.errors import IntegrityError

    shield, vfs, _ = make_shield(chunk_size=64)
    shield.write_file("/auth/cfg", bytes(range(256)))
    envelope = encoding.decode(vfs.read("/auth/cfg").content)
    envelope["chunks"][0], envelope["chunks"][1] = (
        envelope["chunks"][1],
        envelope["chunks"][0],
    )
    vfs.tamper("/auth/cfg", encoding.encode(envelope))
    with pytest.raises(IntegrityError):
        shield.read_file("/auth/cfg")


@pytest.mark.parametrize("prefix", ["/secure/f", "/auth/f"])
def test_last_chunk_truncation_attack_detected(prefix):
    """Dropping the last chunk AND shrinking the declared chunk count is
    the classic truncation forgery: every remaining chunk still carries a
    valid MAC, but its AAD binds n_chunks, so the shrink fails closed."""
    from repro.crypto import encoding
    from repro.errors import IntegrityError

    shield, vfs, _ = make_shield(chunk_size=64)
    shield.write_file(prefix, bytes(range(256)))  # 4 chunks
    envelope = encoding.decode(vfs.read(prefix).content)
    assert len(envelope["chunks"]) == 4
    envelope["chunks"] = envelope["chunks"][:-1]
    envelope["plaintext_size"] = 192  # a consistent-looking shrink
    vfs.tamper(prefix, encoding.encode(envelope))
    with pytest.raises(IntegrityError):
        shield.read_file(prefix)


def test_journaled_last_chunk_truncation_detected():
    """The journaled layout's equivalent: shrink n_chunks + chunk_digests
    in a re-MAC'd... impossible — the manifest MAC is keyed.  An attacker
    without the key can only replay the whole old manifest (freshness
    catches it) or corrupt it (MAC catches it).  Verify the corrupt-path:
    a manifest with the last digest dropped fails authentication."""
    from repro.crypto import encoding
    from repro.errors import IntegrityError

    shield, vfs, _ = make_shield(chunk_size=64)
    journaled = FileSystemShield(
        shield._syscalls,
        bytes(range(32)),
        RULES,
        CM,
        SimClock(),
        chunk_size=64,
        replicas=2,
    )
    journaled.write_file("/secure/j", bytes(range(256)))
    envelope = encoding.decode(vfs.read("/secure/j").content)
    body = encoding.decode(envelope["body"])
    body["n_chunks"] = 3
    body["chunk_digests"] = body["chunk_digests"][:-1]
    body["plaintext_size"] = 192
    envelope["body"] = encoding.encode(body)  # MAC now stale
    vfs.tamper("/secure/j", encoding.encode(envelope))
    journaled.drop_caches()
    with pytest.raises(IntegrityError):
        journaled.read_file("/secure/j")
