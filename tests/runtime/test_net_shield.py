"""Network shield: channel establishment, protection, cost accounting."""

import pytest

from repro._sim import DeterministicRng, SimClock
from repro.crypto.certs import CertificateAuthority
from repro.crypto.ed25519 import Ed25519PrivateKey
from repro.crypto.tls import TlsIdentity
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.errors import IntegrityError, ShieldError
from repro.runtime.net_shield import (
    NetworkShield,
    establish_pair,
    transport_pair,
)


@pytest.fixture
def ca(rng):
    return CertificateAuthority("root", Ed25519PrivateKey(rng.random_bytes(32)))


def make_shield(ca, rng, clock, name):
    key = Ed25519PrivateKey(rng.random_bytes(32))
    cert = ca.issue(name, key.public_key().public_bytes(), rng.random_bytes(32), now=0.0)
    return NetworkShield(
        TlsIdentity(key, cert), [ca.public_key()], CM, clock, rng.child(name)
    )


def test_establish_and_exchange(ca, rng, clock):
    a = make_shield(ca, rng, clock, "alice")
    b = make_shield(ca, rng, clock, "bob")
    chan_a, chan_b = establish_pair(a, b, expected_server="bob")
    chan_a.send(b"gradients")
    assert chan_b.recv() == b"gradients"
    chan_b.send(b"weights")
    assert chan_a.recv() == b"weights"
    assert chan_a.peer_subject == "bob"
    assert chan_b.peer_subject == "alice"
    assert a.stats.handshakes == 1
    assert b.stats.handshakes == 1


def test_crypto_time_charged(ca, rng, clock):
    a = make_shield(ca, rng, clock, "alice")
    b = make_shield(ca, rng, clock, "bob")
    chan_a, chan_b = establish_pair(a, b)
    before = clock.now
    chan_a.send(b"x", declared_size=10_000_000)
    chan_b.recv(declared_size=10_000_000)
    elapsed = clock.now - before
    assert elapsed >= 2 * 10_000_000 / CM.net_shield_crypto_bandwidth
    assert a.stats.crypto_bytes == 10_000_000


def test_wire_bytes_are_ciphertext(ca, rng, clock):
    a = make_shield(ca, rng, clock, "alice")
    b = make_shield(ca, rng, clock, "bob")
    a_end, b_end = transport_pair()
    client = a.client_handshake()
    server = b.server_handshake()
    server.complete(client.finish(server.respond(client.hello())))
    chan_a = client.channel(a_end)
    chan_a.send(b"plaintext-secret")
    wire = b_end.recv()
    assert b"plaintext-secret" not in wire


def test_tampered_record_detected(ca, rng, clock):
    a = make_shield(ca, rng, clock, "alice")
    b = make_shield(ca, rng, clock, "bob")
    a_end, b_end = transport_pair()
    client = a.client_handshake()
    server = b.server_handshake()
    server.complete(client.finish(server.respond(client.hello())))
    chan_a = client.channel(a_end)
    chan_b = server.channel(b_end)
    chan_a.send(b"data")
    # Dolev-Yao: flip a bit in flight.
    record = bytearray(b_end._in.popleft())
    record[-2] ^= 1
    b_end._in.appendleft(bytes(record))
    with pytest.raises(IntegrityError):
        chan_b.recv()


def test_recv_on_empty_transport_fails(ca, rng, clock):
    a = make_shield(ca, rng, clock, "alice")
    b = make_shield(ca, rng, clock, "bob")
    _, chan_b = establish_pair(a, b)
    with pytest.raises(ShieldError):
        chan_b.recv()


def test_record_counters(ca, rng, clock):
    a = make_shield(ca, rng, clock, "alice")
    b = make_shield(ca, rng, clock, "bob")
    chan_a, chan_b = establish_pair(a, b)
    for i in range(5):
        chan_a.send(bytes([i]))
        chan_b.recv()
    assert a.stats.records_protected == 5
    assert b.stats.records_opened == 5
