"""User-level scheduler and the SCONE runtime facade."""

import pytest

from repro._sim import DeterministicRng, SimClock
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import ConfigurationError, EnclaveError
from repro.runtime.libc import GLIBC, MUSL, SCONE_LIBC
from repro.runtime.scone import (
    RuntimeConfig,
    SconeRuntime,
    build_enclave_image,
    expected_measurement,
)
from repro.runtime.threading_ul import ThreadingModel, UserLevelScheduler
from repro.runtime.vfs import VirtualFileSystem


# --- Scheduler ----------------------------------------------------------------


def test_userlevel_block_cheaper_than_os(clock):
    ul = UserLevelScheduler(CM, clock, threading_model=ThreadingModel.USER_LEVEL)
    before = clock.now
    ul.block()
    ul_cost = clock.now - before
    os_sched = UserLevelScheduler(CM, clock, threading_model=ThreadingModel.OS)
    before = clock.now
    os_sched.block()
    os_cost = clock.now - before
    assert ul_cost < os_cost
    assert ul.stats.blocks == 1


def test_os_threading_in_hw_charges_transitions(cpu, clock):
    from repro.enclave.sgx import EnclaveImage, Segment

    enclave = cpu.create_enclave(
        EnclaveImage("a", [Segment.from_content("b", b"x", "code")]), SgxMode.HW
    )
    sched = UserLevelScheduler(
        CM, clock, mode=SgxMode.HW, threading_model=ThreadingModel.OS, enclave=enclave
    )
    transitions_before = cpu.transitions
    sched.block()
    assert cpu.transitions == transitions_before + 1


def test_parallel_duration_uses_speedup(clock):
    sched = UserLevelScheduler(CM, clock)
    one = sched.parallel_duration(8.0, 1)
    four = sched.parallel_duration(8.0, 4)
    assert one == pytest.approx(8.0)
    assert four < one / 3
    with pytest.raises(ConfigurationError):
        sched.parallel_duration(-1.0, 2)


def test_run_parallel_charges_clock(clock):
    sched = UserLevelScheduler(CM, clock)
    elapsed = sched.run_parallel(1.0, 2)
    assert clock.now == pytest.approx(elapsed)


# --- SconeRuntime ---------------------------------------------------------------


def make_runtime(mode, cpu=None, clock=None, **config_kwargs):
    clock = clock or (cpu.clock if cpu else SimClock())
    config = RuntimeConfig(
        name="app", mode=mode, fs_shield_enabled=False, **config_kwargs
    )
    return SconeRuntime(
        config,
        VirtualFileSystem(),
        CM,
        clock,
        cpu=cpu,
        rng=DeterministicRng(0),
    )


def test_native_runtime_defaults_to_glibc():
    runtime = make_runtime(SgxMode.NATIVE)
    assert runtime.libc is GLIBC
    assert runtime.compute_factor == 1.0
    assert not runtime.memory.encrypted


def test_enclave_modes_default_to_scone_libc(cpu):
    assert make_runtime(SgxMode.HW, cpu).libc is SCONE_LIBC
    assert make_runtime(SgxMode.SIM, cpu).libc is SCONE_LIBC


def test_glibc_forbidden_inside_scone(cpu):
    with pytest.raises(ConfigurationError):
        make_runtime(SgxMode.HW, cpu, libc=GLIBC)


def test_enclave_modes_need_cpu():
    with pytest.raises(ConfigurationError):
        make_runtime(SgxMode.HW, cpu=None)


def test_native_has_no_measurement_or_quote():
    runtime = make_runtime(SgxMode.NATIVE)
    with pytest.raises(EnclaveError):
        _ = runtime.measurement
    with pytest.raises(EnclaveError):
        runtime.attest()


def test_expected_measurement_matches_running_enclave(cpu):
    config = RuntimeConfig(name="svc", mode=SgxMode.HW, fs_shield_enabled=False)
    runtime = SconeRuntime(
        config, VirtualFileSystem(), CM, cpu.clock, cpu=cpu, rng=DeterministicRng(0)
    )
    assert expected_measurement(config) == runtime.measurement


def test_measurement_sensitive_to_binary_identity(cpu):
    a = RuntimeConfig(name="svc", mode=SgxMode.HW, binary_identity=b"v1")
    b = RuntimeConfig(name="svc", mode=SgxMode.HW, binary_identity=b"v2")
    assert expected_measurement(a) != expected_measurement(b)
    assert build_enclave_image(a).segments[0].digest != build_enclave_image(
        b
    ).segments[0].digest


def test_install_fs_key_post_provisioning(cpu):
    config = RuntimeConfig(
        name="svc", mode=SgxMode.HW, fs_shield_enabled=True, fs_rules=[]
    )
    runtime = SconeRuntime(
        config, VirtualFileSystem(), CM, cpu.clock, cpu=cpu, rng=DeterministicRng(0)
    )
    assert runtime.fs is None  # key not yet provisioned
    runtime.install_fs_key(bytes(32))
    assert runtime.fs is not None


def test_install_fs_key_rejected_when_disabled(cpu):
    runtime = make_runtime(SgxMode.HW, cpu)
    with pytest.raises(ConfigurationError):
        runtime.install_fs_key(bytes(32))


def test_read_write_protected_fallback_to_plain(cpu):
    runtime = make_runtime(SgxMode.HW, cpu)
    runtime.write_protected("/f", b"data")
    assert runtime.read_protected("/f") == b"data"


def test_shutdown_destroys_enclave(cpu):
    runtime = make_runtime(SgxMode.HW, cpu)
    enclave = runtime.enclave
    runtime.shutdown()
    assert runtime.enclave is None
    assert not enclave.alive


def test_sim_quote_is_debug(cpu):
    runtime = make_runtime(SgxMode.SIM, cpu)
    assert runtime.attest().report.debug is True
