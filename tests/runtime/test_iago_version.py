"""Iago defence on the version syscall (nonce-reuse attack surface)."""

import pytest

from repro._sim import SimClock
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import IagoError
from repro.runtime.fs_shield import FileSystemShield, PathRule, ShieldPolicy
from repro.runtime.syscall import SyscallInterface
from repro.runtime.vfs import VirtualFileSystem


def make_shield():
    vfs = VirtualFileSystem()
    clock = SimClock()
    syscalls = SyscallInterface(vfs, CM, clock, mode=SgxMode.NATIVE)
    shield = FileSystemShield(
        syscalls,
        bytes(32),
        [PathRule("/s/", ShieldPolicy.ENCRYPT)],
        CM,
        clock,
    )
    return shield, syscalls, vfs


def test_next_version_increments():
    shield, syscalls, _ = make_shield()
    assert syscalls.next_version("/s/f") == 0
    shield.write_file("/s/f", b"v0")
    assert syscalls.next_version("/s/f") == 1
    shield.write_file("/s/f", b"v1")
    assert syscalls.next_version("/s/f") == 2


def test_negative_version_from_kernel_rejected():
    shield, syscalls, _ = make_shield()
    shield.write_file("/s/f", b"v0")
    syscalls.hostile_hook = lambda name, res: -1 if name == "version" else res
    with pytest.raises(IagoError):
        syscalls.next_version("/s/f")


def test_stale_version_from_kernel_cannot_force_nonce_reuse():
    """A kernel reporting an old version must not trick the shield into
    reusing a (key, nonce=version||chunk) pair for different plaintext —
    the in-enclave version floor prevents it."""
    shield, syscalls, vfs = make_shield()
    shield.write_file("/s/f", b"content-v0")
    # The kernel lies: claims the next write is version 0 again.
    syscalls.hostile_hook = lambda name, res: 0 if name == "version" else res
    shield.write_file("/s/f", b"content-v1")
    syscalls.hostile_hook = None
    # The shield's internal counter won: the second write is version 1.
    from repro.crypto import encoding

    envelope = encoding.decode(vfs.read("/s/f").content)
    assert envelope["version"] == 1
    assert shield.read_file("/s/f") == b"content-v1"
