"""The exit-less syscall plane: ring edge cases, fallback, determinism.

Covers the mechanistic behaviours that replaced the analytic constants:
ring-full backpressure, batched submission flushing when the scheduler
blocks, handler starvation falling back to synchronous transitions,
futex-style handler wake-ups, occupancy-derived overlap, Iago checks on
the async path, the deprecated-constant aliases, and the byte-identical
determinism the chaos/crash replay suites depend on.
"""

import pytest

from repro._sim import SimClock
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import EnclaveImage, Segment, SgxMode
from repro.errors import ConfigurationError, IagoError
from repro.runtime.syscall import SyscallInterface, SyscallStats
from repro.runtime.syscall_plane import (
    SyscallPlane,
    SyscallPlaneConfig,
    measured_plane_fractions,
)
from repro.runtime.threading_ul import UserLevelScheduler
from repro.runtime.vfs import VirtualFile, VirtualFileSystem


def make_plane(**config_kwargs):
    clock = SimClock()
    stats = SyscallStats()
    plane = SyscallPlane(
        CM, clock, stats, config=SyscallPlaneConfig(**config_kwargs)
    )
    return plane, stats, clock


def make_hw_interface(cpu, asynchronous=True, vfs=None):
    image = EnclaveImage("app", [Segment.from_content("b", b"x", "code")])
    enclave = cpu.create_enclave(image, SgxMode.HW)
    return SyscallInterface(
        vfs if vfs is not None else VirtualFileSystem(),
        CM,
        cpu.clock,
        mode=SgxMode.HW,
        enclave=enclave,
        asynchronous=asynchronous,
    )


# --- Config validation -------------------------------------------------------


def test_plane_config_rejects_bad_shapes():
    with pytest.raises(ConfigurationError):
        SyscallPlaneConfig(ring_depth=0)
    with pytest.raises(ConfigurationError):
        SyscallPlaneConfig(handler_threads=-1)
    with pytest.raises(ConfigurationError):
        SyscallPlaneConfig(batch_max=0)


# --- Ring-full backpressure --------------------------------------------------


def test_ring_full_backpressure_stalls_submitter():
    # One slow handler, four slots, sixteen posted writes: submissions
    # outrun completions and the submitter must stall on a full ring.
    plane, stats, _ = make_plane(ring_depth=4, handler_threads=1, batch_max=64)
    for _ in range(16):
        plane.post("write")
    plane.flush()
    assert stats.ring_submissions == 16
    assert stats.backpressure_stalls > 0
    assert stats.backpressure_time > 0.0


def test_ring_depth_bounds_occupancy():
    plane, stats, _ = make_plane(ring_depth=4, handler_threads=1, batch_max=64)
    for _ in range(16):
        plane.post("write")
    plane.flush()
    assert 0 < stats.ring_occupancy_peak <= 4


def test_deeper_ring_stalls_less():
    shallow, shallow_stats, _ = make_plane(
        ring_depth=2, handler_threads=1, batch_max=64
    )
    deep, deep_stats, _ = make_plane(
        ring_depth=64, handler_threads=1, batch_max=64
    )
    for plane in (shallow, deep):
        for _ in range(32):
            plane.post("write")
        plane.flush()
    assert shallow_stats.backpressure_stalls > deep_stats.backpressure_stalls


# --- Batched submission ------------------------------------------------------


def test_scheduler_block_flushes_pending_batch():
    plane, stats, clock = make_plane()
    scheduler = UserLevelScheduler(CM, clock)
    plane.attach_scheduler(scheduler)
    scheduler.attach_plane(plane)

    for _ in range(3):
        plane.post("write")
    assert stats.ring_submissions == 0  # still buffered
    scheduler.block()
    assert stats.ring_submissions == 3
    assert stats.flushes_on_block == 1
    assert stats.batches == 1
    assert stats.max_batch == 3


def test_batch_overflow_forces_flush():
    plane, stats, _ = make_plane(batch_max=8)
    for _ in range(8):
        plane.post("write")
    assert stats.ring_submissions == 8  # hit batch_max -> auto-flush
    assert stats.batches == 1


def test_result_bearing_call_flushes_batch_first():
    plane, stats, _ = make_plane(handler_threads=4)
    plane.post("write")
    plane.post("write")
    plane.call("read")
    # Both posted writes reached the ring before (or with) the read.
    assert stats.ring_submissions == 3


# --- Handler starvation -> synchronous fallback ------------------------------


def test_zero_handlers_always_falls_back_to_sync():
    plane, stats, _ = make_plane(handler_threads=0)
    plane.call("read")
    plane.post("write")
    assert stats.sync_fallbacks == 2
    assert stats.ring_submissions == 0


def test_busy_single_handler_starves_result_bearing_call():
    # The lone handler is busy further into the future than a classic
    # trap costs, so the read takes the old-fashioned exit.
    plane, stats, _ = make_plane(handler_threads=1)
    plane.post("write")
    plane.call("read")
    assert stats.sync_fallbacks == 1
    assert stats.ring_submissions == 1  # only the posted write rode the ring


def test_second_handler_prevents_starvation():
    plane, stats, _ = make_plane(handler_threads=2)
    plane.post("write")
    plane.call("read")
    assert stats.sync_fallbacks == 0
    assert stats.ring_submissions == 2


# --- Handler sleep/wake ------------------------------------------------------


def test_idle_handler_needs_wakeup():
    plane, stats, clock = make_plane()
    plane.call("read")
    first_wakeups = stats.handler_wakeups
    clock.advance(100 * CM.handler_spin_time)
    plane.call("read")
    assert stats.handler_wakeups == first_wakeups + 1


def test_busy_handlers_need_no_wakeup():
    plane, stats, _ = make_plane(handler_threads=1)
    for _ in range(50):
        plane.call("read")
    # Back-to-back traffic keeps the handler spinning: no futex wake.
    assert stats.handler_wakeups == 0


def test_hw_wakeup_charges_real_transition(cpu):
    syscalls = make_hw_interface(cpu)
    cpu.clock.advance(100 * CM.handler_spin_time)
    transitions_before = cpu.transitions
    syscalls.nop_syscall("read")
    assert syscalls.stats.handler_wakeups >= 1
    assert cpu.transitions > transitions_before


# --- Occupancy-derived overlap -----------------------------------------------


def test_lone_thread_hides_nothing():
    plane, stats, clock = make_plane()
    scheduler = UserLevelScheduler(CM, clock)  # runnable defaults to 1
    plane.attach_scheduler(scheduler)
    plane.call("read")
    assert stats.overlap_hidden_time == 0.0
    assert stats.overlap_exposed_time > 0.0


def test_overlap_grows_with_runnable_threads():
    fractions = {}
    for runnable in (2, 8):
        plane, stats, clock = make_plane()
        scheduler = UserLevelScheduler(CM, clock)
        scheduler.set_runnable(runnable)
        plane.attach_scheduler(scheduler)
        for _ in range(20):
            plane.call("read")
        total = stats.overlap_hidden_time + stats.overlap_exposed_time
        fractions[runnable] = stats.overlap_hidden_time / total
    assert 0.0 < fractions[2] < fractions[8] < 1.0


# --- Iago defences on the async path -----------------------------------------


def test_iago_hostile_read_rejected_on_async_path(cpu):
    vfs = VirtualFileSystem()
    syscalls = make_hw_interface(cpu, asynchronous=True, vfs=vfs)
    assert syscalls.plane is not None  # the ring really is in play
    vfs.write("/f", b"data")
    syscalls.hostile_hook = lambda name, res: (
        VirtualFile("/f", content=b"data" * 100, declared_size=4)
        if name == "read"
        else res
    )
    with pytest.raises(IagoError):
        syscalls.read_file("/f")


def test_iago_hostile_write_count_rejected_on_async_path(cpu):
    syscalls = make_hw_interface(cpu, asynchronous=True)
    syscalls.hostile_hook = lambda name, res: (
        res + 100 if name == "write" else res
    )
    with pytest.raises(IagoError):
        syscalls.write_file("/f", b"data")


# --- Deprecated analytic constants -------------------------------------------


def test_legacy_userspace_fraction_warns_and_is_measured():
    import repro.runtime.syscall as syscall_module

    with pytest.warns(DeprecationWarning):
        fraction = syscall_module.USERSPACE_HANDLED_FRACTION
    assert fraction == measured_plane_fractions()["userspace_handled_fraction"]
    assert 0.0 < fraction < 1.0


def test_legacy_kernel_overlap_warns_and_is_measured():
    import repro.runtime.syscall as syscall_module

    with pytest.warns(DeprecationWarning):
        overlap = syscall_module.ASYNC_KERNEL_OVERLAP
    assert overlap == measured_plane_fractions()["kernel_overlap"]
    assert 0.0 < overlap < 1.0


def test_unknown_module_attribute_still_raises():
    import repro.runtime.syscall as syscall_module

    with pytest.raises(AttributeError):
        syscall_module.NO_SUCH_CONSTANT


# --- Determinism regression --------------------------------------------------


def _reference_run():
    """One fixed workload over a fresh SIM interface + scheduler."""
    vfs = VirtualFileSystem()
    clock = SimClock()
    syscalls = SyscallInterface(vfs, CM, clock, mode=SgxMode.SIM)
    scheduler = UserLevelScheduler(CM, clock)
    syscalls.attach_scheduler(scheduler)

    syscalls.write_file("/big", b"x" * (3 * 256 * 1024))
    syscalls.read_file("/big")
    scheduler.run_parallel(0.001, 8)
    for name in ("futex", "clock_gettime", "read", "write", "mmap") * 10:
        syscalls.nop_syscall(name)
    syscalls.socket_send(600_000)
    syscalls.socket_recv(600_000)
    scheduler.block()
    syscalls.unlink("/big")
    syscalls.flush()
    return syscalls.stats, clock.now


def test_identical_runs_produce_identical_stats():
    stats_a, now_a = _reference_run()
    stats_b, now_b = _reference_run()
    assert stats_a == stats_b  # dataclass equality: every counter, every float
    assert now_a == now_b
