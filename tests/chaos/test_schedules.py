"""Fault-schedule enumeration: identity, seeds, and the campaign floor."""

import pytest

from repro.chaos import (
    FAMILIES,
    FAULT_KINDS,
    FaultSchedule,
    STEPS_PER_FAMILY,
    default_campaign,
    enumerate_schedules,
)


def test_default_campaign_meets_the_schedule_floor():
    campaign = default_campaign()
    # The acceptance floor: a sweep of at least 200 distinct schedules
    # across all three leader roles.
    assert len(campaign) >= 200
    assert len({s.schedule_id for s in campaign}) == len(campaign)
    assert {s.family for s in campaign} == set(FAMILIES)
    assert {s.kind for s in campaign} == set(FAULT_KINDS)
    assert {s.crash_step for s in campaign} == set(range(STEPS_PER_FAMILY))
    assert {s.duplicate_storm for s in campaign} == {False, True}


def test_enumeration_order_is_deterministic():
    assert list(enumerate_schedules()) == list(enumerate_schedules())


def test_schedule_ids_and_seeds_are_stable():
    s = FaultSchedule("cas-failover", 3, "partition-inbound", True)
    assert s.schedule_id == "cas-failover/step3/partition-inbound+dup"
    # CRC32 of the id string: immune to process-randomized hashing, so
    # a schedule replays from its identity alone.
    assert s.seed == FaultSchedule(
        "cas-failover", 3, "partition-inbound", True
    ).seed
    other = FaultSchedule("cas-failover", 3, "partition-inbound", False)
    assert s.seed != other.seed


def test_partition_direction_mapping():
    mk = lambda kind: FaultSchedule("ps-restart", 0, kind, False)
    assert mk("partition-both").partition_direction == "both"
    assert mk("partition-inbound").partition_direction == "inbound"
    assert mk("partition-outbound").partition_direction == "outbound"
    assert mk("crash").is_crash
    assert not mk("partition-both").is_crash


def test_invalid_schedules_rejected():
    with pytest.raises(ValueError):
        FaultSchedule("cas-failover", 0, "meteor-strike", False)
    with pytest.raises(ValueError):
        FaultSchedule("cas-failover", -1, "crash", False)
