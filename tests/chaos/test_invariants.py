"""Invariant checkers are exercised against hand-built histories — the
checkers must be provably able to catch each violation class, or a
green campaign proves nothing."""

from repro.chaos import History, check
from repro.chaos.invariants import (
    admitted_equals_terminal,
    at_most_once,
    no_acked_write_loss,
    single_writer_per_epoch,
    unique_counter_issue,
)


def test_no_acked_write_loss_detects_a_lost_ack():
    h = History()
    h.record("ack", "client", "op1")
    h.record("ack", "client", "op2")
    h.record("durable", "readout", "op1")
    violations = no_acked_write_loss(h)
    assert len(violations) == 1
    assert "op2" in violations[0]


def test_no_acked_write_loss_passes_when_every_ack_is_durable():
    h = History()
    h.record("ack", "client", "op1")
    h.record("durable", "readout", "op1")
    h.record("durable", "readout", "op2")  # extra durability is fine
    assert no_acked_write_loss(h) == []


def test_at_most_once_detects_double_execution():
    h = History()
    h.record("execute", "replica-0", "r1")
    h.record("execute", "replica-1", "r1")  # same op, second acceptor
    h.record("execute", "replica-0", "r2")
    violations = at_most_once(h)
    assert len(violations) == 1
    assert "'r1' executed 2 times" in violations[0]


def test_single_writer_detects_the_zombie_commit():
    h = History()
    h.record("promote", "leader-a", "cas-primary")
    h.record("commit", "leader-a", "seal/1", role="cas-primary")
    h.record("promote", "leader-b", "cas-primary")
    h.record("commit", "leader-b", "seal/2", role="cas-primary")
    h.record("commit", "leader-a", "seal/3", role="cas-primary")  # zombie
    violations = single_writer_per_epoch(h)
    assert len(violations) == 1
    assert "leader-a" in violations[0]
    assert "leader-b" in violations[0]


def test_single_writer_ignores_unroled_commits():
    h = History()
    h.record("promote", "a", "r")
    h.record("commit", "b", "x")  # no role: not leader-authored state
    assert single_writer_per_epoch(h) == []


def test_unique_counter_issue_detects_double_issue():
    h = History()
    h.record("issue", "a", "7", role="cas-primary")
    h.record("issue", "b", "7", role="cas-primary")
    h.record("issue", "b", "8", role="cas-primary")
    violations = unique_counter_issue(h)
    assert len(violations) == 1
    assert "'7' issued 2 times" in violations[0]


def test_unique_counter_issue_scoped_per_role():
    h = History()
    h.record("issue", "a", "7", role="cas-primary")
    h.record("issue", "b", "7", role="ps")  # different role, fine
    assert unique_counter_issue(h) == []


def test_admitted_equals_terminal():
    h = History()
    h.record("admit", "client", "r1")
    h.record("terminal", "client", "r1")
    assert admitted_equals_terminal(h) == []
    h.record("admit", "client", "r2")  # dangling
    assert len(admitted_equals_terminal(h)) == 1


def test_check_prefixes_violations_with_invariant_name():
    h = History()
    h.record("ack", "client", "lost")
    violations = check(h, ["no-acked-write-loss", "at-most-once"])
    assert violations == [
        "[no-acked-write-loss] acked write 'lost' (by client) is not durable"
    ]


def test_history_trace_is_canonical_and_ordered():
    h = History()
    h.record("admit", "c", "r1", time=1.5)
    h.record("commit", "l", "s", epoch=2, role="cas-primary", value="x")
    assert h.trace_bytes() == (
        b"0 1.500000 admit c r1\n"
        b"1 0.000000 commit l s v=x e=2 r=cas-primary"
    )
