"""Chaos campaigns over the epoch-fenced control plane.

Tier-1 keeps a fast representative slice (one partition schedule per
family, both fencing settings, replay identity).  The exhaustive
``chaos_campaign``-marked sweeps run the full 288-schedule grid in both
configurations and assert the acceptance shape end to end:

- fencing ON  → zero invariant violations across the whole grid;
- fencing OFF → the same grid reproduces split-brain violations;
- every schedule replays byte-identically from its identity seed.
"""

import pytest

from repro.chaos import (
    FAMILIES,
    FaultSchedule,
    default_campaign,
    run_campaign,
    run_schedule,
)

ZOMBIE_SCHEDULES = [
    FaultSchedule("cas-failover", 2, "partition-outbound", False),
    FaultSchedule("ps-restart", 3, "partition-inbound", False),
    FaultSchedule("router-handoff", 4, "partition-both", False),
    FaultSchedule("sharded-ps", 5, "partition-outbound", False),
]


# -- tier-1 slice ----------------------------------------------------------


@pytest.mark.parametrize(
    "schedule", ZOMBIE_SCHEDULES, ids=lambda s: s.schedule_id
)
def test_fencing_holds_and_its_absence_is_detected(schedule):
    fenced = run_schedule(schedule, fencing=True)
    assert fenced.violations == ()
    # The fence actually fired (the zombie tried and was told no) —
    # a run where nothing was fenced proves nothing about fencing.
    assert fenced.history.of_kind("fenced")

    unfenced = run_schedule(schedule, fencing=False)
    assert unfenced.violations
    assert any("single-writer-per-epoch" in v for v in unfenced.violations)


@pytest.mark.parametrize(
    "schedule", ZOMBIE_SCHEDULES, ids=lambda s: s.schedule_id
)
@pytest.mark.parametrize("fencing", [True, False], ids=["fenced", "unfenced"])
def test_schedules_replay_byte_identically(schedule, fencing):
    first = run_schedule(schedule, fencing=fencing)
    second = run_schedule(schedule, fencing=fencing)
    assert first.trace == second.trace
    assert first.violations == second.violations


def test_crash_schedules_are_clean_in_both_configs():
    # A genuinely dead leader cannot be a zombie: crash-kind schedules
    # must hold the invariants even without fencing — if they did not,
    # the unfenced violations would be measuring harness bugs, not
    # split-brain.
    for family in FAMILIES:
        schedule = FaultSchedule(family, 2, "crash", False)
        assert run_schedule(schedule, fencing=True).violations == ()
        assert run_schedule(schedule, fencing=False).violations == ()


def test_duplicate_storms_do_not_break_dedup():
    # Delivery duplication alone (fencing on, so no zombie damage) must
    # be fully absorbed by the at-most-once dedup windows.
    for family in FAMILIES:
        schedule = FaultSchedule(family, 3, "partition-both", True)
        run = run_schedule(schedule, fencing=True)
        assert run.violations == ()


# -- exhaustive sweeps (tier 2) -------------------------------------------


@pytest.mark.chaos_campaign
def test_full_campaign_with_fencing_finds_zero_violations():
    campaign = default_campaign()
    assert len(campaign) >= 200  # the acceptance floor
    report = run_campaign(campaign, fencing=True, verify_replay=True)
    assert report.schedules_run == len(campaign)
    assert report.violations == []
    assert report.replay_mismatches == []
    # Every partition schedule exercised the fence at least once.
    assert report.fenced_ops >= sum(
        1 for s in campaign if not s.is_crash
    )


@pytest.mark.chaos_campaign
def test_full_campaign_without_fencing_reproduces_split_brain():
    campaign = default_campaign()
    report = run_campaign(campaign, fencing=False, verify_replay=True)
    assert report.replay_mismatches == []
    by_invariant = report.violations_by_invariant()
    # Every partition schedule (27 steps x 3 directions x 2 storms per
    # family would over-count; what matters: the zombie commits) is a
    # split-brain; crash schedules stay clean.
    assert by_invariant.get("single-writer-per-epoch", 0) > 0
    assert by_invariant.get("no-acked-write-loss", 0) > 0
    assert by_invariant.get("unique-counter-issue", 0) > 0
    violating_families = {
        o.schedule.family for o in report.violating_schedules
    }
    assert violating_families == set(FAMILIES)
    for outcome in report.outcomes:
        if outcome.schedule.is_crash:
            assert outcome.violations == ()
        else:
            assert outcome.violations
