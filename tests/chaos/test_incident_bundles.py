"""Chaos campaigns as incident producers: one deterministic bundle per
schedule, naming the injected fault.

The acceptance shape ISSUE 10 adds to the chaos plane: every unfenced
schedule whose invariants break yields exactly one bundle triggered by
the **first violation**, every fenced fault-injection yields one bundle
triggered by the injection itself, and re-running a campaign from the
same identity seeds reproduces byte-identical bundles.
"""

import json

import pytest

from repro.chaos import FAMILIES, FaultSchedule, run_campaign

pytestmark = pytest.mark.monitoring

# One partition schedule per family: the tier-1 slice that provably
# splits the brain when unfenced (same shape as test_campaign.py).
SCHEDULES = [
    FaultSchedule("cas-failover", 2, "partition-outbound", False),
    FaultSchedule("ps-restart", 3, "partition-inbound", False),
    FaultSchedule("router-handoff", 4, "partition-both", False),
    FaultSchedule("sharded-ps", 5, "partition-outbound", True),
]


def campaign(fencing):
    return run_campaign(
        SCHEDULES, fencing=fencing, verify_replay=False, emit_incidents=True
    )


class TestUnfencedViolationBundles:
    def test_every_violating_schedule_gets_exactly_one_bundle(self):
        report = campaign(fencing=False)
        assert len(report.incident_bundles) == len(SCHEDULES)
        for outcome in report.outcomes:
            assert outcome.violations  # the slice is chosen to break
            bundle = outcome.incident
            assert bundle is not None
            assert bundle.trigger_kind == "violation"
            # Triggered by the first recorded violation, verbatim.
            assert bundle.trigger_detail == outcome.violations[0]
            assert bundle.trigger_name in outcome.violations[0]

    def test_bundle_names_the_injected_fault(self):
        report = campaign(fencing=False)
        for outcome in report.outcomes:
            schedule = outcome.schedule
            bundle = outcome.incident
            cause = bundle.root_cause
            assert cause["kind"] == schedule.kind
            assert cause["name"] == schedule.family
            assert cause["detail"] == schedule.schedule_id
            assert f"step {schedule.crash_step}" in cause["summary"]
            assert "fencing disabled" in cause["summary"]

    def test_timeline_carries_the_injection_marker_in_causal_position(self):
        report = campaign(fencing=False)
        for outcome in report.outcomes:
            schedule = outcome.schedule
            timeline = outcome.incident.timeline
            markers = [l for l in timeline if l.startswith("* fault-injection")]
            assert len(markers) == 1
            assert schedule.kind in markers[0]
            assert schedule.family in markers[0]
            assert f"step={schedule.crash_step}" in markers[0]
            assert timeline.index(markers[0]) == min(
                schedule.crash_step, len(timeline) - 1
            )
            if schedule.duplicate_storm:
                assert "+duplicate-storm" in markers[0]


class TestFencedInjectionBundles:
    def test_fenced_runs_bundle_the_absorbed_injection(self):
        report = campaign(fencing=True)
        assert len(report.incident_bundles) == len(SCHEDULES)
        for outcome in report.outcomes:
            assert outcome.violations == ()
            bundle = outcome.incident
            assert bundle.trigger_kind == "fault-injection"
            assert bundle.trigger_name == outcome.schedule.kind
            # The fence visibly absorbed the fault inside the bundle.
            assert bundle.metrics["fenced_ops"] > 0
            assert bundle.metrics["violations"] == []

    def test_crash_schedules_bundle_cleanly_without_fencing(self):
        # A genuinely dead leader violates nothing even unfenced: the
        # bundle records the injection, not a violation.
        schedules = [FaultSchedule(f, 2, "crash", False) for f in FAMILIES]
        report = run_campaign(
            schedules, fencing=False, verify_replay=False, emit_incidents=True
        )
        for outcome in report.outcomes:
            assert outcome.incident.trigger_kind == "fault-injection"


class TestBundleDeterminism:
    def test_two_campaign_runs_emit_byte_identical_bundles(self):
        first = [b.dump() for b in campaign(fencing=False).incident_bundles]
        second = [b.dump() for b in campaign(fencing=False).incident_bundles]
        assert first == second

    def test_bundle_ids_encode_schedule_and_mode(self):
        unfenced = campaign(fencing=False)
        fenced = campaign(fencing=True)
        for report, mode in ((unfenced, "unfenced"), (fenced, "fenced")):
            ids = [b.incident_id for b in report.incident_bundles]
            assert ids == [f"I:{s.schedule_id}:{mode}" for s in SCHEDULES]

    def test_bundle_dump_is_canonical_json(self):
        for bundle in campaign(fencing=False).incident_bundles:
            payload = json.loads(bundle.dump())
            assert payload["incident_id"] == bundle.incident_id
            assert payload["rings"]["history"]  # the black box rode along


class TestPlainCampaignsUnchanged:
    def test_no_emit_means_no_bundles_and_no_probe_installed(self):
        import subprocess
        import sys

        # A plain campaign in a fresh interpreter must leave every probe
        # slot empty (the recorder-off contract) and emit no bundles.
        code = (
            "from repro._sim import probe\n"
            "from repro.chaos import FaultSchedule, run_campaign\n"
            "s = FaultSchedule('cas-failover', 2, 'partition-outbound', False)\n"
            "r = run_campaign([s], fencing=True, verify_replay=False)\n"
            "assert r.incident_bundles == []\n"
            "assert probe.ACTIVE is None\n"
            "assert probe.FLIGHT is None\n"
            "assert probe.INCIDENTS is None\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        assert result.returncode == 0, result.stderr
