"""Key manager and provisioned-identity serialization."""

import pytest

from repro._sim import DeterministicRng
from repro.cas.keys import KeyManager, ProvisionedIdentity
from repro.crypto.certs import Certificate
from repro.errors import IntegrityError


@pytest.fixture
def manager(rng: DeterministicRng) -> KeyManager:
    return KeyManager(rng.child("km"))


def test_symmetric_keys_are_distinct(manager):
    assert manager.new_symmetric_key() != manager.new_symmetric_key()
    assert len(manager.new_symmetric_key()) == 32


def test_tls_identity_signed_by_ca(manager):
    key_bytes, cert_bytes = manager.new_tls_identity("svc", now=10.0)
    certificate = Certificate.from_bytes(cert_bytes)
    certificate.verify_signature(manager.ca.public_key())
    assert certificate.subject == "svc"
    assert len(key_bytes) == 32
    # The cert binds the signing key that was issued with it.
    from repro.crypto.ed25519 import Ed25519PrivateKey

    signer = Ed25519PrivateKey(key_bytes)
    assert (
        signer.public_key().public_bytes() == certificate.ed25519_public
    )


def test_trusted_root_bytes_match_ca(manager):
    assert manager.trusted_root_bytes() == manager.ca.public_key().public_bytes()


def test_provisioned_identity_roundtrip(manager):
    key_bytes, cert_bytes = manager.new_tls_identity("svc", now=0.0)
    identity = ProvisionedIdentity(
        session="s",
        fs_key=bytes(32),
        tls_signing_key=key_bytes,
        tls_certificate=cert_bytes,
        trusted_root=manager.trusted_root_bytes(),
        secrets={"api": b"token"},
    )
    restored = ProvisionedIdentity.from_bytes(identity.to_bytes())
    assert restored == identity
    tls = restored.tls_identity()
    assert tls.certificate.subject == "svc"


def test_malformed_identity_rejected():
    with pytest.raises(IntegrityError):
        ProvisionedIdentity.from_bytes(b"garbage")
    from repro.crypto import encoding

    with pytest.raises(IntegrityError):
        ProvisionedIdentity.from_bytes(encoding.encode({"session": "s"}))
