"""Crash consistency of CAS secrets-database persistence.

The save protocol is seal-first / bump-last over a two-slot layout, so a
crash at ANY boundary of :meth:`TwoSlotSealedStore.save` must leave the
store loadable: before the slot write, torn mid-write, after the write
but before the counter acknowledgement, and after the acknowledgement.
A whole-disk rollback of *both* slots must stay detected — the hardware
counter outlives the disk.
"""

import pytest

from repro._sim import SimClock
from repro.cas import HardwareCounter, SecretsDatabase, TwoSlotSealedStore
from repro.crypto.aead import AeadKey
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import FreshnessError, IntegrityError, StorageCrash
from repro.runtime.storage_faults import (
    CrashPoint,
    StorageFaultPlan,
    StorageFaultSpec,
)
from repro.runtime.syscall import SyscallInterface
from repro.runtime.vfs import VirtualFileSystem

PREFIX = "/cas/secrets.db"


def make_env():
    vfs = VirtualFileSystem()
    syscalls = SyscallInterface(vfs, CM, SimClock(), mode=SgxMode.NATIVE)
    return vfs, syscalls


def make_db(counter):
    key = AeadKey("chacha20-poly1305", bytes(range(32)))
    return SecretsDatabase(seal=key.seal, unseal=key.open, counter=counter)


def reload(vfs, counter):
    """Simulate a CAS restart: fresh enclave, surviving disk + counter."""
    syscalls = SyscallInterface(vfs, CM, SimClock(), mode=SgxMode.NATIVE)
    store = TwoSlotSealedStore(syscalls, PREFIX)
    db = make_db(counter)
    store.load(db)
    return store, db


def test_clean_save_load_roundtrip_alternates_slots():
    vfs, syscalls = make_env()
    counter = HardwareCounter()
    db = make_db(counter)
    store = TwoSlotSealedStore(syscalls, PREFIX)

    db.put("k", b"v1")
    store.save(db)
    db.put("k", b"v2")
    store.save(db)
    assert vfs.exists(store.slot_path(0)) and vfs.exists(store.slot_path(1))
    assert counter.value == 2

    _, restored = reload(vfs, counter)
    assert restored.get("k") == b"v2"


def test_alternation_never_overwrites_the_newest_snapshot():
    vfs, syscalls = make_env()
    counter = HardwareCounter()
    db = make_db(counter)
    store = TwoSlotSealedStore(syscalls, PREFIX)
    db.put("k", b"v1")
    store.save(db)  # -> slot0, the newest good snapshot

    store2, db2 = reload(vfs, counter)
    newest_blob = vfs.read(store.slot_path(0)).content
    db2.put("k", b"v2")
    store2.save(db2)  # must land on slot1
    assert vfs.read(store.slot_path(0)).content == newest_blob


def test_crash_before_slot_write_preserves_acknowledged_snapshot():
    vfs, syscalls = make_env()
    counter = HardwareCounter()
    db = make_db(counter)
    store = TwoSlotSealedStore(syscalls, PREFIX)
    db.put("k", b"acked")
    store.save(db)

    db.put("k", b"doomed")
    StorageFaultPlan(0, crash_points=[CrashPoint(at_op=0)]).attach(vfs)
    with pytest.raises(StorageCrash):
        store.save(db)
    vfs.faults = None

    assert counter.value == 1  # the ack never ran
    _, restored = reload(vfs, counter)
    assert restored.get("k") == b"acked"


def test_torn_slot_write_falls_back_to_the_other_slot():
    vfs, syscalls = make_env()
    counter = HardwareCounter()
    db = make_db(counter)
    store = TwoSlotSealedStore(syscalls, PREFIX)
    db.put("k", b"acked")
    store.save(db)

    db.put("k", b"doomed")
    plan = StorageFaultPlan(0, StorageFaultSpec(torn_write=1.0)).attach(vfs)
    with pytest.raises(StorageCrash):
        store.save(db)
    vfs.faults = None
    assert plan.counters.torn_writes == 1

    # The torn slot exists on disk but fails unsealing; load skips it.
    assert vfs.exists(store.slot_path(1))
    _, restored = reload(vfs, counter)
    assert restored.get("k") == b"acked"


def test_crash_after_write_before_ack_rolls_forward():
    vfs, syscalls = make_env()
    counter = HardwareCounter()
    db = make_db(counter)
    store = TwoSlotSealedStore(syscalls, PREFIX)
    db.put("k", b"old")
    store.save(db)

    db.put("k", b"new")
    StorageFaultPlan(0, crash_points=[CrashPoint(at_op=0, after=True)]).attach(vfs)
    with pytest.raises(StorageCrash):
        store.save(db)
    vfs.faults = None

    # The blob (sealed under counter + 1) is durable; the bump is not.
    assert counter.value == 1
    _, restored = reload(vfs, counter)
    assert restored.get("k") == b"new"
    assert counter.value == 2  # load_sealed rolled the counter forward


@pytest.mark.parametrize("after", [False, True])
@pytest.mark.parametrize("generation", [1, 2, 3])
def test_exhaustive_save_crash_sweep(generation, after):
    """Crash the Nth save at both polarities of its single disk write:
    the reload must see exactly the last-acknowledged or the crashed
    generation, and the store must keep working afterwards."""
    vfs, syscalls = make_env()
    counter = HardwareCounter()
    db = make_db(counter)
    store = TwoSlotSealedStore(syscalls, PREFIX)
    for g in range(generation):
        db.put("k", b"gen%d" % g)
        store.save(db)

    db.put("k", b"gen%d" % generation)
    StorageFaultPlan(0, crash_points=[CrashPoint(at_op=0, after=after)]).attach(vfs)
    with pytest.raises(StorageCrash):
        store.save(db)
    vfs.faults = None

    store2, restored = reload(vfs, counter)
    expected = b"gen%d" % (generation if after else generation - 1)
    assert restored.get("k") == expected

    restored.put("k", b"recovered")
    store2.save(restored)
    _, again = reload(vfs, counter)
    assert again.get("k") == b"recovered"


def test_disk_rollback_of_both_slots_detected():
    vfs, syscalls = make_env()
    counter = HardwareCounter()
    db = make_db(counter)
    store = TwoSlotSealedStore(syscalls, PREFIX)
    db.put("k", b"v1")
    store.save(db)
    snapshot = vfs.capture_state()
    db.put("k", b"v2")
    store.save(db)

    vfs.restore_state(snapshot)  # validly sealed, but old
    with pytest.raises(FreshnessError):
        reload(vfs, counter)


def test_no_loadable_slot_raises_integrity_error():
    vfs, syscalls = make_env()
    counter = HardwareCounter()
    store = TwoSlotSealedStore(syscalls, PREFIX)
    with pytest.raises(IntegrityError):
        store.load(make_db(counter))

    # Both slots present but tampered is just as dead.
    db = make_db(counter)
    db.put("k", b"v")
    store.save(db)
    db.put("k", b"w")
    store.save(db)
    for slot in (0, 1):
        blob = vfs.read(store.slot_path(slot)).content
        vfs.tamper(store.slot_path(slot), blob[:-1] + bytes([blob[-1] ^ 1]))
    with pytest.raises(IntegrityError):
        store.load(make_db(counter))
