"""CAS high availability: quorum replication, promotion, client failover.

The pair mirrors logical operations (policy registrations, audit
records) because sealed blobs cannot cross CPUs; after promotion the
standby serves the same session keys, a byte-identical audit chain, and
certificates that verify against the unchanged trust root.
"""

import pytest

from repro.cas import CasService, Policy, ReplicatedCasPair
from repro.cas.client import RemoteCasClient, RemoteFreshnessTracker
from repro.cluster import Network, make_cluster
from repro.cluster.orchestrator import Orchestrator
from repro.cluster.retry import RetryPolicy
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import FreshnessError, RpcError, RpcTransportError
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.tensor.engine import LITE_PROFILE


@pytest.fixture
def cluster(provisioning):
    return make_cluster(3, CM, provisioning, seed=11)


@pytest.fixture
def pair(cluster, provisioning):
    network = Network(CM)
    primary = CasService(cluster[0], provisioning.public_key())
    backup = CasService(cluster[1], provisioning.public_key())
    return ReplicatedCasPair(network, primary, backup)


def make_runtime(node, name="worker"):
    return SconeRuntime(
        RuntimeConfig(
            name=name,
            mode=SgxMode.HW,
            binary_size=LITE_PROFILE.binary_size,
            fs_shield_enabled=False,
        ),
        node.vfs,
        CM,
        node.clock,
        cpu=node.cpu,
        rng=node.rng.child(name),
    )


def register(pair, runtime, session="s", secrets=None):
    pair.primary.register_policy(
        Policy(session, [runtime.measurement], secret_names=sorted(secrets or {})),
        secrets=secrets,
    )


def test_pair_must_span_two_nodes(cluster, provisioning):
    network = Network(CM)
    a = CasService(cluster[0], provisioning.public_key())
    b = CasService(cluster[0], provisioning.public_key())
    with pytest.raises(RpcError):
        ReplicatedCasPair(network, a, b)


def test_policies_and_session_keys_replicate(pair, cluster):
    runtime = make_runtime(cluster[2])
    register(pair, runtime, secrets={"api": b"token"})
    assert pair.stats.ops_replicated == 1
    assert pair.stats.quorum_acks == 1
    # The standby holds the SAME session fs-key (not a fresh one), so
    # shielded files stay readable after a failover.
    assert pair.backup.owner_fs_key("s") == pair.primary.owner_fs_key("s")
    assert pair.backup.db.get("secret/s/api") == b"token"


def test_audit_chain_replicates_byte_identically(pair, cluster):
    tracker = RemoteFreshnessTracker(pair.network, cluster[2], owner="sess")
    for version in range(5):
        tracker.commit("/model", version, bytes([version]) * 32)
    assert pair.stats.records_replicated == 5
    assert pair.backup.audit.head == pair.primary.audit.head
    assert pair.backup.audit.log == pair.primary.audit.log


def test_unreachable_standby_blocks_the_mutation(pair, cluster):
    """Quorum 2/2: a registration the standby never acknowledged must
    not report success."""
    pair._backup_server.abort()
    runtime = make_runtime(cluster[2])
    with pytest.raises(RpcError):
        register(pair, runtime)
    assert pair.stats.ops_replicated == 0


def test_failover_serves_same_identity_from_the_standby(pair, cluster):
    runtime = make_runtime(cluster[2])
    register(pair, runtime, secrets={"api": b"token"})
    client = RemoteCasClient(pair.network, cluster[2], "cas")
    before = client.provision(runtime, "s")

    pair.fail_primary()
    assert pair.probe() is False
    with pytest.raises(RpcTransportError):
        client.provision(runtime, "s")

    pair.promote()
    assert pair.probe() is True
    assert pair.active is pair.backup
    assert pair.stats.failovers == 1

    after = client.provision(runtime, "s")  # same client, same address
    assert after.session == "s"
    assert after.fs_key == before.fs_key
    assert after.secrets == {"api": b"token"}
    # Certificates from before and after the failover verify against the
    # one shared CA root.
    ca = pair.primary.keys.ca.public_key()
    before.tls_identity().certificate.verify_signature(ca)
    after.tls_identity().certificate.verify_signature(ca)


def test_promote_is_idempotent(pair):
    pair.promote()  # healthy: no-op
    assert pair.active is pair.primary
    assert pair.stats.failovers == 0
    pair.fail_primary()
    pair.promote()
    pair.promote()  # already promoted: no-op
    assert pair.stats.failovers == 1


def test_freshness_protection_survives_failover(pair, cluster):
    tracker = RemoteFreshnessTracker(pair.network, cluster[2], owner="sess")
    tracker.commit("/w", 0, b"d0" * 16)
    tracker.commit("/w", 1, b"d1" * 16)

    pair.fail_primary()
    pair.promote()

    tracker.verify("/w", 1, b"d1" * 16)  # served by the standby now
    with pytest.raises(FreshnessError):
        tracker.verify("/w", 0, b"d0" * 16)  # rollback still detected
    # New commits land on the standby's chain, continuing the sequence.
    tracker.commit("/w", 2, b"d2" * 16)
    assert pair.backup.audit.latest("sess", "/w").version == 2


def test_orchestrator_watchdog_promotes(pair, cluster):
    orch = Orchestrator(list(cluster))
    orch.register_service("cas", pair.probe, pair.promote)
    assert orch.supervise_services() == {"cas": True}

    pair.fail_primary()
    assert orch.supervise_services() == {"cas": False}
    assert pair.active is pair.backup
    assert "service-failover cas" in orch.events
    # The next pass sees a healthy service again.
    assert orch.supervise_services() == {"cas": True}


def test_retrying_client_rides_through_a_supervised_failover(pair, cluster):
    """A client built on the retry plumbing sees only latency: its calls
    during the outage back off, the watchdog promotes, and the retries
    land on the standby."""
    runtime = make_runtime(cluster[2])
    register(pair, runtime)
    orch = Orchestrator(list(cluster))
    orch.register_service("cas", pair.probe, pair.promote)

    pair.fail_primary()
    orch.supervise_services()  # the watchdog promotes the standby
    retry = RetryPolicy(max_attempts=6, base_delay=0.01)
    client = RemoteCasClient(pair.network, cluster[2], "cas", retry=retry)
    identity = client.provision(runtime, "s")
    assert identity.session == "s"
    assert pair.stats.failovers == 1
