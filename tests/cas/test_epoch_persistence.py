"""Epoch authority durability: bumps persist as ``epoch/<role>`` records
in the (replicated) CAS secrets database and survive a CAS failover.

The epoch registry is what stops a zombie after the control plane itself
restarts — so it must be durable control-plane state, double-written to
both CAS instances through the administrative channel (a bump *during*
failover cannot depend on the broken replication stream), and restores
must be forward-only so a stale replica can never un-fence a zombie.
"""

import pytest

from repro.cluster.epoch import EPOCH_KEY_PREFIX, EpochService, load_epochs
from repro.cluster.retry import RetryPolicy
from repro.core import SecureTFPlatform
from repro.core.platform import PlatformConfig
from repro.errors import FencedError


def make_platform(backup=True):
    retry = RetryPolicy(max_attempts=6, base_delay=0.02)
    return SecureTFPlatform(
        PlatformConfig(
            n_nodes=3,
            seed=83,
            fencing=True,
            cas_backup_node=1 if backup else None,
            cas_retry=retry if backup else None,
        )
    )


def test_epoch_bumps_persist_to_the_cas_database():
    platform = make_platform(backup=False)
    platform.epochs.grant("ps-0", holder="a")
    platform.epochs.grant("ps-0", holder="b")
    platform.epochs.grant("router", holder="r")
    assert platform.cas.db.get(f"{EPOCH_KEY_PREFIX}ps-0") == b"2"
    assert platform.persisted_epochs() == {"ps-0": 2, "router": 1}


def test_epoch_registry_survives_cas_failover():
    platform = make_platform(backup=True)
    pair = platform.cas_pair
    platform.epochs.grant("ps-0", holder="a")
    platform.epochs.grant("router", holder="r")

    # Every bump is double-written: both instances hold the records
    # before any failure (the pair itself holds a fenced ``cas-primary``
    # lease, so that role rides along).
    for db in (pair.primary.db, pair.backup.db):
        persisted = load_epochs(db)
        assert persisted["ps-0"] == 1
        assert persisted["router"] == 1

    # The primary dies; a bump lands mid-failover (the exact moment the
    # replication stream is broken) and must still be durable on the
    # survivor.
    pair.fail_primary()
    platform.epochs.grant("ps-0", holder="a2")
    assert not pair.probe()
    pair.promote()
    persisted = platform.persisted_epochs()
    assert persisted["ps-0"] == 2
    assert persisted["router"] == 1
    assert pair.stats.epochs_replicated >= 3

    # A restarted control plane rebuilds its authority from the
    # surviving replica's records: guards advance to the persisted
    # epochs and the zombie's stale stamp is rejected.
    restored = EpochService()
    guard = restored.make_guard("ps-0", name="restored-store")
    restored.restore(platform.persisted_epochs())
    assert restored.current("ps-0") == 2
    assert restored.current("router") == 1
    with pytest.raises(FencedError):
        guard.check(1)  # the pre-failover holder's epoch
    guard.check(2)

    # Forward-only: a stale registry copy cannot roll the epoch back.
    restored.restore({"ps-0": 1})
    assert restored.current("ps-0") == 2
    # And the next bump after restore is strictly newer than anything
    # ever granted.
    assert restored.grant("ps-0", holder="a3").epoch == 3
