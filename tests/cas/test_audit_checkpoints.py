"""Bounded audit-log growth: signed checkpoints and safe truncation.

The hash chain gives tamper evidence but grows without bound.  A signed
checkpoint pins (sequence, head) under CAS's Ed25519 root; everything
before it can then be dropped while the retained suffix — and the
per-file freshness protection — stays verifiable.
"""

import dataclasses

import pytest

from repro.cas import AuditCheckpoint, FreshnessAuditService
from repro.crypto.ed25519 import Ed25519PrivateKey
from repro.errors import FreshnessError

KEY = Ed25519PrivateKey.generate(bytes(range(32)))
WRONG_KEY = Ed25519PrivateKey.generate(bytes(range(1, 33)))


def make_log(n=6, owner="tenant"):
    audit = FreshnessAuditService()
    for i in range(n):
        audit.commit(owner, f"/f{i % 2}", i // 2 + 1, bytes([i]) * 32)
    return audit


def test_checkpoint_signs_the_current_head():
    audit = make_log()
    checkpoint = audit.checkpoint(KEY)
    assert checkpoint.sequence == 6
    assert checkpoint.head == audit.head
    checkpoint.verify(KEY.public_key())
    with pytest.raises(Exception):
        checkpoint.verify(WRONG_KEY.public_key())


def test_forged_checkpoint_rejected():
    audit = make_log()
    checkpoint = audit.checkpoint(KEY)
    forged = AuditCheckpoint(
        sequence=checkpoint.sequence,
        head=b"\x42" * 32,  # claim a different history
        signature=checkpoint.signature,
    )
    with pytest.raises(Exception):
        forged.verify(KEY.public_key())


def test_truncate_requires_a_checkpoint():
    audit = make_log()
    with pytest.raises(FreshnessError):
        audit.truncate()


def test_truncate_drops_covered_records_only():
    audit = make_log(6)
    audit.checkpoint(KEY)
    audit.commit("tenant", "/f0", 5, b"\x09" * 32)  # after the checkpoint
    assert audit.truncate() == 6
    assert len(audit.log) == 1
    assert audit.log[0].sequence == 6
    # Chain verification still passes, rooted at the checkpointed head.
    audit.verify_chain(KEY.public_key())


def test_freshness_protection_survives_truncation():
    audit = make_log(6)
    audit.checkpoint(KEY)
    audit.truncate()
    # The latest index is untouched: verify() still enforces freshness
    # for files whose history was dropped.
    audit.verify("tenant", "/f0", 3, b"\x04" * 32)
    with pytest.raises(FreshnessError):
        audit.verify("tenant", "/f0", 2, b"\x02" * 32)  # rolled back


def test_sequences_stay_monotonic_across_truncation():
    audit = make_log(4)
    audit.checkpoint(KEY)
    audit.truncate()
    record = audit.commit("tenant", "/f0", 9, b"\xaa" * 32)
    assert record.sequence == 4  # no renumbering after the drop
    audit.checkpoint(KEY)
    assert audit.truncate() == 1
    audit.verify_chain(KEY.public_key())


def test_tamper_after_truncation_detected():
    audit = make_log(4)
    audit.checkpoint(KEY)
    audit.truncate()
    for i in range(3):
        audit.commit("tenant", f"/g{i}", 1, bytes([0x10 + i]) * 32)
    audit.verify_chain(KEY.public_key())
    # Rewrite a retained record: the chain rooted at the signed head breaks.
    audit._log[1] = dataclasses.replace(audit._log[1], digest=b"\xff" * 32)
    with pytest.raises(FreshnessError):
        audit.verify_chain(KEY.public_key())


def test_rewriting_the_base_is_caught_by_the_checkpoint():
    """An attacker who controls the truncated store cannot splice in a
    different history: the first retained record must chain to the signed
    checkpoint head."""
    audit = make_log(4)
    audit.checkpoint(KEY)
    audit.truncate()
    audit.commit("tenant", "/f0", 9, b"\xaa" * 32)
    audit._base_head = b"\x00" * 32  # pretend history never happened
    with pytest.raises(FreshnessError):
        audit.verify_chain(KEY.public_key())


def test_head_checkpoint_divergence_detected():
    audit = make_log(4)
    audit.checkpoint(KEY)
    # Tamper with the last record AND its latest-index entry: the chain
    # itself still links, but the head no longer matches the checkpoint.
    forged = dataclasses.replace(audit._log[-1], digest=b"\xff" * 32)
    audit._log[-1] = forged
    audit._head = forged.record_digest()
    with pytest.raises(FreshnessError):
        audit.verify_chain(KEY.public_key())


def test_commit_hooks_see_every_record_in_order():
    audit = FreshnessAuditService()
    seen = []
    audit.add_commit_hook(seen.append)
    for i in range(5):
        audit.commit("tenant", "/f", i + 1, bytes([i]) * 32)
    assert [r.sequence for r in seen] == [0, 1, 2, 3, 4]
    assert seen == audit.log


def test_repeated_checkpoint_truncate_cycles_bound_growth():
    audit = FreshnessAuditService()
    version = 0
    for _ in range(5):
        for _ in range(10):
            version += 1
            audit.commit("tenant", "/f", version, bytes([version % 256]) * 32)
        audit.checkpoint(KEY)
        audit.truncate()
        assert len(audit.log) == 0
    audit.verify_chain(KEY.public_key())
    audit.verify("tenant", "/f", 50, bytes([50]) * 32)
