"""CAS provisioning protocol end-to-end (service + clients)."""

import pytest

from repro._sim import DeterministicRng, EventTrace
from repro.cas import CasClient, CasService, Policy
from repro.cas.client import RemoteCasClient, RemoteFreshnessTracker, serve_cas
from repro.cluster import Network, make_cluster
from repro.crypto.aead import AeadKey
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.enclave.sgx import SgxMode
from repro.errors import (
    AttestationError,
    FreshnessError,
    IntegrityError,
    PolicyError,
    RpcError,
)
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.tensor.engine import LITE_PROFILE


@pytest.fixture
def cluster(provisioning):
    return make_cluster(2, CM, provisioning, seed=8)


@pytest.fixture
def cas(cluster, provisioning):
    return CasService(cluster[0], provisioning.public_key())


def make_runtime(node, name="worker", mode=SgxMode.HW):
    return SconeRuntime(
        RuntimeConfig(
            name=name,
            mode=mode,
            binary_size=LITE_PROFILE.binary_size,
            fs_shield_enabled=False,
        ),
        node.vfs,
        CM,
        node.clock,
        cpu=node.cpu,
        rng=node.rng.child(name),
    )


def register(cas, runtime, session="s", secrets=None, accept_debug=False):
    cas.register_policy(
        Policy(
            session,
            [runtime.measurement],
            secret_names=sorted(secrets or {}),
            accept_debug=accept_debug,
        ),
        secrets=secrets,
    )


def test_direct_provision_flow(cas, cluster):
    runtime = make_runtime(cluster[1])
    register(cas, runtime, secrets={"api": b"token"})
    identity = CasClient(cas).provision(runtime, "s")
    assert identity.session == "s"
    assert identity.secrets == {"api": b"token"}
    assert len(identity.fs_key) == 32
    tls = identity.tls_identity()
    assert tls.certificate.subject.startswith("s/worker-")
    tls.certificate.verify_signature(cas.keys.ca.public_key())


def test_each_member_gets_unique_identity(cas, cluster):
    runtime = make_runtime(cluster[1])
    register(cas, runtime)
    a = CasClient(cas).provision(runtime, "s")
    b = CasClient(cas).provision(runtime, "s")
    assert a.tls_certificate != b.tls_certificate
    assert a.fs_key == b.fs_key  # session key is shared


def test_wrong_measurement_rejected(cas, cluster):
    runtime = make_runtime(cluster[1], name="expected")
    register(cas, runtime)
    impostor = make_runtime(cluster[1], name="impostor")
    with pytest.raises(PolicyError):
        CasClient(cas).provision(impostor, "s")


def test_sim_mode_needs_accept_debug(cas, cluster):
    runtime = make_runtime(cluster[1], mode=SgxMode.SIM)
    register(cas, runtime, session="strict", accept_debug=False)
    with pytest.raises(AttestationError):
        CasClient(cas).provision(runtime, "strict")
    register(cas, runtime, session="dev", accept_debug=True)
    identity = CasClient(cas).provision(runtime, "dev")
    assert identity.session == "dev"


def test_bundle_is_sealed_to_the_enclave_key(cas, cluster):
    """An eavesdropper with the bundle but not the X25519 private key
    cannot decrypt the provisioned identity."""
    runtime = make_runtime(cluster[1])
    register(cas, runtime, secrets={"k": b"super-secret"})
    quote = runtime.attest(report_data=bytes(32))  # attacker-known key? no:
    # use a legitimate quote bound to a key the attacker does not hold.
    exchange_public = DeterministicRng(99).random_bytes(32)
    quote = runtime.attest(report_data=exchange_public)
    bundle = cas.provision("s", quote)
    assert b"super-secret" not in bundle.sealed_identity
    # Opening with a wrong key fails.
    wrong = AeadKey("chacha20-poly1305", bytes(32))
    with pytest.raises(IntegrityError):
        wrong.open(bundle.sealed_identity)


def test_provision_requires_32_byte_report_data(cas, cluster):
    runtime = make_runtime(cluster[1])
    register(cas, runtime)
    quote = runtime.attest(report_data=b"short")
    with pytest.raises(AttestationError):
        cas.provision("s", quote)


def test_owner_fs_key_matches_provisioned(cas, cluster):
    runtime = make_runtime(cluster[1])
    register(cas, runtime)
    identity = CasClient(cas).provision(runtime, "s")
    assert cas.owner_fs_key("s") == identity.fs_key
    with pytest.raises(PolicyError):
        cas.owner_fs_key("unknown")


def test_cas_self_attestation(cas, provisioning):
    from repro.enclave.attestation import AttestationVerifier

    quote = cas.attest()
    report = AttestationVerifier(provisioning.public_key()).verify(quote)
    assert report.attributes["name"] == "cas"
    assert report.measurement == cas.measurement


def test_remote_provision_over_network(cas, cluster):
    network = Network(CM)
    serve_cas(network, cas, address="cas")
    runtime = make_runtime(cluster[1])
    register(cas, runtime)
    trace = EventTrace(cluster[1].clock)
    client = RemoteCasClient(network, cluster[1], "cas", trace=trace)
    before = cluster[1].clock.now
    identity = client.provision(runtime, "s")
    elapsed = cluster[1].clock.now - before
    assert identity.session == "s"
    # Paper Fig. 4: the whole CAS attestation flow is ~17 ms, dominated
    # by quote generation; local verification is sub-millisecond.
    assert elapsed < 0.05
    breakdown = trace.breakdown()
    assert breakdown["quote.generation"] == pytest.approx(
        CM.quote_generation_cost
    )


def test_remote_provision_errors_travel_typed(cas, cluster):
    network = Network(CM)
    serve_cas(network, cas, address="cas")
    runtime = make_runtime(cluster[1])
    client = RemoteCasClient(network, cluster[1], "cas")
    # The CAS's policy decision keeps its type across the RPC boundary,
    # so callers (and the retry layer) can tell "denied" from "lost".
    with pytest.raises(PolicyError):
        client.provision(runtime, "never-registered")


def test_remote_freshness_tracker(cas, cluster):
    network = Network(CM)
    serve_cas(network, cas, address="cas")
    tracker = RemoteFreshnessTracker(network, cluster[1], owner="sess")
    tracker.commit("/f", 0, b"d0")
    tracker.verify("/f", 0, b"d0")
    tracker.commit("/f", 1, b"d1")
    with pytest.raises(FreshnessError):
        tracker.verify("/f", 0, b"d0")
    assert cas.audit.latest("sess", "/f").version == 1
