"""CAS failover racing an in-flight seal.

The rollback-protection protocol is seal-first/bump-last: a primary
exports a snapshot sealed at ``counter + 1`` and only bumps the shared
monotonic counter once the blob is durably persisted
(``acknowledge_persisted`` — the commit point).  A primary that is
partitioned away *between* those two steps still holds an unacknowledged
claim on ``counter + 1``; if it completes the bump after a replacement
was promoted, either two snapshots claim one counter value (double
issue) or the replacement's acknowledged snapshots read as rollbacks.
Epoch fencing on the shared counter closes the race.
"""

import pytest

from repro.cas import CasService, ReplicatedCasPair
from repro.cas.secrets_db import HardwareCounter
from repro.cluster import Network, make_cluster
from repro.cluster.epoch import EpochService
from repro.cluster.faults import FaultPlan, TransientPartition
from repro.enclave.cost_model import DEFAULT_COST_MODEL as CM
from repro.errors import FencedError


@pytest.fixture
def cluster(provisioning):
    return make_cluster(2, CM, provisioning, seed=23)


def make_pair(cluster, provisioning, fencing):
    network = Network(CM)
    counter = HardwareCounter()
    primary = CasService(cluster[0], provisioning.public_key(), counter=counter)
    backup = CasService(cluster[1], provisioning.public_key(), counter=counter)
    epochs = EpochService() if fencing else None
    pair = ReplicatedCasPair(network, primary, backup, epochs=epochs)
    pair.attach_probe(cluster[1])
    return network, counter, pair


def partition_primary(network, pair, cluster, start, duration=5.0):
    plan = FaultPlan(
        7,
        partitions=[
            TransientPartition("cas", start, start + duration),
            TransientPartition(
                pair._repl_client.address, start, start + duration
            ),
        ],
    )
    network.faults.append(plan.inject)
    return plan


def run_seal_race(cluster, provisioning, fencing):
    """Drive the race; return (pair, zombie_outcome, claimed_value)."""
    network, counter, pair = make_pair(cluster, provisioning, fencing)
    primary, backup = pair.primary, pair.backup

    # Healthy primary commits one full seal cycle.
    primary.db.put("k0", b"v0")
    primary.db.export_sealed()
    primary.db.acknowledge_persisted()

    # The in-flight seal: export claims counter+1, then the partition
    # hits BEFORE the acknowledgement.
    primary.db.put("k1", b"v1")
    claimed = counter.value + 1
    primary.db.export_sealed()
    t0 = max(n.clock.now for n in cluster)
    partition_primary(network, pair, cluster, t0)

    # Watchdog: probe fails through the partition, promote the standby.
    assert not pair.probe()
    pair.promote()
    assert pair.active is backup

    # The new primary seals its own snapshot — claiming the same value
    # the zombie's unacknowledged export did.
    backup.db.put("k1", b"v1")
    backup_claim = counter.value + 1
    blob = backup.db.export_sealed()
    backup_version = backup.db.acknowledge_persisted()

    # The zombie wakes up and completes its bump.
    try:
        primary.db.acknowledge_persisted()
        zombie_outcome = "committed"
    except FencedError:
        zombie_outcome = "fenced"
    return pair, counter, zombie_outcome, claimed, backup_claim, backup_version, blob


def test_fenced_new_primary_never_double_issues(cluster, provisioning):
    pair, counter, zombie, claimed, backup_claim, version, blob = run_seal_race(
        cluster, provisioning, fencing=True
    )
    # Both sides raced for the same counter value...
    assert claimed == backup_claim
    # ...the new primary won it, and the zombie's late bump was fenced:
    # exactly one snapshot owns the value, and it is the acknowledged one.
    assert zombie == "fenced"
    assert version == backup_claim
    assert counter.value == version
    # The acknowledged snapshot still verifies as fresh.
    pair.backup.db.load_sealed(blob)


def test_unfenced_zombie_bump_orphans_the_acknowledged_snapshot(
    cluster, provisioning
):
    pair, counter, zombie, claimed, backup_claim, version, blob = run_seal_race(
        cluster, provisioning, fencing=False
    )
    # Without fencing the zombie's bump lands: the counter has now moved
    # PAST the new primary's acknowledged snapshot...
    assert zombie == "committed"
    assert counter.value == version + 1
    # ...which is the double-issue damage this test pins down: the same
    # counter value was claimed by both sides, so freshness arithmetic
    # can no longer tell the acknowledged snapshot from a rollback.
    assert claimed == backup_claim


def test_promotion_is_fence_first(cluster, provisioning):
    # The epoch bump happens BEFORE the replacement activates: once
    # promote() returns, the zombie's very next guarded operation is
    # already rejected — there is no window for a late commit.
    network, counter, pair = make_pair(cluster, provisioning, fencing=True)
    t0 = max(n.clock.now for n in cluster)
    partition_primary(network, pair, cluster, t0)
    pair.promote()
    pair.primary.db.put("k", b"v")
    pair.primary.db.export_sealed()
    with pytest.raises(FencedError):
        pair.primary.db.acknowledge_persisted()
