"""CAS internals: secrets DB, policy engine, audit log."""

import pytest

from repro.cas import (
    FreshnessAuditService,
    HardwareCounter,
    Policy,
    PolicyEngine,
    SecretsDatabase,
)
from repro.cas.audit import ScopedFreshnessTracker
from repro.crypto.aead import AeadKey
from repro.enclave.attestation import Report
from repro.errors import FreshnessError, IntegrityError, PolicyError


# --- secrets DB -----------------------------------------------------------------


@pytest.fixture
def db():
    key = AeadKey("chacha20-poly1305", bytes(range(32)))
    sealer = AeadKey("chacha20-poly1305", bytes(range(32)))
    return SecretsDatabase(
        seal=key.seal, unseal=sealer.open, counter=HardwareCounter()
    )


def test_db_crud(db):
    db.put("secret/a", b"1")
    db.put("secret/b", b"2")
    db.put("other", b"3")
    assert db.get("secret/a") == b"1"
    assert db.contains("other")
    assert db.keys("secret/") == ["secret/a", "secret/b"]
    assert len(db) == 3
    db.delete("other")
    with pytest.raises(KeyError):
        db.get("other")
    with pytest.raises(KeyError):
        db.delete("other")


def test_db_sealed_roundtrip(db):
    db.put("k", b"v")
    blob = db.export_sealed()
    assert b"v" not in blob  # encrypted at rest
    fresh_counter = HardwareCounter()
    fresh_counter.increment()  # hardware state survives restart
    key = AeadKey("chacha20-poly1305", bytes(range(32)))
    restored = SecretsDatabase(seal=key.seal, unseal=key.open, counter=fresh_counter)
    assert restored.load_sealed(blob) == 1
    assert restored.get("k") == b"v"


def test_db_rollback_detected(db):
    db.put("k", b"v1")
    old_blob = db.export_sealed()
    db.acknowledge_persisted()
    db.put("k", b"v2")
    db.export_sealed()
    db.acknowledge_persisted()  # counter advanced to 2
    with pytest.raises(FreshnessError):
        db.load_sealed(old_blob)


def test_db_tamper_detected(db):
    db.put("k", b"v")
    blob = bytearray(db.export_sealed())
    blob[-1] ^= 1
    with pytest.raises(IntegrityError):
        db.load_sealed(bytes(blob))


# --- policy engine ---------------------------------------------------------------


def make_report(measurement=b"\x01" * 32, debug=False):
    return Report(measurement, {"name": "svc"}, b"", debug=debug)


def test_policy_register_and_evaluate():
    engine = PolicyEngine()
    engine.register(Policy("s", [b"\x01" * 32]))
    policy = engine.evaluate("s", make_report())
    assert policy.session == "s"
    assert engine.members("s") == 1


def test_policy_wrong_measurement_rejected():
    engine = PolicyEngine()
    engine.register(Policy("s", [b"\x01" * 32]))
    with pytest.raises(PolicyError):
        engine.evaluate("s", make_report(measurement=b"\x02" * 32))


def test_policy_debug_gate():
    engine = PolicyEngine()
    engine.register(Policy("strict", [b"\x01" * 32], accept_debug=False))
    engine.register(Policy("dev", [b"\x01" * 32], accept_debug=True))
    with pytest.raises(PolicyError):
        engine.evaluate("strict", make_report(debug=True))
    engine.evaluate("dev", make_report(debug=True))


def test_policy_max_members():
    engine = PolicyEngine()
    engine.register(Policy("s", [b"\x01" * 32], max_members=1))
    engine.evaluate("s", make_report())
    with pytest.raises(PolicyError):
        engine.evaluate("s", make_report())


def test_policy_duplicates_and_unknown():
    engine = PolicyEngine()
    engine.register(Policy("s", [b"\x01" * 32]))
    with pytest.raises(PolicyError):
        engine.register(Policy("s", [b"\x02" * 32]))
    with pytest.raises(PolicyError):
        engine.get("unknown")
    with pytest.raises(PolicyError):
        Policy("empty", [])


# --- audit service ----------------------------------------------------------------


def test_audit_commit_verify_cycle():
    audit = FreshnessAuditService()
    audit.commit("owner", "/f", 0, b"d0")
    audit.verify("owner", "/f", 0, b"d0")
    audit.commit("owner", "/f", 1, b"d1")
    with pytest.raises(FreshnessError):
        audit.verify("owner", "/f", 0, b"d0")  # rolled back
    with pytest.raises(FreshnessError):
        audit.verify("owner", "/f", 1, b"wrong-digest")
    with pytest.raises(FreshnessError):
        audit.verify("owner", "/missing", 0, b"")


def test_audit_monotonicity():
    audit = FreshnessAuditService()
    audit.commit("o", "/f", 5, b"d")
    with pytest.raises(FreshnessError):
        audit.commit("o", "/f", 5, b"d2")
    with pytest.raises(FreshnessError):
        audit.commit("o", "/f", 4, b"d2")
    audit.commit("o", "/f", 6, b"d2")


def test_audit_owners_are_isolated():
    audit = FreshnessAuditService()
    audit.commit("alice", "/f", 0, b"a")
    audit.commit("bob", "/f", 0, b"b")
    audit.verify("alice", "/f", 0, b"a")
    with pytest.raises(FreshnessError):
        audit.verify("alice", "/f", 0, b"b")


def test_audit_hash_chain():
    audit = FreshnessAuditService()
    for version in range(5):
        audit.commit("o", "/f", version, bytes([version]) * 32)
    audit.verify_chain()
    assert [r.sequence for r in audit.log] == list(range(5))
    # Tamper with a middle record: the chain must break.
    import dataclasses

    tampered = dataclasses.replace(audit.log[2], digest=b"\xff" * 32)
    audit._log[2] = tampered
    with pytest.raises(FreshnessError):
        audit.verify_chain()


def test_scoped_tracker_adapts_interface():
    audit = FreshnessAuditService()
    tracker = ScopedFreshnessTracker(audit, "session-1")
    tracker.commit("/model", 0, b"digest")
    tracker.verify("/model", 0, b"digest")
    assert audit.latest("session-1", "/model") is not None
    assert audit.latest("other", "/model") is None
