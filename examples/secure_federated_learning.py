#!/usr/bin/env python3
"""Use case §6.2: secure federated learning for hospitals (Fig. 10).

Three hospitals collaborate on a diagnosis model.  Patient data never
leaves a hospital; only model parameters are shared — and because local
models themselves leak (model inversion, GAN attacks — §6.2), the
*global aggregation* runs inside an attested secureTF enclave.  Each
hospital verifies the aggregator's quote before submitting, and all
parameter traffic rides mutually-authenticated TLS.

Run:  python examples/secure_federated_learning.py
"""

from repro.core import FederatedLearning, Hospital, SecureTFPlatform
from repro.core.platform import PlatformConfig
from repro.data import Dataset, synthetic_mnist
from repro.enclave.sgx import SgxMode

ROUNDS = 6
LOCAL_STEPS = 10


def main() -> None:
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=6))
    platform.user_attest_cas()

    # Each hospital holds a private, disjoint shard of patient scans.
    train, test = synthetic_mnist(n_train=1800, n_test=300, seed=7)
    shard = len(train) // 3
    hospitals = [
        Hospital(
            name,
            platform.node(index),
            Dataset(
                train.images[index * shard : (index + 1) * shard],
                train.labels[index * shard : (index + 1) * shard],
                train.num_classes,
                name=f"{name}-private-scans",
            ),
            learning_rate=0.3,
            batch_size=64,
            seed=5,
        )
        for index, name in enumerate(("st-mary", "charite", "ospedale"))
    ]
    for hospital in hospitals:
        print(f"{hospital.name}: {len(hospital.dataset)} private examples "
              f"(never leave {hospital.node.node_id})")

    # The aggregation enclave starts, is attested by the hospitals, and
    # CAS issues each hospital a client TLS identity.
    federation = FederatedLearning(
        platform, "brain-tumor-model", hospitals, mode=SgxMode.HW
    )
    federation.start()
    print("aggregator enclave attested; hospitals provisioned with TLS "
          "identities\n")

    hospitals[0].load_weights(federation.global_weights())
    baseline = hospitals[0].evaluate_accuracy(test)
    print(f"round 0 (untrained): global accuracy {baseline:.1%}")

    for round_index in range(1, ROUNDS + 1):
        mean_loss = federation.run_round(
            local_steps=LOCAL_STEPS, round_seed=round_index
        )
        hospitals[0].load_weights(federation.global_weights())
        accuracy = hospitals[0].evaluate_accuracy(test)
        print(f"round {round_index}: mean local loss {mean_loss:.3f}, "
              f"global accuracy {accuracy:.1%}")

    print(f"\n{federation.rounds_completed} federated rounds completed; "
          f"no raw patient data ever crossed hospital boundaries.")
    federation.stop()


if __name__ == "__main__":
    main()
