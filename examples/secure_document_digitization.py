#!/usr/bin/env python3
"""Use case §6.1: secure handwritten-document digitization (Fig. 9).

A company runs a handwriting-classification service in a public cloud.
Its customers demand input confidentiality; the company wants to protect
its trained model and code.  Both are satisfied by running inference in
an attested enclave, with the model encrypted at rest and all requests
on network-shield TLS.

This example also *plays the adversary*: it tampers with the stored
model and rolls it back, showing both attacks detected.

Run:  python examples/secure_document_digitization.py
"""

import copy

import numpy as np

import repro.tensor as tf
from repro.core import InferenceService, SecureTFPlatform
from repro.core.inference import deploy_encrypted_model, service_runtime_config
from repro.core.platform import PlatformConfig
from repro.crypto import encoding
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode
from repro.errors import FreshnessError, ShieldError
from repro.models import build_model
from repro.tensor.arrays import encode_array


def train_digitizer():
    """The company trains its document model on its own infrastructure."""
    print("== training the digitizer (company premises) ==")
    train, test = synthetic_mnist(n_train=2000, n_test=300, seed=3)
    built = build_model("mnist_cnn", seed=3)
    with built.graph.as_default():
        labels = tf.placeholder("float32", (None, 10), name="labels")
        loss = tf.losses.softmax_cross_entropy(labels, built.logits)
        accuracy = tf.metrics.accuracy(labels, built.logits)
        step = tf.optimizers.Adam(0.005).minimize(loss)
        init = tf.global_variables_initializer(built.graph)
    session = tf.Session(graph=built.graph)
    session.run(init)
    for epoch in range(2):
        for batch_x, batch_y in train.batches(64, shuffle_seed=epoch):
            session.run(step, {built.input: batch_x, labels: batch_y})
    test_accuracy = session.run(
        accuracy, {built.input: test.images, labels: test.one_hot_labels}
    )
    print(f"   test accuracy: {test_accuracy:.1%}")
    return built.to_lite("digitizer"), test


def main() -> None:
    model, test = train_digitizer()

    print("== deploying to the untrusted cloud ==")
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=4))
    platform.user_attest_cas()
    session = "digitizer"
    platform.register_session(
        session, [service_runtime_config("digitizer-svc", SgxMode.HW)]
    )
    node = platform.node(1)
    path = deploy_encrypted_model(platform, session, node, model)
    print(f"   model at {path}: encrypted, integrity-protected, "
          f"freshness-audited by CAS")

    service = InferenceService(
        platform, session, node, path, mode=SgxMode.HW, name="digitizer-svc"
    )
    service.start()
    address = service.serve()
    print(f"   service attested; listening on {address!r} (TLS only)")

    print("== customers send documents over TLS ==")
    correct = 0
    for index in range(20):
        label = service.classify(test.images[index])
        correct += label == test.labels[index]
    print(f"   20 documents classified, {correct} correct")

    print("== adversary: tamper with the stored model ==")
    raw = node.vfs.read(path).content
    corrupted = bytearray(raw)
    corrupted[len(corrupted) // 3] ^= 0x80
    node.vfs.tamper(path, bytes(corrupted))
    probe = InferenceService(
        platform, session, node, path, mode=SgxMode.HW, name="digitizer-svc"
    )
    try:
        probe.start()
        print("   !! tampering went UNDETECTED (bug)")
    except (ShieldError, FreshnessError) as exc:
        print(f"   tampering detected: {type(exc).__name__}")
    node.vfs.tamper(path, raw)  # restore

    print("== adversary: roll the model back to an old version ==")
    snapshot = copy.deepcopy(node.vfs.read(path))
    deploy_encrypted_model(platform, session, node, model, path=path)  # v1
    node.vfs.rollback(path, snapshot)
    probe = InferenceService(
        platform, session, node, path, mode=SgxMode.HW, name="digitizer-svc"
    )
    try:
        probe.start()
        print("   !! rollback went UNDETECTED (bug)")
    except FreshnessError as exc:
        print(f"   rollback detected by the CAS audit service: "
              f"{type(exc).__name__}")

    platform.cas.audit.verify_chain()
    print(f"   audit log intact: {len(platform.cas.audit.log)} entries, "
          f"hash chain verifies")
    service.stop()


if __name__ == "__main__":
    main()
