#!/usr/bin/env python3
"""Elastic, fault-tolerant secure inference (paper challenge ❹, §5.2).

Public clouds scale services with load.  Every spawned secureTF
container must be attested and provisioned before serving — which is
only practical because CAS attests locally (~tens of ms) instead of
via Intel's WAN service (~hundreds of ms).

This example runs the full resilient serving plane: an attested
front-end router with admission control, deadline propagation and
hedged requests, an elastic replica pool supervised by the
orchestrator watchdog, and an SLO autoscaler that rides the
cold-start → attested path on every scale-out.  A diurnal load spike
drives scaling; a mid-spike replica crash drives recovery — with
attestations counted all the way.

Run:  python examples/elastic_inference_service.py
"""

from repro.core.monitoring import collect_metrics
from repro.serving import AutoscalerPolicy, DiurnalProfile, ServingPlane


def main() -> None:
    plane = ServingPlane(
        seed=8,
        n_nodes=4,
        initial_replicas=2,
        autoscaler_policy=AutoscalerPolicy(
            slo_p99=0.2, min_replicas=2, max_replicas=6
        ),
    )

    print("== deployed: attested router + 2 attested replicas ==")
    for entry in plane.scoreboard.entries():
        print(f"  {entry.address}: {entry.state.value}, cold start -> "
              f"attested in {entry.cold_start_latency * 1e3:.0f} ms (simulated)")

    print("== a replica crashes mid-spike; the watchdog replaces it ==")
    plane.platform.scheduler.schedule(
        5.0, lambda: plane.pool.crash("replica-0"), label="demo:crash"
    )

    print("== diurnal spike: 12 closed-loop clients, 8 s, 0.5 s deadlines ==")
    stats = plane.run_traffic(
        clients=12, duration=8.0, profile=DiurnalProfile(), deadline_budget=0.5
    )
    plane.check_invariants()

    print(f"\n  sent {stats.sent}, ok {stats.ok}, "
          f"overload {stats.overload}, deadline {stats.deadline}, "
          f"transport {stats.transport}")
    print(f"  client p50 {stats.latency.percentile(50) * 1e3:.1f} ms, "
          f"p99 {stats.latency.percentile(99) * 1e3:.1f} ms")
    router = plane.router.stats
    print(f"  router: {router.retries} retries, "
          f"{router.hedges_won}/{router.hedges_fired} hedges won, "
          f"{router.dedup_replays} dedup replays")

    cold = plane.pool.cold_starts
    print(f"\ntotal attestations performed: {len(cold)} "
          f"(one per spawned replica — scale-outs and the watchdog's "
          f"replacement alike; no key ever left CAS unsealed)")
    print(f"cold start -> attested: mean "
          f"{sum(cold) / len(cold) * 1e3:.0f} ms over {len(cold)} replicas")

    print("\nfinal pool state:")
    for entry in plane.scoreboard.entries():
        print(f"  {entry.address}: {entry.state.value}, served {entry.served}")

    # TEEMon-style platform snapshot (related work [51]) — the recovery
    # line includes the circuit-breaker census (closed/open/half-open).
    print()
    print(collect_metrics(plane.platform).format())
    plane.close()


if __name__ == "__main__":
    main()
