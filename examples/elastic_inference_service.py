#!/usr/bin/env python3
"""Elastic, fault-tolerant secure inference (paper challenge ❹, §5.2).

Public clouds scale services with load.  Every spawned secureTF
container must be attested and provisioned before serving — which is
only practical because CAS attests locally (~tens of ms) instead of
via Intel's WAN service (~hundreds of ms).  This example scales a
classification service up and down, injects a container crash, and
recovers — counting attestations all the way.

Run:  python examples/elastic_inference_service.py
"""

from repro.cluster import ContainerSpec
from repro.core import SecureTFPlatform
from repro.core.inference import deploy_encrypted_model, service_runtime_config
from repro.core.platform import PlatformConfig
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model


def main() -> None:
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=8))
    platform.user_attest_cas()

    model = pretrained_lite_model("densenet")
    session = "elastic-classify"
    config = service_runtime_config("elastic-svc", SgxMode.HW)
    platform.register_session(session, [config])
    for node in platform.nodes:
        deploy_encrypted_model(platform, session, node, model)

    provisioned = []

    def attest_and_provision(container):
        before = container.node.clock.now
        identity = platform.provision_runtime(
            container.runtime, container.node, session
        )
        elapsed = container.node.clock.now - before
        provisioned.append(identity)
        print(f"  {container.name} on {container.node.node_id}: attested + "
              f"provisioned in {elapsed * 1e3:.0f} ms (simulated), "
              f"cert {identity.tls_identity().certificate.subject!r}")

    platform.orchestrator.on_start.append(attest_and_provision)
    spec = ContainerSpec(session, lambda node, index: config)

    print("== morning load: scale to 2 replicas ==")
    platform.orchestrator.scale_to(spec, 2)

    print("== peak load: scale to 6 replicas ==")
    platform.orchestrator.scale_to(spec, 6)
    print(f"   running replicas: {len(platform.orchestrator.replicas(session))}")

    print("== a container crashes ==")
    victim = platform.orchestrator.replicas(session)[0]
    platform.orchestrator.fail_container(victim)
    print(f"   {victim.name} failed; "
          f"{len(platform.orchestrator.replicas(session))} replicas left")
    replaced = platform.orchestrator.recover(spec)
    print(f"   recovered: {replaced[0].name} restarted on "
          f"{replaced[0].node.node_id} and re-attested")

    print("== evening: scale back to 1 ==")
    platform.orchestrator.scale_to(spec, 1)
    print(f"\ntotal attestations performed: {len(provisioned)} "
          f"(one per spawned container — no key ever left CAS unsealed)\n")

    # TEEMon-style platform snapshot (related work [51]).
    from repro.core.monitoring import collect_metrics
    print(collect_metrics(platform).format())
    platform.orchestrator.stop_all()


if __name__ == "__main__":
    main()
