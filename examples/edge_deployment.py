#!/usr/bin/env python3
"""§7.2: deploying optimized models to SGX edge devices.

The paper reports working with an IoT company to push freshly-trained
models to SGX-capable edge boxes (Intel NUCs).  The enabling steps, all
shown here:

1. optimize the model — int8 quantization + magnitude pruning — so it
   fits comfortably in the edge device's EPC next to the Lite runtime,
2. upload it to the edge node encrypted under a CAS session key,
3. the edge enclave attests to the *cloud* CAS over the network and
   receives the decryption key — no secrets ever configured on the box.

Run:  python examples/edge_deployment.py
"""

from repro.core import InferenceService, SecureTFPlatform
from repro.core.inference import deploy_encrypted_model, service_runtime_config
from repro.core.platform import PlatformConfig
from repro.data import synthetic_cifar10
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model
from repro.tensor.lite import prune, quantize
from repro.tensor.lite.optimize import optimization_report


def main() -> None:
    # node 0 = the cloud (runs CAS); node 1 = the edge device.
    platform = SecureTFPlatform(PlatformConfig(n_nodes=2, seed=18))
    platform.user_attest_cas()
    cloud, edge = platform.node(0), platform.node(1)

    print("== optimize the model for the edge (cloud side) ==")
    base = pretrained_lite_model("inception_v3")
    optimized = prune(quantize(base), 0.5)
    report = optimization_report(base, optimized)
    print(f"   {base.name}: {report['original_declared_mb']:.0f} MB -> "
          f"{optimized.name}: {report['optimized_declared_mb']:.0f} MB "
          f"({report['shrink_factor']:.1f}x smaller)")
    print(f"   the optimized model + 1.9 MB Lite runtime fit the edge "
          f"device's ~94 MB EPC with room to spare")

    print("== push to the edge, encrypted ==")
    session = "edge-fleet"
    config = service_runtime_config("edge-svc", SgxMode.HW)
    platform.register_session(session, [config])
    path = deploy_encrypted_model(platform, session, edge, optimized)
    print(f"   model at {edge.node_id}:{path} (ciphertext; key held by CAS)")

    print("== edge enclave attests to the cloud CAS and serves ==")
    service = InferenceService(
        platform, session, edge, path, mode=SgxMode.HW, name="edge-svc"
    )
    service.start()
    print(f"   attested + provisioned over the network in "
          f"{service.stats.startup_latency * 1e3:.0f} ms (simulated)")

    _, test = synthetic_cifar10(n_train=5, n_test=8, seed=19)
    for index in range(4):
        label = service.classify(test.images[index])
        print(f"   frame {index}: class {label} "
              f"({service.stats.mean_latency * 1e3:.0f} ms/frame simulated)")

    # Compare with the unoptimized model on the same device.
    base_path = deploy_encrypted_model(platform, session, edge, base)
    heavy = InferenceService(
        platform, session, edge, base_path, mode=SgxMode.HW, name="edge-svc"
    )
    heavy.start()
    for index in range(4):
        heavy.classify(test.images[index])
    print(f"\n   fp32 model on the same device: "
          f"{heavy.stats.mean_latency * 1e3:.0f} ms/frame — the optimized "
          f"model is {heavy.stats.mean_latency / service.stats.mean_latency:.2f}x "
          f"faster and 6x smaller on the wire")
    service.stop()
    heavy.stop()


if __name__ == "__main__":
    main()
