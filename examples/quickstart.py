#!/usr/bin/env python3
"""Quickstart: deploy secureTF, attest CAS, serve an encrypted model.

Walks the paper's Fig. 1 flow in ~60 lines of API:

1. deploy a 3-node cluster with CAS in an enclave,
2. attest CAS (the user's root of trust),
3. register a session policy and upload a model encrypted under the
   session key,
4. start an inference container that attests to CAS, receives its keys,
   and classifies inside the enclave.

Run:  python examples/quickstart.py
"""

from repro.core import InferenceService, SecureTFPlatform
from repro.core.inference import deploy_encrypted_model, service_runtime_config
from repro.core.platform import PlatformConfig
from repro.data import synthetic_cifar10
from repro.enclave.sgx import SgxMode
from repro.models import pretrained_lite_model


def main() -> None:
    # 1. A 3-node SGX cluster (the paper's setup), CAS on node 0.
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=1))

    # 2. Before trusting CAS with anything, verify its quote.
    report = platform.user_attest_cas()
    print(f"CAS attested: measurement {report.measurement.hex()[:16]}…, "
          f"hardware mode: {not report.debug}")

    # 3. Register a session: only enclaves with this exact measurement
    #    may receive the session's keys.
    model = pretrained_lite_model("densenet")
    config = service_runtime_config("quickstart-svc", SgxMode.HW)
    platform.register_session("quickstart", [config])
    path = deploy_encrypted_model(platform, "quickstart", platform.node(1), model)
    stored = platform.node(1).vfs.read(path)
    print(f"model uploaded encrypted: {path} "
          f"({stored.size / 1e6:.0f} MB declared, ciphertext at rest)")

    # 4. Start the service: container start -> attestation -> keys ->
    #    model decrypted inside the enclave.
    service = InferenceService(
        platform, "quickstart", platform.node(1), path,
        mode=SgxMode.HW, name="quickstart-svc",
    )
    service.start()
    print(f"service attested and provisioned in "
          f"{service.stats.startup_latency * 1e3:.0f} ms (simulated)")

    # 5. Classify.
    _, test = synthetic_cifar10(n_train=10, n_test=5, seed=2)
    for index, image in enumerate(test.images):
        label = service.classify(image)
        print(f"  image {index}: class {label} "
              f"({service.stats.mean_latency * 1e3:.0f} ms/inference simulated)")

    service.stop()
    print("done — see examples/secure_document_digitization.py for the "
          "full production use case.")


if __name__ == "__main__":
    main()
