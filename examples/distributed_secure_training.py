#!/usr/bin/env python3
"""Distributed secure training across the cluster (§3.3.4, Fig. 8).

Launches a parameter server and three workers, each in its own attested
enclave, with all weight/gradient traffic on network-shield TLS — then
compares the run against native TensorFlow to show the cost of the
guarantees (the paper's Fig. 8 story).

Run:  python examples/distributed_secure_training.py
"""

from repro.core import SecureTFPlatform
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJob, TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode

BATCHES = 12


def run(label: str, mode: SgxMode, network_shield: bool, workers: int, batches):
    platform = SecureTFPlatform(PlatformConfig(n_nodes=3, seed=9))
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session="train-demo",
            n_workers=workers,
            mode=mode,
            network_shield=network_shield,
            learning_rate=0.0005,  # the paper's §5.4 setting
        ),
    )
    job.start()
    result = job.train(batches)
    job.stop()
    print(f"  {label:<28} {result.wall_clock:8.2f}s simulated "
          f"(final loss {result.final_loss:.3f})")
    return result.wall_clock


def main() -> None:
    train, _ = synthetic_mnist(n_train=BATCHES * 100, n_test=10, seed=10)
    batches = list(train.batches(100))
    print(f"training on {BATCHES} MNIST batches of 100 (lr 0.0005)\n")

    print("1 worker, different protection levels:")
    native = run("native TensorFlow", SgxMode.NATIVE, False, 1, batches)
    run("SCONE sim (no shields)", SgxMode.SIM, False, 1, batches)
    run("SCONE sim + network shield", SgxMode.SIM, True, 1, batches)
    hw = run("secureTF HW (full)", SgxMode.HW, True, 1, batches)
    print(f"\n  full protection costs {hw / native:.1f}x over native "
          f"(paper: ~14x — EPC paging dominates)\n")

    print("secureTF HW, scaling out workers:")
    times = {1: hw}
    for workers in (2, 3):
        times[workers] = run(
            f"secureTF HW, {workers} workers", SgxMode.HW, True, workers, batches
        )
    print(f"\n  speedups: {times[1] / times[2]:.2f}x with 2 workers, "
          f"{times[1] / times[3]:.2f}x with 3 (paper: 1.96x / 2.57x)")


if __name__ == "__main__":
    main()
