#!/usr/bin/env python3
"""Distributed secure training across the cluster (§3.3.4, Fig. 8).

Launches a parameter server and three workers, each in its own attested
enclave, with all weight/gradient traffic on network-shield TLS — then
compares the run against native TensorFlow to show the cost of the
guarantees (the paper's Fig. 8 story).

The final run repeats the full-protection configuration with the
continuous telemetry plane enabled: it prints the per-node profile
(where each node's simulated time went, by layer) and writes a
Perfetto-loadable Chrome trace to ``train-demo.trace.json``.

Run:  python examples/distributed_secure_training.py
"""

import json
from pathlib import Path

from repro.core import SecureTFPlatform
from repro.core.platform import PlatformConfig
from repro.core.training import TrainingJob, TrainingJobConfig
from repro.data import synthetic_mnist
from repro.enclave.sgx import SgxMode

BATCHES = 12

TRACE_PATH = Path(__file__).resolve().parent / "train-demo.trace.json"


def run(label: str, mode: SgxMode, network_shield: bool, workers: int, batches,
        tracing: bool = False):
    platform = SecureTFPlatform(
        PlatformConfig(n_nodes=3, seed=9, tracing=tracing, metrics_interval=0.25)
    )
    job = TrainingJob(
        platform,
        TrainingJobConfig(
            session="train-demo",
            n_workers=workers,
            mode=mode,
            network_shield=network_shield,
            learning_rate=0.0005,  # the paper's §5.4 setting
        ),
    )
    job.start()
    result = job.train(batches)
    job.stop()
    print(f"  {label:<28} {result.wall_clock:8.2f}s simulated "
          f"(final loss {result.final_loss:.3f})")
    if tracing:
        telemetry = platform.telemetry
        print("\ntelemetry: per-node profile (simulated seconds by layer)")
        print(telemetry.profile_report())
        trace = telemetry.chrome_trace()
        TRACE_PATH.write_text(json.dumps(trace, indent=2) + "\n")
        spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
        print(f"telemetry: {spans} spans -> {TRACE_PATH.name} "
              "(load in chrome://tracing or ui.perfetto.dev)")
        platform.close_telemetry()
    return result.wall_clock


def main() -> None:
    train, _ = synthetic_mnist(n_train=BATCHES * 100, n_test=10, seed=10)
    batches = list(train.batches(100))
    print(f"training on {BATCHES} MNIST batches of 100 (lr 0.0005)\n")

    print("1 worker, different protection levels:")
    native = run("native TensorFlow", SgxMode.NATIVE, False, 1, batches)
    run("SCONE sim (no shields)", SgxMode.SIM, False, 1, batches)
    run("SCONE sim + network shield", SgxMode.SIM, True, 1, batches)
    hw = run("secureTF HW (full)", SgxMode.HW, True, 1, batches)
    print(f"\n  full protection costs {hw / native:.1f}x over native "
          f"(paper: ~14x — EPC paging dominates)\n")

    print("secureTF HW, scaling out workers:")
    times = {1: hw}
    for workers in (2, 3):
        times[workers] = run(
            f"secureTF HW, {workers} workers", SgxMode.HW, True, workers, batches
        )
    print(f"\n  speedups: {times[1] / times[2]:.2f}x with 2 workers, "
          f"{times[1] / times[3]:.2f}x with 3 (paper: 1.96x / 2.57x)\n")

    print("secureTF HW with the telemetry plane on:")
    run("secureTF HW (traced)", SgxMode.HW, True, 3, batches, tracing=True)


if __name__ == "__main__":
    main()
